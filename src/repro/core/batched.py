"""Batched Monte-Carlo kernel with adaptive early stopping.

Two independent speed layers over the :class:`~repro.core.executor`
cell substrate, in the spirit of Ares (Reagen et al., DAC 2018):

**Variant batching** (:class:`BatchedSuffixKernel`).  K fault variants
of one campaign share the clean prefix *and* an un-faulted tail: every
layer after the last faulted layer of the whole group sees fault-free
weights under every variant, so the group's K per-variant frontiers can
be stacked into one wide tensor and pushed through that tail in a
single forward call.  Each variant's prefix/faulted span still runs
individually under its own injection context (bit-identity there is by
construction, exactly the suffix-engine argument), and the wide tail is
**bitwise-verified** before it is trusted: BLAS kernels may block a
``(K*B, ...)`` operand differently from a ``(B, ...)`` one, and row
blocking is a function of operand shape — so the first time a
``(tail start, frontier shape, K)`` signature appears, the kernel
computes both the per-variant tails and the wide tail, compares them
bit for bit, and permanently falls back to per-variant tails for that
signature on any mismatch.  Exact mode is therefore bit-identical to
the per-cell path *unconditionally*, not just on BLAS builds that
happen to be row-stable.  ``REPRO_NO_BATCHED=1`` disables the kernel
everywhere (results unchanged, by the same argument).

**Adaptive early stopping** (:class:`AdaptiveCampaignTask`).  Wraps any
scalar-accuracy cell task and turns each rate's trial column into a
*family* evaluated sequentially in chunks of ``batch_k``: after every
chunk a Wilson or Clopper-Pearson interval over the pooled image-level
counts is computed, and the family stops as soon as its half-width
falls under ``ci_halfwidth``.  The executed trials reuse the exact
per-cell seed paths (``rate/<i>/trial/<j>``), so an adaptive family's
trial accuracies are bit-identical to the first ``n`` trials of the
exact sweep — common random numbers survive the stopping layer.  The
stopping decision depends only on (seed, grid, ``batch_k``,
``ci_halfwidth``, method), never on workers, suffix caching or
``REPRO_NO_BATCHED``, so checkpoint resume reproduces it exactly.

The pooled interval treats the ``n_trials * n_images`` image-level
Bernoulli outcomes as independent — the Ares pooling.  Near the
accuracy cliff, between-trial variance (few flipped bits decide the
whole trial) makes the pooled interval anti-conservative as a
*population* statement; it is used here as a stopping rule for the mean
estimate, and ``tests/test_stats_stopping.py`` pins its coverage in the
regime the rule is trusted for.

**Importance sampling** (:class:`ImportanceBitflipSampler`).  The bit
position study (:mod:`repro.analysis.bitpos`) shows sign/exponent bits
dominate SDC; the sampler tilts the per-bit flip probability of those
*hot* positions up by ``boost`` and reweights each trial by the exact
likelihood ratio of the untilted model, so weighted estimates stay
unbiased (``E_q[w f] = E_p[f]`` holds exactly; the proposal and target
are both product-Bernoulli laws over bit cells).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro import nn
from repro.core.metrics import ResilienceCurve
from repro.core.suffix import _top_level_index_map

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.bitpos import BitPositionResult
    from repro.core.suffix import SuffixForwardEngine
    from repro.hw.faultmodels import FaultSet

__all__ = [
    "DEFAULT_BATCH_K",
    "batched_globally_disabled",
    "wilson_interval",
    "clopper_pearson_interval",
    "family_interval",
    "FaultVariant",
    "BatchedSuffixKernel",
    "ImportanceBitflipSampler",
    "AdaptiveCampaignTask",
    "AdaptiveResult",
    "adaptive_cell_width",
]

_DISABLE_ENV = "REPRO_NO_BATCHED"

# Trial-family chunk width when a caller asks for batching without
# picking a width (``batch_k=0`` on an adaptive task).
DEFAULT_BATCH_K = 8

# Grid sentinel for adaptive cells: trials a family never executed are
# stored as -1 (NaN would read as "cell still pending" to the executor's
# resume logic, which keys completion on isfinite).
SKIP_SENTINEL = -1.0

_METHODS = ("wilson", "clopper-pearson")


def batched_globally_disabled() -> bool:
    """Whether ``REPRO_NO_BATCHED`` turns variant batching off."""
    return os.environ.get(_DISABLE_ENV, "").strip() not in ("", "0")


# --------------------------------------------------------------------- #
# binomial confidence intervals
# --------------------------------------------------------------------- #


def _norm_ppf(q: float) -> float:
    """Standard normal quantile; scipy when present, else Acklam's
    rational approximation (|error| < 1.2e-8 over the open unit
    interval — far below any stopping tolerance used here)."""
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {q}")
    try:
        from scipy import stats

        return float(stats.norm.ppf(q))
    except ImportError:  # pragma: no cover - scipy is present in dev envs
        return _norm_ppf_fallback(q)


def _norm_ppf_fallback(q: float) -> float:
    """Acklam's inverse-normal approximation (pure stdlib)."""
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    q_low = 0.02425
    if q < q_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
            ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    if q > 1.0 - q_low:
        return -_norm_ppf_fallback(1.0 - q)
    u = q - 0.5
    r = u * u
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * u / \
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


def wilson_interval(
    successes: float, trials: float, level: float = 0.95
) -> "tuple[float, float]":
    """Wilson score interval for a binomial proportion.

    The default stopping interval: near-nominal coverage even at small
    counts and proportions near 0/1 (where the Wald interval collapses),
    and cheap enough to evaluate after every trial chunk.
    """
    _check_counts(successes, trials)
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    z = _norm_ppf(0.5 + level / 2.0)
    n = float(trials)
    p = successes / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2.0 * n)) / denom
    half = z * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / denom
    return max(0.0, centre - half), min(1.0, centre + half)


def clopper_pearson_interval(
    successes: float, trials: float, level: float = 0.95
) -> "tuple[float, float]":
    """Clopper-Pearson (exact) interval for a binomial proportion.

    Guaranteed-conservative alternative to Wilson: coverage is at least
    nominal for every (p, n), at the price of wider intervals (slower
    stopping).  Quantiles of the beta distribution via scipy when
    available, else a regularized-incomplete-beta bisection.
    """
    _check_counts(successes, trials)
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    alpha = 1.0 - level
    k, n = float(successes), float(trials)
    low = 0.0 if k <= 0 else _beta_ppf(alpha / 2.0, k, n - k + 1.0)
    high = 1.0 if k >= n else _beta_ppf(1.0 - alpha / 2.0, k + 1.0, n - k)
    return low, high


def _check_counts(successes: float, trials: float) -> None:
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0.0 <= successes <= trials:
        raise ValueError(
            f"successes must lie in [0, trials={trials}], got {successes}"
        )


def _beta_ppf(q: float, a: float, b: float) -> float:
    """Beta distribution quantile; scipy when present, else bisection."""
    try:
        from scipy import stats

        return float(stats.beta.ppf(q, a, b))
    except ImportError:  # pragma: no cover - scipy is present in dev envs
        return _beta_ppf_fallback(q, a, b)


def _beta_ppf_fallback(q: float, a: float, b: float) -> float:
    """Invert the regularized incomplete beta by bisection.

    60 halvings pin the root to ~1e-18, far below the 1e-6-ish accuracy
    the continued-fraction CDF itself delivers; both are orders of
    magnitude tighter than any stopping tolerance.
    """
    if q <= 0.0:
        return 0.0
    if q >= 1.0:
        return 1.0
    low, high = 0.0, 1.0
    for _ in range(60):
        mid = (low + high) / 2.0
        if _beta_cdf(mid, a, b) < q:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def _beta_cdf(x: float, a: float, b: float) -> float:
    """Regularized incomplete beta ``I_x(a, b)`` (continued fraction)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (modified Lentz)."""
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 3e-15:
            break
    return h


def family_interval(
    accuracies: Sequence[float],
    n_images: int,
    level: float = 0.95,
    method: str = "wilson",
    weights: "Sequence[float] | None" = None,
) -> "tuple[float, float]":
    """``(estimate, ci_halfwidth)`` for one (rate, trial-family) cell.

    Unweighted families pool the image-level correct/incorrect counts of
    all executed trials into one binomial and interval it with the named
    method.  Importance-weighted families use the normal-approximation
    interval over the per-trial products ``w_t * acc_t`` instead (the
    pooled-count reduction does not survive reweighting); with a single
    trial the half-width is infinite, so a weighted family never stops
    before its second trial.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    accs = [float(a) for a in accuracies]
    if not accs:
        raise ValueError("family_interval needs at least one executed trial")
    if weights is not None:
        values = np.asarray(
            [w * a for w, a in zip(weights, accs)], dtype=np.float64
        )
        if values.size != len(accs):
            raise ValueError("weights must parallel accuracies")
        estimate = float(values.mean())
        if values.size < 2:
            return estimate, math.inf
        z = _norm_ppf(0.5 + level / 2.0)
        half = z * float(values.std(ddof=1)) / math.sqrt(values.size)
        return estimate, half
    n = len(accs) * int(n_images)
    # Per-trial accuracies are exact fractions k_t/n_images; rounding per
    # trial recovers the integer counts without float drift.
    successes = sum(round(a * n_images) for a in accs)
    interval = (
        wilson_interval if method == "wilson" else clopper_pearson_interval
    )
    low, high = interval(successes, n, level)
    return successes / n, (high - low) / 2.0


# --------------------------------------------------------------------- #
# the batched kernel
# --------------------------------------------------------------------- #


@dataclass
class FaultVariant:
    """One member of a variant family: how to apply it, what it touches.

    ``apply`` returns a fresh context manager that installs the fault
    set (``injector.apply(fault_set)`` et al.); ``affected`` is the
    injector's cut-point report for that fault set, the same names the
    suffix engine consumes.
    """

    apply: Callable[[], Any]
    affected: "tuple[str, ...]"


class BatchedSuffixKernel:
    """Shared-tail batched evaluation of fault-variant families.

    Splits the model at ``tail_start`` — one past the last top-level
    child any variant in the family faults — and evaluates the family
    as K individual prefix runs (each under its own injection context,
    each starting from the suffix engine's cached boundary when one
    applies) plus one wide forward over the common tail.  Falls back to
    the exact per-cell path variant-by-variant whenever batching cannot
    be proven safe: unknown layer names, models without a top-level
    index, empty fault sets (the clean-logits shortcut is already free),
    or a tail signature whose wide forward failed bitwise verification.
    """

    def __init__(
        self,
        model: nn.Module,
        images: np.ndarray,
        batch_size: int,
        engine: "SuffixForwardEngine | None" = None,
        batch_k: int = 0,
    ):
        self.model = model
        self.images = np.asarray(images, dtype=np.float32)
        self.batch_size = int(batch_size)
        self.engine = engine
        k = int(batch_k)
        if k <= 0 or batched_globally_disabled():
            k = 1
        self.batch_k = k
        self._top_index: "dict[str, int] | None" = None
        if isinstance(model, nn.Sequential) and len(model) > 0:
            self._top_index = _top_level_index_map(model)
        self._starts = list(range(0, self.images.shape[0], self.batch_size))
        # Wide-tail verdict per (tail_start, K, frontier shape): True
        # once the wide forward matched the per-variant tails bit for
        # bit, False (permanent per-variant fallback) on any mismatch.
        self._verified: "dict[tuple, bool]" = {}
        self.stats = {
            "families": 0,
            "variants_batched": 0,
            "variants_single": 0,
            "wide_tail_batches": 0,
            "verified_signatures": 0,
            "fallback_signatures": 0,
        }

    @property
    def enabled(self) -> bool:
        """Whether families can batch at all on this model/config."""
        return (
            self.batch_k > 1
            and self._top_index is not None
            and bool(self._starts)
        )

    def run_family(
        self,
        variants: Sequence[FaultVariant],
        measure: Callable[[Any], Any],
    ) -> list[Any]:
        """Evaluate every variant; returns per-variant ``measure`` values.

        ``measure(forward)`` must consume the model's logits exclusively
        through ``forward(batch, offset)`` calls over the kernel's
        evaluation batches — true of every cell task built on
        :func:`~repro.core.metrics.predict_labels` /
        :func:`~repro.core.metrics.evaluate_accuracy_arrays`.  Batched
        variants get a replay forward over precomputed logits; fallback
        variants get exactly the per-cell suffix/full forward.
        """
        self.stats["families"] += 1
        if not self.enabled:
            self.stats["variants_single"] += len(variants)
            return [self._run_single(v, measure) for v in variants]
        values: list[Any] = [None] * len(variants)
        group: "list[tuple[int, FaultVariant, tuple[int, int]]]" = []
        for index, variant in enumerate(variants):
            span = self._cut_span(variant.affected)
            if span is None:
                self.stats["variants_single"] += 1
                values[index] = self._run_single(variant, measure)
            else:
                group.append((index, variant, span))
        for start in range(0, len(group), self.batch_k):
            chunk = group[start : start + self.batch_k]
            if len(chunk) == 1:
                self.stats["variants_single"] += 1
                values[chunk[0][0]] = self._run_single(chunk[0][1], measure)
                continue
            self.stats["variants_batched"] += len(chunk)
            logits = self._family_logits(chunk)
            for (index, _, _), per_batch in zip(chunk, logits):
                values[index] = measure(self._replay(per_batch))
        return values

    # ------------------------------------------------------------------ #

    def _cut_span(self, affected: Sequence[str]) -> "tuple[int, int] | None":
        """``(first, last)`` faulted top-level indices, or ``None``.

        ``None`` routes the variant to the exact per-cell path: an empty
        fault set (the engine's clean shortcut already costs nothing) or
        a layer name outside the top-level map (no sound tail bound).
        """
        if not affected or self._top_index is None:
            return None
        indices = [self._top_index.get(name) for name in affected]
        if any(index is None for index in indices):
            return None
        return min(indices), max(indices)  # type: ignore[type-var]

    def _run_single(self, variant: FaultVariant, measure) -> Any:
        """The exact per-cell path for one variant (the reference)."""
        forward = None
        if self.engine is not None:
            forward = self.engine.forward_fn(list(variant.affected))
        with variant.apply():
            return measure(forward)

    def _family_logits(self, chunk) -> "list[list[np.ndarray]]":
        """Per-variant, per-batch output logits for one batched chunk."""
        tail_start = max(last for _, _, (_, last) in chunk) + 1
        was_training = self.model.training
        self.model.eval()
        try:
            with np.errstate(over="ignore", invalid="ignore"):
                frontiers = [
                    self._variant_frontiers(variant, tail_start)
                    for _, variant, _ in chunk
                ]
                if tail_start >= len(self.model):
                    return frontiers
                return self._run_tail(tail_start, frontiers)
        finally:
            self.model.train(was_training)

    def _variant_frontiers(
        self, variant: FaultVariant, tail_start: int
    ) -> "list[np.ndarray]":
        """Run one variant's prefix+faulted span under its injection.

        Starts each batch from the suffix engine's deepest cached clean
        boundary when one applies (the skipped prefix is untouched by
        the faults — the engine's own bit-identity argument), else from
        the raw images; stops at ``tail_start``.
        """
        prefix_start = None
        if self.engine is not None:
            prefix_start = self.engine.start_index_for(list(variant.affected))
        outputs: "list[np.ndarray]" = []
        with variant.apply():
            for batch_index, offset in enumerate(self._starts):
                begin, x = 0, self.images[offset : offset + self.batch_size]
                if prefix_start is not None:
                    cached = self.engine.cached_input(batch_index, prefix_start)
                    if cached is not None:
                        begin, x = prefix_start, cached
                outputs.append(
                    self.model.forward_from(begin, x, stop=tail_start)
                )
        return outputs

    def _run_tail(
        self, tail_start: int, frontiers: "list[list[np.ndarray]]"
    ) -> "list[list[np.ndarray]]":
        """Push all frontiers through the clean tail, wide when proven.

        The tail's weights are fault-free under *every* variant of the
        group (that is how ``tail_start`` was chosen), so per-variant
        tail runs are bit-identical to what each variant's own full
        suffix would compute.  The wide (concatenated) run is used only
        for signatures that passed bitwise verification; verification
        batches compute both and return the per-variant reference.
        """
        n_variants = len(frontiers)
        out: "list[list[np.ndarray]]" = [
            [None] * len(self._starts) for _ in range(n_variants)
        ]
        for batch_index in range(len(self._starts)):
            blocks = [frontiers[k][batch_index] for k in range(n_variants)]
            signature = (tail_start, n_variants, tuple(blocks[0].shape))
            verdict = self._verified.get(signature)
            if verdict is None:
                references = [
                    self.model.forward_from(tail_start, block)
                    for block in blocks
                ]
                wide = self.model.forward_from(
                    tail_start, np.concatenate(blocks, axis=0)
                )
                row = 0
                verdict = True
                for block, reference in zip(blocks, references):
                    rows = block.shape[0]
                    if not np.array_equal(
                        wide[row : row + rows], reference, equal_nan=True
                    ):
                        verdict = False
                        break
                    row += rows
                self._verified[signature] = verdict
                self.stats[
                    "verified_signatures" if verdict else "fallback_signatures"
                ] += 1
                for k in range(n_variants):
                    out[k][batch_index] = references[k]
            elif verdict:
                wide = self.model.forward_from(
                    tail_start, np.concatenate(blocks, axis=0)
                )
                self.stats["wide_tail_batches"] += 1
                row = 0
                for k, block in enumerate(blocks):
                    rows = block.shape[0]
                    out[k][batch_index] = wide[row : row + rows]
                    row += rows
            else:
                for k, block in enumerate(blocks):
                    out[k][batch_index] = self.model.forward_from(
                        tail_start, block
                    )
        return out

    def _replay(self, per_batch: "list[np.ndarray]"):
        """A batch-forward that serves the precomputed logits."""
        table = {
            offset: logits for offset, logits in zip(self._starts, per_batch)
        }

        def forward(batch: np.ndarray, offset: int) -> np.ndarray:
            logits = table.get(int(offset))
            if logits is None or logits.shape[0] != batch.shape[0]:
                raise RuntimeError(
                    "batched kernel replay saw an evaluation batch it did "
                    "not precompute (offset mismatch with the task's "
                    "images/batch_size)"
                )
            return logits

        return forward


# --------------------------------------------------------------------- #
# importance sampling of bit positions
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ImportanceBitflipSampler:
    """Tilted random-bit-flip proposal with exact unbiased reweighting.

    The target law is the paper's :class:`~repro.hw.faultmodels.RandomBitFlip`
    — independent per-bit flips at the fault rate (equivalently:
    Binomial count, uniform positions).  The proposal boosts the per-bit
    flip probability of the *hot* in-word positions (default: float32
    sign + exponent, the bits :mod:`repro.analysis.bitpos` shows
    dominate SDC) to ``min(rate * boost, 0.5)`` and leaves the cold
    positions at ``rate``; each draw carries the likelihood ratio of
    target over proposal, computed in log space from the hot-cell
    counts.  Both laws are product-Bernoulli over bit cells, so the
    weighted estimator is exactly unbiased: ``E_q[w f] = E_p[f]``.
    """

    boost: float = 8.0
    hot_positions: "tuple[int, ...]" = (31, 30, 29, 28, 27, 26, 25, 24, 23)

    def __post_init__(self) -> None:
        if not self.boost > 0.0:
            raise ValueError(f"boost must be positive, got {self.boost}")
        positions = tuple(int(p) for p in self.hot_positions)
        if len(set(positions)) != len(positions) or any(
            p < 0 for p in positions
        ):
            raise ValueError(
                f"hot_positions must be distinct non-negative in-word bit "
                f"positions, got {self.hot_positions!r}"
            )
        object.__setattr__(self, "boost", float(self.boost))
        object.__setattr__(self, "hot_positions", positions)

    @classmethod
    def from_bitpos(
        cls, result: "BitPositionResult", k: int = 9, boost: float = 8.0
    ) -> "ImportanceBitflipSampler":
        """Seed the hot set from measured bit-position damage evidence."""
        return cls(
            boost=boost,
            hot_positions=tuple(
                int(p) for p in result.most_damaging_positions(k)
            ),
        )

    def sample_with_weight(
        self, memory, rate: float, rng: np.random.Generator
    ) -> "tuple[FaultSet, float]":
        """One tilted draw over ``memory``'s bit space plus its weight."""
        from repro.hw.faultmodels import FaultSet, _sample_unique_bits

        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be a probability, got {rate}")
        if rate == 0.0:
            return FaultSet.empty(), 1.0
        bits_per_word = int(memory.bits_per_word)
        hot = sorted(p for p in self.hot_positions if p < bits_per_word)
        cold = sorted(set(range(bits_per_word)) - set(hot))
        total_words = int(memory.total_words)
        n_hot = total_words * len(hot)
        n_cold = total_words * len(cold)
        q_hot = min(rate * self.boost, 0.5)
        # Draw order (hot count, hot cells, cold count, cold cells) is
        # part of the determinism contract: the draw is a pure function
        # of (self, memory geometry, rate, rng).
        k_hot = int(rng.binomial(n_hot, q_hot)) if n_hot else 0
        hot_bits = self._place(
            _sample_unique_bits(n_hot, k_hot, rng), hot, bits_per_word
        )
        k_cold = int(rng.binomial(n_cold, rate)) if n_cold else 0
        cold_bits = self._place(
            _sample_unique_bits(n_cold, k_cold, rng), cold, bits_per_word
        )
        bits = np.sort(np.concatenate([hot_bits, cold_bits]))
        # Cold cells sample at the target rate, so their likelihood terms
        # cancel; only the hot cells contribute.
        log_weight = 0.0
        if n_hot and q_hot > rate:
            log_weight = k_hot * math.log(rate / q_hot) + (
                n_hot - k_hot
            ) * (math.log1p(-rate) - math.log1p(-q_hot))
        return FaultSet.flips(bits), float(math.exp(min(log_weight, 700.0)))

    @staticmethod
    def _place(
        cell_ids: np.ndarray, positions: "list[int]", bits_per_word: int
    ) -> np.ndarray:
        """Map flat cell ids ``word * len(positions) + rank`` to bit indices."""
        if cell_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        n_positions = len(positions)
        words = cell_ids // n_positions
        offsets = np.asarray(positions, dtype=np.int64)[cell_ids % n_positions]
        return words * bits_per_word + offsets


# --------------------------------------------------------------------- #
# the adaptive task
# --------------------------------------------------------------------- #


def adaptive_cell_width(max_trials: int, weighted: bool) -> int:
    """Scalars per adaptive (rate, family) cell.

    The vector layout is ``[estimate, executed, acc_0..acc_{T-1}
    (, w_0..w_{T-1})]`` with :data:`SKIP_SENTINEL` padding — the single
    source of truth shared by :class:`AdaptiveCampaignTask` (which
    writes cells) and shard merging (which reassembles grids from
    recorded cells without reconstructing the task).
    """
    return 2 + int(max_trials) * (2 if weighted else 1)


class AdaptiveCampaignTask:
    """Early-stopping wrapper around a scalar-accuracy cell task.

    Each fault rate becomes one executor cell holding the whole trial
    *family*: trials run in chunks of ``batch_k`` (through the base
    runner's batched path, so intra-chunk variants share wide tails)
    and the family stops once its pooled interval's half-width is at
    most ``ci_halfwidth``, or after ``max_trials`` (the base config's
    trial count by default).  Executed trials reuse the exact per-cell
    seed paths, so every executed accuracy is bit-identical to the
    corresponding cell of the exact sweep.

    With ``importance`` set (weight campaigns over the random-bit-flip
    model only — the reweighting is exact against that target), trial
    fault sets are drawn from the tilted proposal instead of the base
    sampler and the family estimate is the weighted mean.

    The cell vector layout is ``[estimate, executed, acc_0..acc_{T-1}
    (, w_0..w_{T-1})]`` with :data:`SKIP_SENTINEL` padding, so adaptive
    sweeps checkpoint/resume through the unchanged executor machinery.
    """

    def __init__(
        self,
        base,
        ci_halfwidth: float = 0.02,
        max_trials: "int | None" = None,
        batch_k: int = 0,
        level: float = 0.95,
        method: str = "wilson",
        importance: "ImportanceBitflipSampler | float | None" = None,
        min_trials: int = 2,
        label: "str | None" = None,
    ):
        if int(getattr(base, "cell_width", 1)) != 1:
            raise ValueError(
                f"adaptive stopping needs a scalar-accuracy base task; "
                f"{base.kind!r} has cell_width={base.cell_width}"
            )
        if not 0.0 < ci_halfwidth <= 0.5:
            raise ValueError(
                f"ci_halfwidth must be in (0, 0.5], got {ci_halfwidth}"
            )
        if method not in _METHODS:
            raise ValueError(
                f"method must be one of {_METHODS}, got {method!r}"
            )
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        if isinstance(importance, (int, float)) and not isinstance(
            importance, bool
        ):
            importance = ImportanceBitflipSampler(boost=float(importance))
        if importance is not None and not hasattr(base, "memory"):
            raise ValueError(
                "importance sampling needs a base task with a weight "
                "memory (weight-fault campaigns)"
            )
        self.base = base
        self.max_trials = int(
            base.config.trials if max_trials is None else max_trials
        )
        if self.max_trials < 1:
            raise ValueError(f"max_trials must be >= 1, got {max_trials}")
        self.ci_halfwidth = float(ci_halfwidth)
        self.level = float(level)
        self.method = str(method)
        self.importance = importance
        # The chunk width is scientific for adaptive runs: the stopping
        # rule is evaluated at chunk boundaries, so it shapes which
        # trials execute.  0 resolves to DEFAULT_BATCH_K here (never to
        # the environment, which must not move stopping decisions).
        self.batch_k = int(batch_k) if int(batch_k) > 0 else DEFAULT_BATCH_K
        self.min_trials = min(max(1, int(min_trials)), self.max_trials)
        self.label = base.label if label is None else label
        self.kind = f"adaptive:{base.kind}"
        self.config = replace(base.config, trials=1)
        self.cell_width = adaptive_cell_width(
            self.max_trials, weighted=importance is not None
        )

    def __getstate__(self) -> dict:
        from repro.core.executor import payload_state

        return payload_state(self)

    def make_runner(self) -> "_AdaptiveFamilyRunner":
        return _AdaptiveFamilyRunner(self)

    def build_result(
        self, rates: np.ndarray, values: np.ndarray
    ) -> "AdaptiveResult":
        return AdaptiveResult.from_grid(self, rates, values)


class _AdaptiveFamilyRunner:
    """Evaluates one (rate, family) cell by looping the base runner."""

    def __init__(self, task: AdaptiveCampaignTask):
        self.task = task
        self.inner = task.base.make_runner()
        # The executor's parent-side cache export looks for `.engine`.
        self.engine = getattr(self.inner, "engine", None)
        self.n_images = int(task.base.labels.shape[0])

    def run_cell(self, rate_index: int, trial: int) -> np.ndarray:
        task = self.task
        total = task.max_trials
        chunk_width = task.batch_k
        accuracies: "list[float]" = []
        weights: "list[float] | None" = (
            [] if task.importance is not None else None
        )
        estimate = 0.0
        while len(accuracies) < total:
            upto = min(len(accuracies) + chunk_width, total)
            trial_indices = list(range(len(accuracies), upto))
            if weights is not None:
                draws = [self._draw(rate_index, j) for j in trial_indices]
                values = self.inner.run_fault_sets([fs for fs, _ in draws])
                weights.extend(weight for _, weight in draws)
            else:
                values = self.inner.run_cells(
                    [(rate_index, j) for j in trial_indices]
                )
            accuracies.extend(float(value) for value in values)
            estimate, halfwidth = family_interval(
                accuracies,
                self.n_images,
                level=task.level,
                method=task.method,
                weights=weights,
            )
            if (
                len(accuracies) >= task.min_trials
                and halfwidth <= task.ci_halfwidth
            ):
                break
        vector = np.full(task.cell_width, SKIP_SENTINEL, dtype=np.float64)
        vector[0] = estimate
        vector[1] = len(accuracies)
        vector[2 : 2 + len(accuracies)] = accuracies
        if weights is not None:
            offset = 2 + total
            vector[offset : offset + len(weights)] = weights
        return vector

    def _draw(self, rate_index: int, trial: int):
        """One importance draw on the cell's own seed path."""
        from repro.core.executor import cell_seed_path

        base = self.task.base
        rate = float(base.config.fault_rates[rate_index])
        rng = self.inner.tree.generator(cell_seed_path(rate_index, trial))
        return self.task.importance.sample_with_weight(base.memory, rate, rng)

    def close(self) -> None:
        self.inner.close()


@dataclass(frozen=True)
class AdaptiveResult:
    """One adaptive sweep's estimates, achieved widths and savings.

    ``accuracies`` is the ``(n_rates, max_trials)`` executed-trial
    matrix padded with :data:`SKIP_SENTINEL`; executed entries are
    bit-identical to the exact sweep's corresponding cells.  ``curve``
    offers a :class:`~repro.core.metrics.ResilienceCurve` view for
    plotting/AUC code, with skipped cells filled by the family estimate
    (clipped to [0, 1]) — the ``estimates`` vector stays authoritative.
    """

    label: str
    fault_rates: np.ndarray
    estimates: np.ndarray
    halfwidths: np.ndarray
    executed: np.ndarray
    accuracies: np.ndarray
    weights: "np.ndarray | None"
    max_trials: int
    tolerance: float
    level: float
    method: str
    clean_accuracy: float

    @classmethod
    def from_grid(
        cls, task: AdaptiveCampaignTask, rates: np.ndarray, values: np.ndarray
    ) -> "AdaptiveResult":
        clean = getattr(task.base, "clean_accuracy", None)
        return cls.assemble(
            label=task.label,
            rates=rates,
            values=values,
            max_trials=task.max_trials,
            weighted=task.importance is not None,
            n_images=int(task.base.labels.shape[0]),
            tolerance=task.ci_halfwidth,
            level=task.level,
            method=task.method,
            clean_accuracy=float(clean()) if callable(clean) else float("nan"),
        )

    @classmethod
    def assemble(
        cls,
        label: str,
        rates: np.ndarray,
        values: np.ndarray,
        max_trials: int,
        weighted: bool,
        n_images: int,
        tolerance: float,
        level: float = 0.95,
        method: str = "wilson",
        clean_accuracy: float = float("nan"),
    ) -> "AdaptiveResult":
        """Rebuild a result from raw cell vectors, without the task.

        The pure-data twin of :meth:`from_grid`: everything except the
        clean accuracy is a function of the recorded grid and the spec
        parameters, so shard merging reassembles results from per-shard
        JSON — bit-identical to the unsharded ``build_result`` because
        the half-width recomputation (:func:`family_interval`) sees the
        exact same executed accuracies and weights.
        """
        total = int(max_trials)
        grid = np.asarray(values, dtype=np.float64).reshape(
            len(rates), adaptive_cell_width(total, weighted)
        )
        estimates = grid[:, 0].copy()
        # A quarantined family leaves its grid row all-NaN; casting NaN
        # to int is undefined, so treat it as zero executed trials (the
        # estimate stays NaN and the half-width below becomes inf).
        raw_executed = grid[:, 1]
        executed = np.where(
            np.isfinite(raw_executed), raw_executed, 0.0
        ).astype(np.int64)
        accuracies = grid[:, 2 : 2 + total].copy()
        weights = None
        if weighted:
            weights = grid[:, 2 + total : 2 + 2 * total].copy()
        halfwidths = np.empty(len(rates), dtype=np.float64)
        for index in range(len(rates)):
            n_exec = int(executed[index])
            if n_exec <= 0:
                halfwidths[index] = float("inf")
                continue
            halfwidths[index] = family_interval(
                accuracies[index, :n_exec],
                int(n_images),
                level=level,
                method=method,
                weights=(
                    weights[index, :n_exec] if weights is not None else None
                ),
            )[1]
        return cls(
            label=label,
            fault_rates=np.asarray(rates, dtype=np.float64),
            estimates=estimates,
            halfwidths=halfwidths,
            executed=executed,
            accuracies=accuracies,
            weights=weights,
            max_trials=total,
            tolerance=float(tolerance),
            level=float(level),
            method=str(method),
            clean_accuracy=float(clean_accuracy),
        )

    @property
    def cells_total(self) -> int:
        return int(self.fault_rates.size) * int(self.max_trials)

    @property
    def cells_executed(self) -> int:
        return int(self.executed.sum())

    @property
    def cells_skipped(self) -> int:
        return self.cells_total - self.cells_executed

    @property
    def curve(self) -> ResilienceCurve:
        filled = self.accuracies.copy()
        for index in range(filled.shape[0]):
            estimate = float(self.estimates[index])
            # max(0.0, nan) silently returns 0.0; keep a quarantined
            # family's row NaN instead of faking a zero-accuracy one.
            fill = (
                min(1.0, max(0.0, estimate))
                if math.isfinite(estimate)
                else float("nan")
            )
            filled[index, int(self.executed[index]) :] = fill
        return ResilienceCurve(
            fault_rates=self.fault_rates,
            accuracies=filled,
            clean_accuracy=self.clean_accuracy,
            label=self.label,
        )

    def to_dict(self) -> dict:
        payload = {
            "label": self.label,
            "fault_rates": [float(r) for r in self.fault_rates],
            "estimates": [float(e) for e in self.estimates],
            "ci_halfwidths": [float(h) for h in self.halfwidths],
            "executed": [int(e) for e in self.executed],
            "max_trials": int(self.max_trials),
            "cells_executed": self.cells_executed,
            "cells_skipped": self.cells_skipped,
            "tolerance": float(self.tolerance),
            "level": float(self.level),
            "method": self.method,
            "clean_accuracy": float(self.clean_accuracy),
        }
        if self.weights is not None:
            payload["importance_weights"] = [
                [float(w) for w in row] for row in self.weights
            ]
        return payload
