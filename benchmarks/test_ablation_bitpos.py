"""Ablation: bit-position sensitivity (quantifying paper Section III).

The paper explains the damage mechanism as 0->1 flips at MSB (exponent)
locations.  This benchmark flips a fixed number of weights at each
IEEE-754 bit position of the AlexNet weight memory and measures accuracy.

Expected shape: exponent MSB (bit 30) is catastrophic; high exponent bits
degrade strongly; mantissa bits and the sign bit are nearly harmless at
the same flip count.
"""

from benchmarks.conftest import run_once
from repro.analysis.bitpos import run_bit_position_study
from repro.analysis.reporting import format_table
from repro.experiments import clone_model
from repro.hw.bits import bit_field

POSITIONS = [0, 8, 16, 22, 23, 25, 27, 29, 30, 31]


def test_ablation_bit_position_sensitivity(
    benchmark, alexnet_bundle, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    images, labels = images[:128], labels[:128]
    model = clone_model(alexnet_bundle)

    result = run_once(
        benchmark,
        lambda: run_bit_position_study(
            model,
            images,
            labels,
            n_faults=20,
            trials=5,
            seed=21,
            positions=POSITIONS,
        ),
    )

    means = result.mean_by_position()
    rows = [
        [int(position), bit_field(int(position)), f"{mean:.4f}"]
        for position, mean in zip(result.bit_positions, means)
    ]
    fields = result.mean_by_field()
    footer = (
        f"\nby field: mantissa {fields['mantissa']:.4f}, sign "
        f"{fields['sign']:.4f}, exponent {fields['exponent']:.4f} "
        f"(clean {result.clean_accuracy:.4f})"
    )
    record_result(
        "ablation_bitpos",
        format_table(
            ["bit", "field", "mean accuracy"],
            rows,
            title="Ablation — accuracy after flipping bit b of 20 random weights",
        )
        + footer,
    )

    table = dict(zip(result.bit_positions.tolist(), means.tolist()))
    # Exponent MSB is catastrophic.
    assert table[30] < result.clean_accuracy - 0.3
    # Mantissa LSB is harmless.
    assert table[0] > result.clean_accuracy - 0.05
    # Field ordering: exponent worst, mantissa best.
    assert fields["exponent"] < fields["mantissa"]
    assert table[30] == min(table.values())
