"""Resilience metrics: accuracy and the paper's AUC (Section IV-B).

The AUC is the area under the classification-accuracy vs. *normalized*
fault-rate curve, computed with the trapezoidal rule, with both axes
normalized so a network holding 100% accuracy across the whole fault
range scores exactly 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import nn
from repro.utils.validation import check_in_choices, check_positive

__all__ = [
    "evaluate_accuracy_arrays",
    "predict_labels",
    "BatchForward",
    "auc_resilience",
    "BoxStats",
    "ResilienceCurve",
]

# An alternate per-batch inference path: maps ``(batch, start_offset)`` to
# logits.  The suffix re-execution engine (repro.core.suffix) supplies one
# that recomputes only the layers downstream of the first faulted layer;
# ``None`` always means the plain full forward ``model(batch)``.
BatchForward = Callable[[np.ndarray, int], np.ndarray]


def predict_labels(
    model: nn.Module,
    images: np.ndarray,
    batch_size: int = 128,
    forward: "BatchForward | None" = None,
) -> np.ndarray:
    """Argmax class predictions over ``images`` in eval mode.

    ``forward`` optionally replaces the full forward pass per batch (it
    receives the batch and its start offset into ``images``); any
    replacement must be bit-identical to ``model(batch)`` — the suffix
    engine's partial re-execution is, by construction.
    """
    check_positive("batch_size", batch_size)
    was_training = model.training
    model.eval()
    predictions = []
    try:
        # Faulty weights legitimately overflow float32 (that is the studied
        # failure mode); inf/nan logits are still argmax-able.
        with np.errstate(over="ignore", invalid="ignore"):
            for start in range(0, images.shape[0], batch_size):
                batch = images[start : start + batch_size]
                logits = model(batch) if forward is None else forward(batch, start)
                predictions.append(np.argmax(logits, axis=1))
    finally:
        model.train(was_training)
    return np.concatenate(predictions)


def evaluate_accuracy_arrays(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 128,
    forward: "BatchForward | None" = None,
) -> float:
    """Top-1 accuracy of ``model`` on in-memory arrays."""
    labels = np.asarray(labels)
    if images.shape[0] != labels.shape[0]:
        raise ValueError(
            f"images and labels disagree on sample count: "
            f"{images.shape[0]} vs {labels.shape[0]}"
        )
    if images.shape[0] == 0:
        raise ValueError("cannot evaluate accuracy on zero samples")
    predictions = predict_labels(model, images, batch_size, forward=forward)
    return float((predictions == labels).mean())


def auc_resilience(
    fault_rates: np.ndarray,
    accuracies: np.ndarray,
    x_mode: str = "index",
) -> float:
    """Paper Section IV-B: trapezoidal area under accuracy vs fault rate.

    ``fault_rates`` must be sorted ascending; ``accuracies`` are fractions
    in [0, 1] (mean accuracy at each rate).  Both axes are normalized so
    the ideal network scores 1.

    ``x_mode`` selects the normalized-rate axis:

    * ``"index"`` (default): the sampled rates are spread evenly over
      [0, 1] — equivalent to uniform weight per sampled (log-spaced) rate,
      matching the evenly-spaced markers of paper Fig. 5a;
    * ``"linear"``: rates are normalized by the maximum rate, which makes
      the AUC dominated by behaviour near the top of the fault range.
    """
    check_in_choices("x_mode", x_mode, ("index", "linear"))
    rates = np.asarray(fault_rates, dtype=np.float64)
    accs = np.asarray(accuracies, dtype=np.float64)
    if rates.ndim != 1 or rates.shape != accs.shape:
        raise ValueError(
            f"fault_rates and accuracies must be matching 1-D arrays, got "
            f"{rates.shape} and {accs.shape}"
        )
    if rates.size < 2:
        raise ValueError("need at least two fault rates to integrate")
    if np.any(np.diff(rates) <= 0):
        raise ValueError("fault_rates must be strictly increasing")
    if np.any((accs < 0) | (accs > 1)):
        raise ValueError("accuracies must lie in [0, 1]")

    if x_mode == "index":
        x = np.linspace(0.0, 1.0, rates.size)
    else:
        x = rates / rates.max()
    return float(np.trapezoid(accs, x))


def _t_critical(level: float, df: int) -> float:
    """Two-sided Student-t critical value; scipy if present, else a
    normal-approximation fallback adequate for df >= 5."""
    tail = (1.0 + level) / 2.0
    try:
        from scipy import stats

        return float(stats.t.ppf(tail, df))
    except ImportError:  # pragma: no cover - scipy is present in dev envs
        # Cornish-Fisher style correction of the normal quantile.
        from math import sqrt

        z = sqrt(2.0) * _erfinv(2.0 * tail - 1.0)
        return z * (1.0 + (z * z + 1.0) / (4.0 * df))


def _erfinv(y: float) -> float:  # pragma: no cover - scipy fallback only
    """Rational approximation of the inverse error function."""
    a = 0.147
    import math

    ln_term = math.log(1.0 - y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), y
    )


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary of the accuracy distribution at one fault rate."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "BoxStats":
        """Summarise a 1-D array of accuracy samples."""
        samples = np.asarray(samples, dtype=np.float64)
        if samples.size == 0:
            raise ValueError("cannot summarise zero samples")
        q1, median, q3 = np.percentile(samples, [25, 50, 75])
        return cls(
            minimum=float(samples.min()),
            q1=float(q1),
            median=float(median),
            q3=float(q3),
            maximum=float(samples.max()),
            mean=float(samples.mean()),
        )


@dataclass
class ResilienceCurve:
    """Accuracy-vs-fault-rate results of one campaign.

    ``accuracies`` has shape ``(n_rates, n_trials)``: independent
    fault-injection trials per rate.  ``clean_accuracy`` is the fault-free
    accuracy of the same model on the same evaluation set.
    """

    fault_rates: np.ndarray
    accuracies: np.ndarray
    clean_accuracy: float
    label: str = ""

    def __post_init__(self) -> None:
        self.fault_rates = np.asarray(self.fault_rates, dtype=np.float64)
        self.accuracies = np.atleast_2d(np.asarray(self.accuracies, dtype=np.float64))
        if self.fault_rates.ndim != 1:
            raise ValueError("fault_rates must be 1-D")
        if self.accuracies.shape[0] != self.fault_rates.size:
            raise ValueError(
                f"accuracies rows ({self.accuracies.shape[0]}) must match "
                f"fault_rates ({self.fault_rates.size})"
            )
        if np.any(np.diff(self.fault_rates) <= 0):
            raise ValueError("fault_rates must be strictly increasing")

    @property
    def n_trials(self) -> int:
        """Trials per fault rate."""
        return self.accuracies.shape[1]

    def mean_accuracies(self) -> np.ndarray:
        """Mean accuracy per fault rate (paper Fig. 7a/8a series)."""
        return self.accuracies.mean(axis=1)

    def worst_case(self) -> np.ndarray:
        """Minimum accuracy per fault rate (box-plot whisker bottom)."""
        return self.accuracies.min(axis=1)

    def box_stats(self) -> list[BoxStats]:
        """Per-rate five-number summaries (paper Fig. 7b/7c, 8b/8c)."""
        return [BoxStats.from_samples(row) for row in self.accuracies]

    def confidence_interval(self, level: float = 0.95) -> tuple[np.ndarray, np.ndarray]:
        """Per-rate Student-t confidence interval of the mean accuracy.

        Returns ``(lower, upper)`` arrays.  With a single trial the
        interval degenerates to the point estimate.
        """
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must lie in (0, 1), got {level}")
        means = self.mean_accuracies()
        n = self.n_trials
        if n < 2:
            return means.copy(), means.copy()
        std_err = self.accuracies.std(axis=1, ddof=1) / np.sqrt(n)
        critical = _t_critical(level, df=n - 1)
        half_width = critical * std_err
        return (
            np.clip(means - half_width, 0.0, 1.0),
            np.clip(means + half_width, 0.0, 1.0),
        )

    def auc(self, include_zero_rate: bool = True, x_mode: str = "index") -> float:
        """The paper's AUC over this curve.

        With ``include_zero_rate`` the fault-free point (rate 0, clean
        accuracy) anchors the left end of the integration range, matching
        the paper's "fault range from 0 to 1e-5" phrasing.
        """
        rates = self.fault_rates
        accs = self.mean_accuracies()
        if include_zero_rate and rates[0] > 0:
            rates = np.concatenate([[0.0], rates])
            accs = np.concatenate([[self.clean_accuracy], accs])
        # The zero-rate point breaks pure-log spacing; "index" mode treats
        # all sampled points uniformly, which is what we document.
        return auc_resilience(rates, accs, x_mode=x_mode)

    def save(self, path: "str | Path") -> "Path":
        """Persist the curve to an ``.npz`` archive."""
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        np.savez(
            target,
            fault_rates=self.fault_rates,
            accuracies=self.accuracies,
            clean_accuracy=np.asarray([self.clean_accuracy]),
            label=np.frombuffer(self.label.encode("utf-8"), dtype=np.uint8),
        )
        return target

    @classmethod
    def load(cls, path: "str | Path") -> "ResilienceCurve":
        """Load a curve written by :meth:`save`."""
        from pathlib import Path

        source = Path(path)
        if not source.exists():
            raise FileNotFoundError(f"no such curve file: {source}")
        with np.load(source) as archive:
            return cls(
                fault_rates=archive["fault_rates"],
                accuracies=archive["accuracies"],
                clean_accuracy=float(archive["clean_accuracy"][0]),
                label=bytes(archive["label"]).decode("utf-8"),
            )

    def summary_rows(self) -> list[dict[str, float]]:
        """Row dicts (rate, mean, min, q1, median, q3, max) for reports."""
        rows = []
        for rate, box in zip(self.fault_rates, self.box_stats()):
            rows.append(
                {
                    "fault_rate": float(rate),
                    "mean": box.mean,
                    "min": box.minimum,
                    "q1": box.q1,
                    "median": box.median,
                    "q3": box.q3,
                    "max": box.maximum,
                }
            )
        return rows
