"""Stochastic gradient descent with momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with optional (Nesterov) momentum and decoupled L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(parameters, lr)
        self.momentum = self._check_hyper("momentum", momentum)
        self.weight_decay = self._check_hyper("weight_decay", weight_decay)
        self.nesterov = bool(nesterov)
        if self.nesterov and self.momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self._velocity: list["np.ndarray | None"] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity[index]
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[index] = velocity
                if self.nesterov:
                    grad = grad + self.momentum * velocity
                else:
                    grad = velocity
            param.data -= (self.lr * grad).astype(np.float32)
