"""Ablation: float32 vs int8 weight storage under faults (our extension).

The paper's damage mechanism is specific to floating point: an exponent
MSB flip scales a weight by 2^128.  Int8 storage bounds any single-bit
corruption at roughly the max weight magnitude, so quantization is itself
a fault-tolerance mechanism — at a small clean-accuracy cost.  This
benchmark quantifies that on the AlexNet, alongside the paper's fix:

* float32 unprotected (the paper's baseline);
* float32 + FT-ClipAct (the paper's fix);
* int8 unprotected (storage-level fix).

Expected: int8 and FT-ClipAct both hold accuracy where float32 collapses;
int8's curve is the flattest because its error is bounded per weight.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_comparison_table
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.quantized import run_quantized_campaign
from repro.experiments import clone_model, paper_fault_rates
from repro.hw.memory import WeightMemory


def test_ablation_int8_vs_float32(
    benchmark, alexnet_bundle, alexnet_hardened, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    images, labels = images[:128], labels[:128]
    hardened_model, _, _ = alexnet_hardened
    config = CampaignConfig(fault_rates=paper_fault_rates(), trials=8, seed=29)

    def experiment():
        float_model = clone_model(alexnet_bundle)
        float_curve = run_campaign(
            float_model,
            WeightMemory.from_model(float_model),
            images,
            labels,
            config,
            label="float32",
        )
        clip_curve = run_campaign(
            hardened_model,
            WeightMemory.from_model(hardened_model),
            images,
            labels,
            config,
            label="ftclipact",
        )
        int8_model = clone_model(alexnet_bundle)
        int8_curve = run_quantized_campaign(
            int8_model,
            WeightMemory.from_model(int8_model),
            images,
            labels,
            config,
            label="int8",
        )
        return float_curve, clip_curve, int8_curve

    float_curve, clip_curve, int8_curve = run_once(benchmark, experiment)

    record_result(
        "ablation_quantization",
        format_comparison_table(
            [float_curve, clip_curve, int8_curve],
            labels=["float32", "float32+clip", "int8"],
            title="Ablation — weight storage format under faults (AlexNet)",
        ),
    )

    # Int8 quantization costs little clean accuracy on this model.
    assert int8_curve.clean_accuracy >= float_curve.clean_accuracy - 0.05
    # Both fixes massively beat raw float32.
    assert clip_curve.auc() > float_curve.auc() + 0.05
    assert int8_curve.auc() > float_curve.auc() + 0.05
    # Bounded int8 corruption yields the flattest curve at the top rate.
    assert (
        int8_curve.mean_accuracies()[-1]
        >= float_curve.mean_accuracies()[-1] + 0.2
    )
