"""Thin urllib client for the ``repro serve`` daemon.

Wraps the ``ROUTES`` surface of :mod:`repro.service.daemon` for the
``repro submit``/``repro status``/``repro fetch`` subcommands and the
test harness.  ``fetch`` writes the service's verbatim file payloads
back to disk, so a fetched run directory is byte-identical to one
produced by ``repro scenarios --out`` directly.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any

__all__ = [
    "DEFAULT_URL",
    "URL_ENV_VAR",
    "ServiceClient",
    "ServiceClientError",
    "service_url",
]

URL_ENV_VAR = "REPRO_SERVE_URL"
DEFAULT_URL = "http://127.0.0.1:8972"


def service_url(url: "str | None" = None) -> str:
    """Resolve the daemon URL: explicit arg, then $REPRO_SERVE_URL, then default."""
    if url:
        return url.rstrip("/")
    return os.environ.get(URL_ENV_VAR, DEFAULT_URL).rstrip("/")


class ServiceClientError(RuntimeError):
    """An HTTP error from the daemon, carrying its status and JSON message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"[{status}] {message}")
        self.status = status


class ServiceClient:
    """One daemon endpoint; methods mirror the ROUTES table."""

    def __init__(self, url: "str | None" = None, timeout: float = 60.0):
        self.url = service_url(url)
        self.timeout = timeout

    def _request(self, path: str, body: "bytes | None" = None) -> tuple[bytes, str]:
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=body,
            headers={"Content-Type": "application/json"} if body else {},
            method="POST" if body is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read(), response.headers.get_content_type()
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                message = json.loads(raw.decode("utf-8"))["error"]
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError):
                message = raw.decode("utf-8", "replace") or error.reason
            raise ServiceClientError(error.code, message) from None

    def _json(self, path: str, body: "bytes | None" = None) -> Any:
        raw, _ = self._request(path, body)
        return json.loads(raw.decode("utf-8"))

    def submit(self, suite_payload: Any) -> dict[str, Any]:
        """POST a suite JSON; returns ``{"id", "state", "cached"}``."""
        body = json.dumps(suite_payload).encode("utf-8")
        return self._json("/campaigns", body)

    def status(self, run_id: str) -> dict[str, Any]:
        return self._json(f"/campaigns/{run_id}")

    def stats(self) -> dict[str, Any]:
        return self._json("/stats")

    def results(self, run_id: str) -> dict[str, Any]:
        return self._json(f"/campaigns/{run_id}/results")

    def store(self, run_id: str) -> bytes:
        raw, _ = self._request(f"/campaigns/{run_id}/store")
        return raw

    def report(self, run_id: str) -> bytes:
        raw, _ = self._request(f"/campaigns/{run_id}/report")
        return raw

    def wait(
        self, run_id: str, timeout: "float | None" = None, poll: float = 0.2
    ) -> dict[str, Any]:
        """Poll status until the run completes or fails."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(run_id)
            if status["state"] in ("complete", "failed"):
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {run_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll)

    def fetch(self, run_id: str, out_dir: "str | Path") -> list[Path]:
        """Materialize a finished run into ``out_dir``, byte-verbatim.

        Writes every result JSON at the names ``repro scenarios --out``
        uses, the canonical store under ``store/cells.rcs`` and the
        rendered ``report.html``; returns the written paths.
        """
        from repro.results.store import store_path

        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        for name, text in sorted(self.results(run_id)["files"].items()):
            path = out / name
            path.write_text(text)
            written.append(path)
        store_target = store_path(out)
        store_target.parent.mkdir(parents=True, exist_ok=True)
        store_target.write_bytes(self.store(run_id))
        written.append(store_target)
        report_target = out / "report.html"
        report_target.write_bytes(self.report(run_id))
        written.append(report_target)
        return written
