"""Model registry and the paper's layer-naming convention.

The paper refers to computational layers as CONV-1..CONV-n followed by
FC-1..FC-m; :func:`computational_layers` recovers that naming from any
model built from this library's modules, which the per-layer fault
injection and profiling code relies on.
"""

from __future__ import annotations

from typing import Callable

from repro import nn
from repro.models.alexnet import build_alexnet
from repro.models.lenet import build_lenet5
from repro.models.mlp import build_mlp
from repro.models.vgg import build_vgg16

__all__ = [
    "MODEL_BUILDERS",
    "build_model",
    "computational_layers",
    "layer_names",
]

ModelBuilder = Callable[..., nn.Module]

MODEL_BUILDERS: dict[str, ModelBuilder] = {
    "alexnet": build_alexnet,
    "vgg16": build_vgg16,
    "lenet5": build_lenet5,
    "mlp": build_mlp,
}


def build_model(
    name: str, num_classes: int = 10, width_mult: float = 1.0, seed: int = 0
) -> nn.Module:
    """Instantiate a registered architecture by name."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder(num_classes=num_classes, width_mult=width_mult, seed=seed)


def computational_layers(model: nn.Module) -> list[tuple[str, nn.Module]]:
    """Ordered ``(paper_name, layer)`` pairs for all CONV/FC layers.

    Convolutions are named CONV-1, CONV-2, ... and linear layers FC-1,
    FC-2, ... in forward order, matching the paper's Figure 3 labels.
    """
    pairs: list[tuple[str, nn.Module]] = []
    conv_count = 0
    fc_count = 0
    for _, module in model.named_modules():
        if isinstance(module, nn.Conv2d):
            conv_count += 1
            pairs.append((f"CONV-{conv_count}", module))
        elif isinstance(module, nn.Linear):
            fc_count += 1
            pairs.append((f"FC-{fc_count}", module))
    return pairs


def layer_names(model: nn.Module) -> list[str]:
    """Just the paper-style names of the computational layers, in order."""
    return [name for name, _ in computational_layers(model)]


def model_summary(model: nn.Module) -> str:
    """A text table of the model's computational layers.

    Columns: paper-style name, layer type, parameter count, weight-memory
    bits — the quantities the resilience analysis reasons about.
    """
    from repro.analysis.reporting import format_table

    rows: list[list[object]] = []
    total_params = 0
    for name, layer in computational_layers(model):
        params = sum(p.size for _, p in layer.named_parameters())
        total_params += params
        rows.append([name, type(layer).__name__, params, params * 32])
    rows.append(["total", "", total_params, total_params * 32])
    return format_table(["layer", "type", "params", "weight bits"], rows)
