"""Per-cell result store and static run diagnostics.

:mod:`repro.results.store` keeps every executor cell as one
fixed-schema record — appended incrementally while a run executes and
reassembled losslessly by ``repro merge`` into a canonical columnar
file whose bytes are invariant to shard count, worker count and
completion order.  :mod:`repro.results.report` renders a run directory
(and optionally the per-SHA benchmark histories) into one
deterministic, self-contained HTML page.  See ``docs/RESULTS.md``.
"""

from repro.results.report import (
    REPORT_FILENAME,
    REPORT_SECTIONS,
    load_run,
    render_report,
    write_report,
)
from repro.results.store import (
    CELL_COLUMNS,
    OUTCOME_CLASSES,
    SEGMENT_FILENAME,
    SHARD_SEGMENT_FILENAME,
    STORE_DIRNAME,
    STORE_FILENAME,
    STORE_FORMAT_VERSION,
    CellRecord,
    CellStore,
    SegmentRecorder,
    read_segment,
    read_segments,
    read_store,
    records_from_failure,
    records_from_value,
    segment_path,
    store_from_results,
    store_path,
    write_store,
)

__all__ = [
    "CELL_COLUMNS",
    "OUTCOME_CLASSES",
    "REPORT_FILENAME",
    "REPORT_SECTIONS",
    "SEGMENT_FILENAME",
    "SHARD_SEGMENT_FILENAME",
    "STORE_DIRNAME",
    "STORE_FILENAME",
    "STORE_FORMAT_VERSION",
    "CellRecord",
    "CellStore",
    "SegmentRecorder",
    "load_run",
    "read_segment",
    "read_segments",
    "read_store",
    "records_from_failure",
    "records_from_value",
    "render_report",
    "segment_path",
    "store_from_results",
    "store_path",
    "write_report",
    "write_store",
]
