"""Figure-reproduction benchmark package."""
