"""Pre-trained model zoo.

The paper starts from pre-trained AlexNet/VGG-16 models.  With no network
access, the zoo *produces* those models: it trains each registered
architecture on the synthetic CIFAR-10 replacement and caches the weights
(plus training metadata) on disk keyed by the full configuration, so every
experiment after the first reuses the same pre-trained network — exactly
the paper's workflow.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro import nn
from repro.data.dataset import ArrayDataset
from repro.data.loader import DataLoader
from repro.data.synthetic import SyntheticCIFAR10
from repro.models.registry import build_model
from repro.optim.adam import Adam
from repro.optim.trainer import Trainer, evaluate_accuracy
from repro.utils.cache import ArtifactCache
from repro.utils.serialization import load_state_dict, save_state_dict

__all__ = ["ZooConfig", "PretrainedBundle", "get_pretrained", "train_model"]


@dataclass(frozen=True)
class ZooConfig:
    """Everything that determines a pre-trained model (and its cache key)."""

    model: str = "alexnet"
    num_classes: int = 10
    width_mult: float = 0.25
    seed: int = 2020
    n_train: int = 2000
    n_val: int = 400
    n_test: int = 600
    epochs: int = 10
    batch_size: int = 64
    lr: float = 1e-3
    noise_std: float = 0.08

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (used for cache fingerprinting)."""
        return asdict(self)


@dataclass
class PretrainedBundle:
    """A trained model together with its data splits and clean accuracy."""

    model: nn.Module
    config: ZooConfig
    clean_accuracy: float
    train_set: ArrayDataset = field(repr=False)
    val_set: ArrayDataset = field(repr=False)
    test_set: ArrayDataset = field(repr=False)
    from_cache: bool = False

    @property
    def name(self) -> str:
        """Architecture name of the bundled model."""
        return self.config.model


def _make_splits(config: ZooConfig) -> tuple[ArrayDataset, ArrayDataset, ArrayDataset]:
    generator = SyntheticCIFAR10(
        num_classes=config.num_classes,
        noise_std=config.noise_std,
        seed=config.seed,
    )
    return generator.splits(config.n_train, config.n_val, config.n_test)


def train_model(config: ZooConfig, verbose: bool = False) -> PretrainedBundle:
    """Train a model from scratch according to ``config`` (no cache)."""
    train_set, val_set, test_set = _make_splits(config)
    model = build_model(
        config.model,
        num_classes=config.num_classes,
        width_mult=config.width_mult,
        seed=config.seed,
    )
    train_loader = DataLoader(
        train_set, batch_size=config.batch_size, shuffle=True, seed=config.seed
    )
    val_loader = DataLoader(val_set, batch_size=config.batch_size)
    optimizer = Adam(model.parameters(), lr=config.lr)
    trainer = Trainer(model, optimizer, grad_clip=5.0)
    trainer.fit(
        train_loader,
        epochs=config.epochs,
        val_loader=val_loader,
        patience=max(3, config.epochs // 2),
        verbose=verbose,
    )
    test_loader = DataLoader(test_set, batch_size=config.batch_size)
    clean_accuracy = evaluate_accuracy(model, test_loader)
    return PretrainedBundle(
        model=model,
        config=config,
        clean_accuracy=clean_accuracy,
        train_set=train_set,
        val_set=val_set,
        test_set=test_set,
        from_cache=False,
    )


def get_pretrained(
    config: "ZooConfig | None" = None,
    cache: "ArtifactCache | None" = None,
    retrain: bool = False,
    verbose: bool = False,
    **overrides: Any,
) -> PretrainedBundle:
    """Return a pre-trained model, training and caching it on first use.

    Keyword overrides are applied on top of ``config`` (or the defaults),
    e.g. ``get_pretrained(model="vgg16", width_mult=0.125)``.
    """
    if config is None:
        config = ZooConfig(**overrides)
    elif overrides:
        config = ZooConfig(**{**config.to_dict(), **overrides})
    cache = cache if cache is not None else ArtifactCache()
    path = cache.path_for(f"zoo-{config.model}", config.to_dict())

    if path.exists() and not retrain:
        state, metadata = load_state_dict(path)
        model = build_model(
            config.model,
            num_classes=config.num_classes,
            width_mult=config.width_mult,
            seed=config.seed,
        )
        model.load_state_dict(state)
        model.eval()
        train_set, val_set, test_set = _make_splits(config)
        return PretrainedBundle(
            model=model,
            config=config,
            clean_accuracy=float(metadata["clean_accuracy"]),
            train_set=train_set,
            val_set=val_set,
            test_set=test_set,
            from_cache=True,
        )

    bundle = train_model(config, verbose=verbose)
    save_state_dict(
        path,
        bundle.model.state_dict(),
        metadata={"clean_accuracy": bundle.clean_accuracy, "config": config.to_dict()},
    )
    return bundle
