"""Triple modular redundancy (TMR) for the weight memory.

The paper's introduction cites DMR/TMR as the classic redundancy-based
mitigation (Tesla's FSD computer uses DMR).  This module models bitwise
TMR on the weight memory: every bit is stored three times and a majority
vote recovers the value on read.  Faults are sampled independently over
the 3x-sized replica space, so TMR honestly pays its exposure cost; a data
bit is corrupted only when at least two of its three replicas fault.
"""

from __future__ import annotations

import numpy as np

from repro.hw.faultmodels import FaultSet
from repro.hw.memory import WeightMemory
from repro.utils.validation import check_probability

__all__ = ["TMRFilter", "DMRFilter"]


class TMRFilter:
    """Campaign-level model of bitwise-TMR-protected weight memory."""

    REPLICAS = 3

    def protected_bits(self, memory: WeightMemory) -> int:
        """Size of the replica bit space (3x the data bits)."""
        return memory.total_bits * self.REPLICAS

    def filter(self, memory: WeightMemory, replica_fault_bits: np.ndarray) -> FaultSet:
        """Majority-vote a set of replica-space faults down to data faults.

        Replica-space index ``r`` refers to replica ``r % 3`` of data bit
        ``r // 3``.  A data bit flips only if >= 2 of its replicas fault.
        """
        faults = np.asarray(replica_fault_bits, dtype=np.int64)
        if faults.size == 0:
            return FaultSet.empty()
        if faults.min() < 0 or faults.max() >= self.protected_bits(memory):
            raise IndexError("replica fault index out of range")
        data_bits = faults // self.REPLICAS
        unique_bits, counts = np.unique(data_bits, return_counts=True)
        corrupted = unique_bits[counts >= 2]
        return FaultSet.flips(corrupted)

    def sample_effective(
        self, memory: WeightMemory, fault_rate: float, rng: np.random.Generator
    ) -> FaultSet:
        """Sample faults over the replica space, return the voted-through set."""
        check_probability("fault_rate", fault_rate)
        total = self.protected_bits(memory)
        count = int(rng.binomial(total, fault_rate))
        if count == 0:
            return FaultSet.empty()
        if count >= total:
            raw = np.arange(total, dtype=np.int64)
        else:
            raw = rng.choice(total, size=count, replace=False).astype(np.int64)
        return self.filter(memory, raw)


class DMRFilter:
    """Dual modular redundancy with detect-and-zero semantics.

    DMR can only *detect* a mismatch (no majority to vote with); the
    modelled recovery policy zeroes any word whose two copies disagree,
    which mirrors a fail-safe accelerator design.  Zeroing a weight is
    usually benign for DNNs (weights cluster near zero — paper Section
    III), so DMR behaves surprisingly well despite being weaker than TMR
    in general-purpose terms.
    """

    REPLICAS = 2

    def protected_bits(self, memory: WeightMemory) -> int:
        """Size of the replica bit space (2x the data bits)."""
        return memory.total_bits * self.REPLICAS

    def filter(self, memory: WeightMemory, replica_fault_bits: np.ndarray) -> FaultSet:
        """Zero every word with any faulted replica bit (detected mismatch)."""
        from repro.hw.bits import WORD_BITS
        from repro.hw.faultmodels import OP_STUCK0

        faults = np.asarray(replica_fault_bits, dtype=np.int64)
        if faults.size == 0:
            return FaultSet.empty()
        if faults.min() < 0 or faults.max() >= self.protected_bits(memory):
            raise IndexError("replica fault index out of range")
        data_bits = faults // self.REPLICAS
        # Two replicas of the same bit both flipping is a silent mismatch
        # escape; at realistic rates this is negligible and we conservatively
        # treat every detected word as zeroed.
        words = np.unique(data_bits // WORD_BITS)
        bit_indices = (words[:, None] * WORD_BITS + np.arange(WORD_BITS)[None, :]).reshape(-1)
        ops = np.full(bit_indices.shape, OP_STUCK0, dtype=np.uint8)
        return FaultSet(bit_indices, ops)

    def sample_effective(
        self, memory: WeightMemory, fault_rate: float, rng: np.random.Generator
    ) -> FaultSet:
        """Sample faults over the replica space, return the effective set."""
        check_probability("fault_rate", fault_rate)
        total = self.protected_bits(memory)
        count = int(rng.binomial(total, fault_rate))
        if count == 0:
            return FaultSet.empty()
        if count >= total:
            raw = np.arange(total, dtype=np.int64)
        else:
            raw = rng.choice(total, size=count, replace=False).astype(np.int64)
        return self.filter(memory, raw)
