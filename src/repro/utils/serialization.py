"""Model and experiment serialization.

Models are persisted as ``.npz`` archives holding one array per named
parameter/buffer plus a small JSON metadata blob (architecture name and
constructor kwargs).  The zoo (:mod:`repro.models.zoo`) uses this to cache
trained models so experiments never retrain unnecessarily.
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.nn.module import Module

__all__ = [
    "atomic_write",
    "write_json_atomic",
    "save_state_dict",
    "load_state_dict",
    "save_model",
    "load_model_state",
]

_META_KEY = "__repro_meta__"


@contextlib.contextmanager
def atomic_write(path: "str | Path") -> Iterator[Path]:
    """Yield a temporary path that replaces ``path`` on clean exit.

    The tmp name embeds the writer's pid so concurrent processes racing
    on the same target never share (and interleave within) one tmp file;
    whichever ``os.replace`` lands last wins, and readers always see
    either a previous complete file or a new complete file — never a
    torn write.  On error the tmp file is removed and nothing is
    published.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    try:
        yield tmp
        os.replace(tmp, target)
    finally:
        with contextlib.suppress(FileNotFoundError):
            tmp.unlink()


def write_json_atomic(path: "str | Path", payload: Any) -> Path:
    """Serialize ``payload`` and atomically replace ``path``.

    The tmp-file + :func:`os.replace` pattern of
    :meth:`~repro.core.executor._Checkpoint.flush`: a reader (or a later
    ``repro merge``) either sees the previous complete file or the new
    one, never a truncated write from a killed run.
    """
    target = Path(path)
    with atomic_write(target) as tmp:
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return target


def save_state_dict(
    path: "str | Path",
    state: Mapping[str, np.ndarray],
    metadata: "Mapping[str, Any] | None" = None,
) -> Path:
    """Write a name→array mapping (plus optional JSON metadata) to ``path``.

    Parent directories are created as needed.  Returns the resolved path.
    The archive is published atomically (:func:`atomic_write`), so a
    crash mid-write — or a concurrent writer caching the same
    fingerprint — can never leave a torn ``.npz`` behind.
    """
    target = Path(path)
    arrays: dict[str, np.ndarray] = {}
    for name, array in state.items():
        if name == _META_KEY:
            raise ValueError(f"state key {name!r} is reserved")
        arrays[name] = np.asarray(array)
    meta_json = json.dumps(dict(metadata or {}), sort_keys=True)
    arrays[_META_KEY] = np.frombuffer(meta_json.encode("utf-8"), dtype=np.uint8)
    # savez appends ".npz" when handed a bare path; an open handle keeps
    # the pid-suffixed tmp name intact.
    with atomic_write(target) as tmp:
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
    return target


def load_state_dict(path: "str | Path") -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Read back a ``(state, metadata)`` pair written by :func:`save_state_dict`."""
    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(f"no such model file: {source}")
    with np.load(source) as archive:
        metadata: dict[str, Any] = {}
        state: dict[str, np.ndarray] = {}
        for name in archive.files:
            if name == _META_KEY:
                metadata = json.loads(bytes(archive[name]).decode("utf-8"))
            else:
                state[name] = archive[name]
    return state, metadata


def save_model(
    path: "str | Path",
    model: "Module",
    metadata: "Mapping[str, Any] | None" = None,
) -> Path:
    """Persist ``model.state_dict()`` together with ``metadata``."""
    return save_state_dict(path, model.state_dict(), metadata)


def load_model_state(path: "str | Path", model: "Module") -> dict[str, Any]:
    """Load parameters from ``path`` into ``model`` in place.

    Returns the metadata stored alongside the parameters.  Raises if the
    archive's parameter names or shapes do not match the model.
    """
    state, metadata = load_state_dict(path)
    model.load_state_dict(state)
    return metadata
