"""`make report-smoke`: store + report identity through the real CLI.

The deployment-shaped path for the per-cell result store: a bundled
scenario suite (shrunk to smoke size) runs unsharded in-process, then
is split 2 ways with each shard executed by a **separate Python
process**; `python -m repro merge` reassembles the run and `python -m
repro report` renders it — both via the real CLI.  Asserted:

* the merged ``store/cells.rcs`` byte-matches the unsharded run's;
* the merged run's report HTML byte-matches the unsharded run's
  (its golden rendering — worker/shard topology must never reach the
  report bytes);
* rendering is idempotent (running ``repro report`` twice rewrites
  identical bytes).

The synthetic-constants golden fixture lives in
``tests/test_results_report.py``; this smoke covers the live pipeline.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SUITE = "stuck_at_memory"
SHARDS = 2

_SHARD_DRIVER = """
import sys

from repro.scenarios import (
    ScenarioSuite, load_bundled, run_scenario_shard, smoke_context,
)

name, shard, run_dir = sys.argv[1:4]
base = load_bundled(name)
suite = ScenarioSuite(
    name=f"{name}-smoke", specs=tuple(s.shrunk() for s in base.specs)
)
run_scenario_shard(suite, shard, run_dir, context=smoke_context())
"""


def _smoke_suite():
    from repro.scenarios import ScenarioSuite, load_bundled

    base = load_bundled(SUITE)
    return ScenarioSuite(
        name=f"{SUITE}-smoke", specs=tuple(s.shrunk() for s in base.specs)
    )


def _cli_env():
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(src)
    )
    return env


def _cli(args, env):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, (
        f"repro {' '.join(args)} failed:\n{proc.stdout}\n{proc.stderr}"
    )
    return proc.stdout


def test_sharded_store_and_report_match_unsharded(tmp_path):
    from repro.results import render_report, store_path
    from repro.scenarios import run_scenarios, smoke_context

    # The unsharded reference (training lands in the shared cache, so
    # the shard processes below just load it).
    unsharded = tmp_path / "unsharded"
    results = run_scenarios(
        _smoke_suite(), workers=1, out_dir=unsharded, context=smoke_context()
    )
    assert results
    assert store_path(unsharded).is_file()
    golden_html = render_report(unsharded)

    env = _cli_env()
    run_dir = tmp_path / "run"
    for index in range(1, SHARDS + 1):
        proc = subprocess.run(
            [
                sys.executable, "-c", _SHARD_DRIVER,
                SUITE, f"{index}/{SHARDS}", str(run_dir),
            ],
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, (
            f"shard {index}/{SHARDS} failed:\n{proc.stdout}\n{proc.stderr}"
        )

    _cli(["merge", str(run_dir)], env)
    assert (
        store_path(run_dir).read_bytes()
        == store_path(unsharded).read_bytes()
    )

    report = run_dir / "report.html"
    _cli(["report", str(run_dir), "--out", str(report)], env)
    assert report.read_text() == golden_html

    # repro report is idempotent: a second run rewrites identical bytes.
    first = report.read_bytes()
    _cli(["report", str(run_dir), "--out", str(report)], env)
    assert report.read_bytes() == first
