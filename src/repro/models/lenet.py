"""LeNet-5 (the network used in the paper's background Figure 2).

Small enough to train in seconds; used throughout the test suite as a
fast stand-in for the larger evaluation networks.
"""

from __future__ import annotations

from repro import nn
from repro.utils.rng import SeedTree
from repro.utils.validation import check_positive

__all__ = ["LeNet5", "build_lenet5"]


class LeNet5(nn.Sequential):
    """Classic CONV-POOL-CONV-POOL-FC-FC-FC stack, adapted to CHW inputs."""

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        seed: int = 0,
    ):
        check_positive("num_classes", num_classes)
        check_positive("image_size", image_size)
        tree = SeedTree(seed)
        # Two 5x5 valid convolutions plus two 2x2 pools.
        after_conv1 = image_size - 4
        after_pool1 = after_conv1 // 2
        after_conv2 = after_pool1 - 4
        spatial = after_conv2 // 2
        if spatial < 1:
            raise ValueError(f"image_size={image_size} too small for LeNet-5")

        super().__init__(
            nn.Conv2d(in_channels, 6, 5, seed=tree.generator("conv1")),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(6, 16, 5, seed=tree.generator("conv2")),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(16 * spatial * spatial, 120, seed=tree.generator("fc1")),
            nn.ReLU(),
            nn.Linear(120, 84, seed=tree.generator("fc2")),
            nn.ReLU(),
            nn.Linear(84, num_classes, seed=tree.generator("fc3")),
        )
        self.num_classes = num_classes


def build_lenet5(num_classes: int = 10, width_mult: float = 1.0, seed: int = 0) -> LeNet5:
    """Registry constructor; ``width_mult`` is accepted but LeNet is fixed-size."""
    del width_mult
    return LeNet5(num_classes=num_classes, seed=seed)
