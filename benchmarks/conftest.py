"""Shared fixtures for the figure-reproduction benchmarks.

Expensive artifacts (trained AlexNet/VGG-16, fine-tuned thresholds) are
produced once and cached on disk under the user cache directory
(`REPRO_CACHE_DIR` overrides), so the first benchmark run trains models
and later runs start immediately.

Every benchmark prints the paper-style table it reproduces and also writes
it to ``benchmarks/results/<name>.txt`` so results survive pytest's output
capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import (
    campaign_workers,
    clone_model,
    default_harden_config,
    experiment_bundle,
    hardened_clone,
    paper_fault_rates,
)

RESULTS_DIR = Path(__file__).parent / "results"

# Trials per fault rate.  The paper uses 50; 15 keeps the whole suite in
# CPU-minutes while leaving the mean/box statistics stable (common random
# numbers across variants do the rest).
TRIALS = 15


BENCHMARKS_DIR = Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Every figure benchmark is end-to-end and slow by construction.

    Marking them here (rather than per file) keeps ``-m "not slow"`` as
    the fast inner loop without touching each benchmark module.  The
    hook fires for the whole collection, so filter to this directory.
    """
    for item in items:
        if BENCHMARKS_DIR in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def bench_workers():
    """Campaign worker processes for benchmarks (``REPRO_WORKERS`` env).

    Every campaign is bit-deterministic at any worker count (see
    :mod:`repro.core.executor`), so the recorded tables are identical
    whether a benchmark runs serially or fanned across cores.
    """
    return campaign_workers(default=1)


@pytest.fixture(scope="session")
def fault_rates():
    return paper_fault_rates()


@pytest.fixture(scope="session")
def alexnet_bundle():
    return experiment_bundle("alexnet")


@pytest.fixture(scope="session")
def vgg16_bundle():
    return experiment_bundle("vgg16")


@pytest.fixture(scope="session")
def alexnet_eval(alexnet_bundle):
    images, labels = alexnet_bundle.test_set.arrays()
    return images[:200], labels[:200]


@pytest.fixture(scope="session")
def vgg16_eval(vgg16_bundle):
    images, labels = vgg16_bundle.test_set.arrays()
    return images[:200], labels[:200]


@pytest.fixture(scope="session")
def alexnet_hardened(alexnet_bundle):
    """(model, thresholds, act_max) for the hardened AlexNet (cached)."""
    return hardened_clone(alexnet_bundle, default_harden_config())


@pytest.fixture(scope="session")
def vgg16_hardened(vgg16_bundle):
    """(model, thresholds, act_max) for the hardened VGG-16 (cached)."""
    return hardened_clone(vgg16_bundle, default_harden_config())


@pytest.fixture(scope="session")
def record_result():
    """Print a report and persist it to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return record


def run_once(benchmark, fn):
    """Time exactly one execution of an experiment under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
