"""Tests for fault-injection campaigns."""

import numpy as np
import pytest

from repro.core.campaign import (
    CampaignConfig,
    FaultInjectionCampaign,
    default_fault_rates,
    fault_model_sampler,
    run_campaign,
)
from repro.hw.faultmodels import BurstFault, FaultSet
from repro.hw.memory import WeightMemory

RATES = (1e-5, 1e-4, 1e-3)


@pytest.fixture
def campaign_parts(trained_mlp, mlp_eval_arrays):
    images, labels = mlp_eval_arrays
    memory = WeightMemory.from_model(trained_mlp)
    config = CampaignConfig(fault_rates=RATES, trials=4, seed=11, batch_size=96)
    return trained_mlp, memory, images, labels, config


class TestCampaignConfig:
    def test_defaults_valid(self):
        config = CampaignConfig()
        assert config.trials == 20
        assert len(config.fault_rates) >= 4

    def test_rates_must_increase(self):
        with pytest.raises(ValueError):
            CampaignConfig(fault_rates=(1e-5, 1e-6))

    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            CampaignConfig(fault_rates=(0.0, 1e-6))

    def test_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(fault_rates=())

    def test_default_fault_rates_log_spaced(self):
        rates = default_fault_rates(1e-7, 1e-4, points_per_decade=1)
        assert rates[0] == pytest.approx(1e-7)
        assert rates[-1] == pytest.approx(1e-4)
        ratios = rates[1:] / rates[:-1]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-6)

    def test_default_fault_rates_validation(self):
        with pytest.raises(ValueError):
            default_fault_rates(1e-4, 1e-7)


class TestCampaignRun:
    def test_shape_and_determinism(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        a = run_campaign(model, memory, images, labels, config)
        b = run_campaign(model, memory, images, labels, config)
        assert a.accuracies.shape == (3, 4)
        np.testing.assert_array_equal(a.accuracies, b.accuracies)

    def test_weights_restored_after_campaign(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        before = memory.snapshot()
        run_campaign(model, memory, images, labels, config)
        after = memory.snapshot()
        for old, new in zip(before, after):
            np.testing.assert_array_equal(old, new)

    def test_accuracy_degrades_with_rate(self, campaign_parts):
        model, memory, images, labels, _ = campaign_parts
        config = CampaignConfig(fault_rates=(1e-6, 1e-3), trials=6, seed=0)
        curve = run_campaign(model, memory, images, labels, config)
        means = curve.mean_accuracies()
        assert means[0] > means[-1]
        assert curve.clean_accuracy >= means[0] - 0.05

    def test_different_seeds_differ(self, campaign_parts):
        model, memory, images, labels, _ = campaign_parts
        a = run_campaign(
            model, memory, images, labels,
            CampaignConfig(fault_rates=(1e-3,), trials=4, seed=0),
        )
        b = run_campaign(
            model, memory, images, labels,
            CampaignConfig(fault_rates=(1e-3,), trials=4, seed=1),
        )
        assert not np.array_equal(a.accuracies, b.accuracies)

    def test_common_random_numbers_across_samplers(self, campaign_parts):
        """The per-(rate, trial) rng must not depend on the sampler, so two
        protection variants see the same raw randomness."""
        model, memory, images, labels, config = campaign_parts
        campaign = FaultInjectionCampaign(model, memory, images, labels, config)
        seen = {}

        def recording_sampler(mem, rate, rng):
            seen.setdefault("draws", []).append(rng.random())
            return FaultSet.empty()

        campaign.run(sampler=recording_sampler)
        first = list(seen["draws"])
        seen.clear()
        campaign.run(sampler=recording_sampler)
        assert seen["draws"] == first

    def test_custom_fault_model_sampler(self, campaign_parts):
        model, memory, images, labels, _ = campaign_parts
        config = CampaignConfig(fault_rates=(1e-6,), trials=2, seed=0)
        sampler = fault_model_sampler(lambda rate: BurstFault(n_bursts=2, burst_length=4))
        curve = run_campaign(model, memory, images, labels, config, sampler=sampler)
        assert curve.accuracies.shape == (1, 2)

    def test_clean_accuracy_cached_and_invalidatable(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        campaign = FaultInjectionCampaign(model, memory, images, labels, config)
        first = campaign.clean_accuracy
        assert campaign.clean_accuracy == first
        campaign.invalidate_clean_accuracy()
        assert campaign.clean_accuracy == first  # model unchanged

    def test_label_propagates(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        curve = run_campaign(model, memory, images, labels, config, label="x")
        assert curve.label == "x"

    def test_mismatched_eval_arrays_rejected(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        with pytest.raises(ValueError):
            FaultInjectionCampaign(model, memory, images, labels[:-1], config)


class TestAlternativeFaultModels:
    def test_stuck_at_campaign_runs(self, campaign_parts):
        """Permanent stuck-at-1 faults also degrade accuracy with rate."""
        from repro.hw.faultmodels import StuckAt

        model, memory, images, labels, _ = campaign_parts
        config = CampaignConfig(fault_rates=(1e-6, 1e-3), trials=4, seed=2)
        sampler = fault_model_sampler(lambda rate: StuckAt(rate, value=1))
        curve = run_campaign(model, memory, images, labels, config, sampler=sampler)
        means = curve.mean_accuracies()
        assert means[0] >= means[-1]

    def test_fixed_fault_map_gives_zero_variance(self, campaign_parts):
        """A permanent manufacturing-defect map yields identical accuracy
        in every trial (the paper's Fig. 1a 'permanent fault' scenario)."""
        from repro.hw.faultmodels import FixedFaultMap, RandomBitFlip

        model, memory, images, labels, _ = campaign_parts
        fixed = FixedFaultMap(
            RandomBitFlip(1e-4).sample(memory, np.random.default_rng(7))
        )
        config = CampaignConfig(fault_rates=(1e-4,), trials=5, seed=0)
        curve = run_campaign(
            model, memory, images, labels, config,
            sampler=lambda mem, rate, rng: fixed.sample(mem, rng),
        )
        row = curve.accuracies[0]
        assert np.ptp(row) == 0.0  # all trials identical

    def test_burst_campaign_runs(self, campaign_parts):
        from repro.hw.faultmodels import BurstFault

        model, memory, images, labels, _ = campaign_parts
        config = CampaignConfig(fault_rates=(1e-6,), trials=3, seed=1)
        sampler = fault_model_sampler(
            lambda rate: BurstFault(n_bursts=4, burst_length=16)
        )
        curve = run_campaign(model, memory, images, labels, config, sampler=sampler)
        assert curve.accuracies.shape == (1, 3)
