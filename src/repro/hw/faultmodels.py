"""Fault models: distributions over weight-memory bit corruptions.

A fault model is a sampler: given a :class:`~repro.hw.memory.WeightMemory`
and a random generator it produces a :class:`FaultSet` — concrete bit
targets plus the operation applied to each (flip, stuck-at-0, stuck-at-1).

The paper's experiments use independent random bit flips at a per-bit
fault rate (transient upsets / the aggregate effect Fig. 1a sketches);
stuck-at and burst models cover the permanent/manufacturing-defect cases
its introduction discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.bits import WORD_BITS
from repro.hw.memory import WeightMemory
from repro.utils.validation import check_probability

__all__ = [
    "OP_FLIP",
    "OP_STUCK0",
    "OP_STUCK1",
    "FaultSet",
    "FaultModel",
    "RandomBitFlip",
    "StuckAt",
    "BurstFault",
    "FixedFaultMap",
    "TargetedBitFlip",
]

OP_FLIP = 0
OP_STUCK0 = 1
OP_STUCK1 = 2
_VALID_OPS = (OP_FLIP, OP_STUCK0, OP_STUCK1)


@dataclass(frozen=True)
class FaultSet:
    """Concrete fault targets: parallel arrays of bit indices and operations."""

    bit_indices: np.ndarray  # int64 global bit indices, unique
    operations: np.ndarray  # uint8 operation codes, same length

    def __post_init__(self) -> None:
        bits = np.asarray(self.bit_indices, dtype=np.int64)
        ops = np.asarray(self.operations, dtype=np.uint8)
        if bits.shape != ops.shape or bits.ndim != 1:
            raise ValueError("bit_indices and operations must be matching 1-D arrays")
        if bits.size and np.unique(bits).size != bits.size:
            raise ValueError("bit indices must be unique within a FaultSet")
        if ops.size and not np.isin(ops, _VALID_OPS).all():
            raise ValueError(f"operations must be among {_VALID_OPS}")
        object.__setattr__(self, "bit_indices", bits)
        object.__setattr__(self, "operations", ops)

    def __len__(self) -> int:
        return int(self.bit_indices.size)

    @classmethod
    def empty(cls) -> "FaultSet":
        """A fault set with no faults."""
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8))

    @classmethod
    def flips(cls, bit_indices: np.ndarray) -> "FaultSet":
        """A fault set of pure bit flips."""
        bits = np.asarray(bit_indices, dtype=np.int64)
        return cls(bits, np.full(bits.shape, OP_FLIP, dtype=np.uint8))

    def subset(self, mask: np.ndarray) -> "FaultSet":
        """A fault set restricted to the boolean ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        return FaultSet(self.bit_indices[mask], self.operations[mask])


class FaultModel:
    """Base class for fault samplers."""

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        """Draw a concrete :class:`FaultSet` for ``memory``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable description for reports."""
        return type(self).__name__


def _sample_unique_bits(
    total_bits: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` distinct bit indices uniform over ``[0, total_bits)``."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if count >= total_bits:
        return np.arange(total_bits, dtype=np.int64)
    # rng.choice without replacement is O(total_bits); rejection sampling is
    # much cheaper at the sparse fault rates the paper studies.
    if count < total_bits // 64:
        chosen: set[int] = set()
        while len(chosen) < count:
            needed = count - len(chosen)
            draws = rng.integers(0, total_bits, size=max(needed * 2, 16))
            for draw in draws:
                chosen.add(int(draw))
                if len(chosen) == count:
                    break
        return np.sort(np.fromiter(chosen, dtype=np.int64, count=count))
    return np.sort(rng.choice(total_bits, size=count, replace=False).astype(np.int64))


class RandomBitFlip(FaultModel):
    """Independent bit flips at a per-bit ``fault_rate`` (the paper's model).

    The number of faulty bits is Binomial(total_bits, fault_rate); the
    faulty positions are uniform without replacement.
    """

    def __init__(self, fault_rate: float):
        check_probability("fault_rate", fault_rate)
        self.fault_rate = float(fault_rate)

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        count = int(rng.binomial(memory.total_bits, self.fault_rate))
        bits = _sample_unique_bits(memory.total_bits, count, rng)
        return FaultSet.flips(bits)

    def describe(self) -> str:
        return f"RandomBitFlip(rate={self.fault_rate:g})"


class StuckAt(FaultModel):
    """Permanent stuck-at faults at a per-bit ``fault_rate``.

    Each faulty cell is stuck at ``value`` (0 or 1); a stuck bit that
    already holds the stuck value is benign, matching real silicon.
    """

    def __init__(self, fault_rate: float, value: int = 1):
        check_probability("fault_rate", fault_rate)
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0 or 1, got {value}")
        self.fault_rate = float(fault_rate)
        self.value = int(value)

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        count = int(rng.binomial(memory.total_bits, self.fault_rate))
        bits = _sample_unique_bits(memory.total_bits, count, rng)
        op = OP_STUCK1 if self.value == 1 else OP_STUCK0
        return FaultSet(bits, np.full(bits.shape, op, dtype=np.uint8))

    def describe(self) -> str:
        return f"StuckAt{self.value}(rate={self.fault_rate:g})"


class BurstFault(FaultModel):
    """``n_bursts`` bursts of ``burst_length`` consecutive flipped bits.

    Models multi-bit upsets / row failures where physically adjacent cells
    fail together.
    """

    def __init__(self, n_bursts: int, burst_length: int = 8):
        if n_bursts < 0:
            raise ValueError(f"n_bursts must be non-negative, got {n_bursts}")
        if burst_length <= 0:
            raise ValueError(f"burst_length must be positive, got {burst_length}")
        self.n_bursts = int(n_bursts)
        self.burst_length = int(burst_length)

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        if self.n_bursts == 0:
            return FaultSet.empty()
        max_start = max(memory.total_bits - self.burst_length, 1)
        starts = rng.integers(0, max_start, size=self.n_bursts)
        bits = (starts[:, None] + np.arange(self.burst_length)[None, :]).reshape(-1)
        bits = np.unique(bits[bits < memory.total_bits]).astype(np.int64)
        return FaultSet.flips(bits)

    def describe(self) -> str:
        return f"BurstFault(n={self.n_bursts}, length={self.burst_length})"


@dataclass(frozen=True)
class FixedFaultMap(FaultModel):
    """A deterministic, pre-drawn fault set (manufacturing defect map).

    Sampling ignores the generator and always returns the same faults, so
    the same physical defects persist across every inference run — the
    permanent-fault scenario of paper Fig. 1a.
    """

    fault_set: FaultSet = field(default_factory=FaultSet.empty)

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        if (
            len(self.fault_set)
            and self.fault_set.bit_indices.max() >= memory.total_bits
        ):
            raise IndexError("fixed fault map exceeds this memory's size")
        return self.fault_set

    def describe(self) -> str:
        return f"FixedFaultMap(n={len(self.fault_set)})"


class TargetedBitFlip(FaultModel):
    """Flip a fixed *bit position* of ``n_faults`` randomly chosen words.

    Used by the bit-position sensitivity study: e.g. flip only bit 30 (the
    exponent MSB) of 10 random weights and observe the damage.
    """

    def __init__(self, bit_position: int, n_faults: int):
        if not 0 <= bit_position < WORD_BITS:
            raise ValueError(
                f"bit_position must lie in [0, {WORD_BITS}), got {bit_position}"
            )
        if n_faults < 0:
            raise ValueError(f"n_faults must be non-negative, got {n_faults}")
        self.bit_position = int(bit_position)
        self.n_faults = int(n_faults)

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        if self.n_faults == 0:
            return FaultSet.empty()
        count = min(self.n_faults, memory.total_words)
        words = _sample_unique_bits(memory.total_words, count, rng)
        bits = words * WORD_BITS + self.bit_position
        return FaultSet.flips(bits)

    def describe(self) -> str:
        return f"TargetedBitFlip(bit={self.bit_position}, n={self.n_faults})"
