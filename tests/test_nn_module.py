"""Tests for the Module/Parameter base machinery."""

import numpy as np
import pytest

from repro import nn


class TestParameter:
    def test_casts_to_float32(self):
        param = nn.Parameter(np.arange(4, dtype=np.float64))
        assert param.data.dtype == np.float32

    def test_accumulate_grad(self):
        param = nn.Parameter(np.zeros(3))
        param.accumulate_grad(np.ones(3))
        param.accumulate_grad(np.ones(3))
        np.testing.assert_array_equal(param.grad, 2 * np.ones(3))

    def test_accumulate_grad_shape_checked(self):
        param = nn.Parameter(np.zeros(3))
        with pytest.raises(ValueError):
            param.accumulate_grad(np.ones(4))

    def test_requires_grad_false_ignores(self):
        param = nn.Parameter(np.zeros(3), requires_grad=False)
        param.accumulate_grad(np.ones(3))
        assert param.grad is None

    def test_zero_grad(self):
        param = nn.Parameter(np.zeros(3))
        param.accumulate_grad(np.ones(3))
        param.zero_grad()
        assert param.grad is None

    def test_size_and_shape(self):
        param = nn.Parameter(np.zeros((2, 3)))
        assert param.size == 6
        assert param.shape == (2, 3)


class _Leaf(nn.Module):
    def __init__(self):
        super().__init__()
        self.weight = nn.Parameter(np.ones(2))
        self.register_buffer("running", np.zeros(2))

    def forward(self, x):
        return x + self.weight.data


class _Tree(nn.Module):
    def __init__(self):
        super().__init__()
        self.left = _Leaf()
        self.right = _Leaf()

    def forward(self, x):
        return self.right(self.left(x))


class TestModuleRegistration:
    def test_parameters_discovered(self):
        tree = _Tree()
        names = dict(tree.named_parameters())
        assert set(names) == {"left.weight", "right.weight"}

    def test_buffers_discovered(self):
        tree = _Tree()
        names = dict(tree.named_buffers())
        assert set(names) == {"left.running", "right.running"}

    def test_num_parameters(self):
        assert _Tree().num_parameters() == 4

    def test_modules_iteration(self):
        tree = _Tree()
        kinds = [type(m).__name__ for m in tree.modules()]
        assert kinds == ["_Tree", "_Leaf", "_Leaf"]

    def test_reassigning_attribute_replaces_registration(self):
        leaf = _Leaf()
        leaf.weight = nn.Parameter(np.zeros(5))
        assert dict(leaf.named_parameters())["weight"].size == 5

    def test_set_buffer_unknown_name(self):
        with pytest.raises(KeyError):
            _Leaf().set_buffer("missing", np.zeros(2))


class TestTrainEval:
    def test_recursive_mode(self):
        tree = _Tree()
        tree.eval()
        assert not tree.training
        assert not tree.left.training
        tree.train()
        assert tree.right.training

    def test_train_returns_self(self):
        tree = _Tree()
        assert tree.eval() is tree


class TestStateDict:
    def test_roundtrip(self):
        source = _Tree()
        source.left.weight.data[:] = 7.0
        target = _Tree()
        target.load_state_dict(source.state_dict())
        np.testing.assert_array_equal(target.left.weight.data, source.left.weight.data)

    def test_state_dict_is_copy(self):
        tree = _Tree()
        state = tree.state_dict()
        state["left.weight"][:] = 99.0
        assert tree.left.weight.data[0] == 1.0

    def test_missing_key_rejected(self):
        tree = _Tree()
        state = tree.state_dict()
        del state["left.weight"]
        with pytest.raises(KeyError, match="missing"):
            tree.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        tree = _Tree()
        state = tree.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            tree.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        tree = _Tree()
        state = tree.state_dict()
        state["left.weight"] = np.zeros(9)
        with pytest.raises(ValueError, match="shape mismatch"):
            tree.load_state_dict(state)

    def test_buffer_loaded(self):
        source = _Tree()
        source.left.set_buffer("running", np.full(2, 5.0))
        target = _Tree()
        target.load_state_dict(source.state_dict())
        np.testing.assert_array_equal(target.left.running, np.full(2, 5.0))


class TestHooks:
    def test_hook_called_with_output(self):
        leaf = _Leaf()
        seen = []
        leaf.register_forward_hook(lambda m, i, o: seen.append((m, o.copy())))
        out = leaf(np.zeros(2, dtype=np.float32))
        assert seen[0][0] is leaf
        np.testing.assert_array_equal(seen[0][1], out)

    def test_hook_remove(self):
        leaf = _Leaf()
        seen = []
        handle = leaf.register_forward_hook(lambda m, i, o: seen.append(1))
        handle.remove()
        leaf(np.zeros(2, dtype=np.float32))
        assert seen == []

    def test_remove_idempotent(self):
        leaf = _Leaf()
        handle = leaf.register_forward_hook(lambda m, i, o: None)
        handle.remove()
        handle.remove()  # no error

    def test_multiple_hooks_order(self):
        leaf = _Leaf()
        calls = []
        leaf.register_forward_hook(lambda m, i, o: calls.append("a"))
        leaf.register_forward_hook(lambda m, i, o: calls.append("b"))
        leaf(np.zeros(2, dtype=np.float32))
        assert calls == ["a", "b"]


class TestBaseErrors:
    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(np.zeros(1))

    def test_backward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            _Leaf().backward(np.zeros(2))

    def test_repr_contains_children(self):
        text = repr(_Tree())
        assert "left" in text and "_Leaf" in text
