"""Ablation: FT-ClipAct vs the mitigation landscape (our extension).

The paper motivates clipping as a zero-hardware-cost alternative to
redundancy (Section I cites DMR in Tesla's FSD and ECC memories).  This
benchmark puts all mitigations on one grid under common random numbers:

* unprotected, relu6, actmax-clip (Steps 1+2), ftclipact (full pipeline);
* ecc / dmr / tmr memory protection with their honest fault-exposure
  overheads (1.22x / 2x / 3x raw bits).

Expected orderings: ftclipact >= actmax-clip >= relu6 >= unprotected in
AUC; ECC/TMR suppress nearly everything at sparse rates.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_comparison_table
from repro.core.baselines import (
    apply_relu6,
    dmr_sampler,
    ecc_sampler,
    range_check_sampler,
    run_mitigation_sweep,
    tmr_sampler,
)
from repro.core.campaign import CampaignConfig
from repro.core.swap import swap_activations
from repro.experiments import campaign_workers, clone_model, paper_fault_rates
from repro.hw.memory import WeightMemory


def test_ablation_mitigation_landscape(
    benchmark, alexnet_bundle, alexnet_hardened, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    images, labels = images[:128], labels[:128]
    hardened_model, thresholds, act_max = alexnet_hardened
    config = CampaignConfig(fault_rates=paper_fault_rates(), trials=8, seed=13)

    def experiment():
        # All mitigations become one cross-campaign sweep: with
        # REPRO_WORKERS > 1 every variant's cells share one worker pool
        # instead of running eight campaigns back-to-back; the curves
        # are bit-identical either way.
        def variant(model, sampler=None):
            return model, WeightMemory.from_model(model), sampler

        relu6_model = clone_model(alexnet_bundle)
        apply_relu6(relu6_model)
        actmax_model = clone_model(alexnet_bundle)
        swap_activations(actmax_model, act_max)
        range_model = clone_model(alexnet_bundle)
        range_memory = WeightMemory.from_model(range_model)
        variants = {
            "unprotected": variant(clone_model(alexnet_bundle)),
            "relu6": variant(relu6_model),
            "actmax-clip": variant(actmax_model),
            "ftclipact": variant(hardened_model),
            "rangecheck": (
                range_model, range_memory, range_check_sampler(range_memory)
            ),
            "ecc": variant(clone_model(alexnet_bundle), ecc_sampler()),
            "dmr": variant(clone_model(alexnet_bundle), dmr_sampler()),
            "tmr": variant(clone_model(alexnet_bundle), tmr_sampler()),
        }
        return run_mitigation_sweep(
            variants, images, labels, config, workers=campaign_workers()
        )

    curves = run_once(benchmark, experiment)

    record_result(
        "ablation_mitigations",
        format_comparison_table(
            list(curves.values()),
            labels=list(curves),
            title="Ablation — AlexNet mean accuracy per mitigation (last row = AUC)",
        ),
    )

    auc = {name: curve.auc() for name, curve in curves.items()}
    # Fine-tuning trades a little clean accuracy for mid-rate resilience;
    # because faulty activations (~1e37) are astronomically above either
    # threshold, tuned and ACT_max clipping perform within noise of each
    # other on this metric.
    assert auc["ftclipact"] >= auc["actmax-clip"] - 0.05
    assert auc["actmax-clip"] > auc["unprotected"]
    assert auc["relu6"] > auc["unprotected"]
    # Redundancy/coding at sparse rates is near-perfect...
    assert auc["ecc"] > auc["unprotected"]
    assert auc["tmr"] > auc["unprotected"]
    # The weight range check also works (it catches exponent-flip
    # corruption at the source)...
    assert auc["rangecheck"] > auc["unprotected"] + 0.1
    # ...and FT-ClipAct closes most of the gap to it for free.
    assert auc["ftclipact"] > auc["unprotected"] + 0.5 * (
        auc["tmr"] - auc["unprotected"]
    )
