"""Pure-numpy neural-network framework (the paper's PyTorch substitute).

Provides modules, containers, activations, normalization, losses and
initialization — everything needed to build, train and run the AlexNet and
VGG-16 topologies the paper evaluates.
"""

from repro.nn.activations import (
    Activation,
    Identity,
    LeakyReLU,
    ReLU,
    ReLU6,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.batchnorm import BatchNorm1d, BatchNorm2d
from repro.nn.conv import Conv2d
from repro.nn.dropout import Dropout
from repro.nn.flatten import Flatten
from repro.nn.linear import Linear
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.module import HookHandle, Module, Parameter
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.sequential import Sequential

__all__ = [
    "Activation",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "CrossEntropyLoss",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "HookHandle",
    "Identity",
    "LeakyReLU",
    "Linear",
    "MSELoss",
    "MaxPool2d",
    "Module",
    "Parameter",
    "ReLU",
    "ReLU6",
    "Sequential",
    "Sigmoid",
    "Softmax",
    "Tanh",
]
