"""Configurable multi-layer perceptron (fixture network for tests)."""

from __future__ import annotations

from typing import Sequence

from repro import nn
from repro.utils.rng import SeedTree
from repro.utils.validation import check_positive

__all__ = ["MLP", "build_mlp"]


class MLP(nn.Sequential):
    """Flatten -> [Linear -> ReLU] * k -> Linear."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: Sequence[int] = (64,),
        seed: int = 0,
    ):
        check_positive("in_features", in_features)
        check_positive("num_classes", num_classes)
        tree = SeedTree(seed)
        layers: list[nn.Module] = [nn.Flatten()]
        previous = int(in_features)
        for index, width in enumerate(hidden):
            check_positive("hidden width", width)
            layers.append(nn.Linear(previous, int(width), seed=tree.generator(f"fc{index}")))
            layers.append(nn.ReLU())
            previous = int(width)
        layers.append(nn.Linear(previous, num_classes, seed=tree.generator("head")))
        super().__init__(*layers)
        self.num_classes = num_classes


def build_mlp(num_classes: int = 10, width_mult: float = 1.0, seed: int = 0) -> MLP:
    """Registry constructor: a 3x32x32-input MLP with scaled hidden widths."""
    hidden = (max(8, int(128 * width_mult)), max(8, int(64 * width_mult)))
    return MLP(3 * 32 * 32, num_classes, hidden=hidden, seed=seed)
