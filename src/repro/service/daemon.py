"""The ``repro serve`` daemon: campaigns as a memoized service.

One long-lived :class:`CampaignService` owns the expensive shared
artifacts — the :class:`~repro.scenarios.compile.ScenarioContext` bundle
cache and one persistent :class:`~repro.core.executor.CampaignExecutor`
per worker slot — and schedules submissions through a bounded queue.
Submissions are memoized by the content-addressed key of
:mod:`repro.service.keys`:

* identical **concurrent** submissions coalesce onto one in-flight
  execution (single-flight: the first submission enqueues, the rest
  attach to its entry and share the run id);
* identical **later** submissions (including after a daemon restart)
  hit the on-disk result cache — ordinary run directories under
  ``<root>/runs/<id>/``, exactly what ``repro scenarios --out`` writes,
  published atomically with a ``service.json`` completion marker.

The HTTP layer (:func:`serve`) is a stdlib
:class:`~http.server.ThreadingHTTPServer`; ``ROUTES`` is the
authoritative endpoint table, mirrored by ``docs/SERVICE.md`` and
enforced both directions by ``tests/test_docs_consistency.py``.
"""

from __future__ import annotations

import json
import queue
import shutil
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.service.keys import SERVICE_FORMAT, campaign_key, key_components

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.compile import ScenarioContext
    from repro.scenarios.spec import ScenarioSuite

__all__ = [
    "MARKER_FILENAME",
    "ROUTES",
    "RUNS_DIRNAME",
    "CampaignService",
    "ServiceError",
    "serve",
]

RUNS_DIRNAME = "runs"
MARKER_FILENAME = "service.json"

# method+path -> what it serves.  docs/SERVICE.md mirrors this table and
# docs-check keeps the two in sync.
ROUTES: dict[str, str] = {
    "POST /campaigns": "submit a CampaignSpec suite JSON; returns the run id",
    "GET /campaigns/<id>": "status + per-cell progress counts",
    "GET /campaigns/<id>/results": "summary.json + per-scenario payloads, verbatim",
    "GET /campaigns/<id>/store": "the canonical store/cells.rcs bytes",
    "GET /campaigns/<id>/report": "the rendered static HTML report",
    "GET /stats": "hit/miss/execution counters and queue depth",
}

STATES = ("queued", "running", "complete", "failed")


class ServiceError(Exception):
    """An error with an HTTP status, rendered as a JSON error payload."""

    status = 500

    def __init__(self, message: str, status: "int | None" = None):
        super().__init__(message)
        if status is not None:
            self.status = status


class BadRequest(ServiceError):
    status = 400


class NotFound(ServiceError):
    status = 404


class NotReady(ServiceError):
    status = 409


class QueueFull(ServiceError):
    status = 503


@dataclass
class RunEntry:
    """In-memory state of one memoized campaign."""

    id: str
    suite: str
    state: str = "queued"
    completed: int = 0
    total: int = 0
    by_scenario: dict[str, int] = field(default_factory=dict)
    error: "str | None" = None
    done: threading.Event = field(default_factory=threading.Event)

    def status_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "id": self.id,
            "suite": self.suite,
            "state": self.state,
            "completed": self.completed,
            "total": self.total,
            "by_scenario": dict(sorted(self.by_scenario.items())),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


class _SlotContext:
    """A per-slot view of the service's shared ScenarioContext.

    Trained bundles are read-only sources (cloned before every campaign)
    and safe to share across slots, so ``bundle`` delegates to the one
    service-wide memo under the service's artifact lock — warm traffic
    trains each model exactly once per daemon.  Prepared mitigation
    clones are *live* models that serial execution runs in-thread, so
    each slot memoizes its own clones instead of sharing mutable state.
    """

    def __init__(self, shared: "ScenarioContext", lock: threading.RLock):
        self._shared = shared
        self._lock = lock
        self._prepared: dict[tuple[str, str], tuple[Any, Any]] = {}
        self.cache = shared.cache
        self.bundle_overrides = shared.bundle_overrides
        self.harden_config = shared.harden_config
        self.harden_workers = shared.harden_workers

    def bundle(self, model: str):
        with self._lock:
            return self._shared.bundle(model)

    def prepared(self, model: str, variant: str) -> tuple[Any, Any]:
        key = (model, variant)
        if key not in self._prepared:
            from repro.experiments import prepare_campaign_variant

            bundle = self.bundle(model)
            with self._lock:
                # Hardening itself is cached on disk (hardened_clone), so
                # the lock serializes only the first, cache-filling call.
                self._prepared[key] = prepare_campaign_variant(
                    bundle,
                    variant,
                    workers=self.harden_workers,
                    harden_config=self.harden_config,
                    cache=self.cache,
                )
        return self._prepared[key]


class CampaignService:
    """Memoizing scheduler in front of the scenario engine.

    ``workers`` is each slot executor's process count, ``slots`` the
    number of campaigns executing concurrently, ``queue_limit`` the
    backlog bound beyond the running campaigns (full → 503).  Supervision
    knobs thread into every slot executor exactly as they do into
    ``repro scenarios`` (``docs/FAULT_TOLERANCE.md``), so the daemon
    inherits retry/timeout/quarantine and the ``REPRO_CHAOS`` harness.

    Construction is passive; :meth:`start` spawns the slot threads (the
    split keeps queue-bound behaviour deterministic under test).
    """

    def __init__(
        self,
        root: "str | Path",
        context: "ScenarioContext | None" = None,
        workers: int = 1,
        slots: int = 1,
        queue_limit: int = 8,
        max_retries: "int | None" = None,
        cell_timeout: "float | None" = None,
        on_cell_error: "str | None" = None,
    ):
        from repro.scenarios.compile import ScenarioContext

        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.root = Path(root)
        self.context = context if context is not None else ScenarioContext()
        self.workers = workers
        self.slots = slots
        self.supervision = {
            "max_retries": max_retries,
            "cell_timeout": cell_timeout,
            "on_cell_error": on_cell_error,
        }
        self._lock = threading.RLock()
        self._artifact_lock = threading.RLock()
        self._entries: dict[str, RunEntry] = {}
        self._queue: "queue.Queue[tuple[RunEntry, ScenarioSuite] | None]" = (
            queue.Queue(maxsize=queue_limit)
        )
        self._threads: list[threading.Thread] = []
        self._started = False
        self._closed = False
        self.counters = {
            "submissions": 0,
            "hits": 0,
            "misses": 0,
            "executions": 0,
        }

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "CampaignService":
        """Spawn the slot worker threads (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            for index in range(self.slots):
                thread = threading.Thread(
                    target=self._slot_loop, name=f"repro-slot-{index}", daemon=True
                )
                thread.start()
                self._threads.append(thread)
        return self

    def close(self) -> None:
        """Drain the slots and shut their executors down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join()

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ submission

    def run_dir(self, run_id: str) -> Path:
        return self.root / RUNS_DIRNAME / run_id

    def parse_submission(self, payload: Any) -> "ScenarioSuite":
        """Validate a POST body into a fully expanded suite (400 on junk)."""
        from repro.scenarios.spec import parse_suite

        if not isinstance(payload, Mapping):
            raise BadRequest("submission body must be a JSON object")
        try:
            return parse_suite(payload, name=str(payload.get("name", "scenarios")))
        except (KeyError, TypeError, ValueError) as error:
            raise BadRequest(f"invalid campaign suite: {error}") from error

    def submit(self, payload: Any) -> dict[str, Any]:
        """Memoized submission; returns ``{"id", "state", "cached"}``."""
        suite = self.parse_submission(payload)
        run_id = campaign_key(suite, self.context)
        with self._lock:
            self.counters["submissions"] += 1
            entry = self._entries.get(run_id)
            if entry is not None:
                # Single-flight: attach to the in-flight (or finished)
                # execution instead of scheduling another.
                self.counters["hits"] += 1
                return {"id": run_id, "state": entry.state, "cached": True}
            entry = self._disk_entry(run_id)
            if entry is not None:
                self.counters["hits"] += 1
                self._entries[run_id] = entry
                return {"id": run_id, "state": entry.state, "cached": True}
            self.counters["misses"] += 1
            entry = RunEntry(
                id=run_id,
                suite=suite.name,
                total=sum(len(spec.rates) * spec.trials for spec in suite.specs),
            )
            try:
                self._queue.put_nowait((entry, suite))
            except queue.Full:
                self.counters["misses"] -= 1
                raise QueueFull(
                    f"campaign queue is full ({self._queue.maxsize} pending); retry later"
                ) from None
            self._entries[run_id] = entry
            return {"id": run_id, "state": entry.state, "cached": False}

    def _disk_entry(self, run_id: str) -> "RunEntry | None":
        """Rehydrate a completed run from its on-disk marker, if any."""
        marker = self.run_dir(run_id) / MARKER_FILENAME
        try:
            payload = json.loads(marker.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if payload.get("format") != SERVICE_FORMAT:
            return None
        entry = RunEntry(
            id=run_id,
            suite=str(payload.get("suite", "scenarios")),
            state="complete",
            completed=int(payload.get("completed", 0)),
            total=int(payload.get("total", 0)),
            by_scenario=dict(payload.get("by_scenario", {})),
        )
        entry.done.set()
        return entry

    # --------------------------------------------------------------- queries

    def entry(self, run_id: str) -> RunEntry:
        with self._lock:
            found = self._entries.get(run_id)
            if found is None:
                found = self._disk_entry(run_id)
                if found is None:
                    raise NotFound(f"no campaign with id {run_id!r}")
                self._entries[run_id] = found
        return found

    def _complete_dir(self, run_id: str) -> Path:
        entry = self.entry(run_id)
        if entry.state == "failed":
            raise ServiceError(f"campaign {run_id} failed: {entry.error}")
        if entry.state != "complete":
            raise NotReady(f"campaign {run_id} is {entry.state}; poll status first")
        return self.run_dir(run_id)

    def results_payload(self, run_id: str) -> dict[str, Any]:
        """Every result JSON of a finished run, file-verbatim.

        Payloads are shipped as raw text keyed by filename — not
        re-parsed — so a client writing them back to disk reproduces the
        direct ``repro scenarios`` run byte for byte.
        """
        run_dir = self._complete_dir(run_id)
        files = {
            path.name: path.read_text()
            for path in sorted(run_dir.glob("*.json"))
            if path.name != MARKER_FILENAME
        }
        return {"id": run_id, "files": files}

    def store_bytes(self, run_id: str) -> bytes:
        from repro.results.store import store_path

        return store_path(self._complete_dir(run_id)).read_bytes()

    def report_bytes(self, run_id: str) -> bytes:
        return (self._complete_dir(run_id) / "report.html").read_bytes()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            payload = dict(self.counters)
            states = [entry.state for entry in self._entries.values()]
        payload["queue_depth"] = self._queue.qsize()
        payload["slots"] = self.slots
        payload["workers"] = self.workers
        payload["runs"] = {state: states.count(state) for state in STATES}
        return payload

    # ------------------------------------------------------------- execution

    def _slot_loop(self) -> None:
        from repro.core.executor import CampaignExecutor

        executor = CampaignExecutor(
            workers=self.workers, persistent=True, **self.supervision
        )
        slot_context = _SlotContext(self.context, self._artifact_lock)
        try:
            while True:
                item = self._queue.get()
                if item is None:
                    return
                entry, suite = item
                self._execute(entry, suite, executor, slot_context)
        finally:
            executor.close()

    def _execute(
        self,
        entry: RunEntry,
        suite: "ScenarioSuite",
        executor: "Any",
        slot_context: "Any",
    ) -> None:
        from repro.results.report import write_report
        from repro.scenarios.compile import run_scenarios
        from repro.utils.serialization import write_json_atomic
        import os

        final = self.run_dir(entry.id)
        staging = final.with_name(f".tmp-{entry.id}")

        def progress(cell: "Any") -> None:
            with self._lock:
                entry.completed = cell.completed
                entry.total = cell.total
                label = cell.campaign_label or entry.suite
                entry.by_scenario[label] = entry.by_scenario.get(label, 0) + 1

        with self._lock:
            self.counters["executions"] += 1
            entry.state = "running"
        try:
            if staging.exists():
                shutil.rmtree(staging)
            staging.mkdir(parents=True)
            run_scenarios(
                suite,
                progress=progress,
                out_dir=staging,
                context=slot_context,
                executor=executor,
            )
            write_report(staging)
            with self._lock:
                marker = {
                    "format": SERVICE_FORMAT,
                    "id": entry.id,
                    "suite": entry.suite,
                    "key": key_components(suite, self.context),
                    "completed": entry.completed,
                    "total": entry.total,
                    "by_scenario": dict(sorted(entry.by_scenario.items())),
                }
            write_json_atomic(staging / MARKER_FILENAME, marker)
            final.parent.mkdir(parents=True, exist_ok=True)
            if final.exists():  # pragma: no cover - only after manual surgery
                shutil.rmtree(final)
            os.replace(staging, final)
            with self._lock:
                entry.state = "complete"
        except Exception as error:  # noqa: BLE001 - a slot must survive any run
            shutil.rmtree(staging, ignore_errors=True)
            with self._lock:
                entry.state = "failed"
                entry.error = f"{type(error).__name__}: {error}"
        finally:
            entry.done.set()


# ------------------------------------------------------------------ HTTP


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes ``ROUTES`` onto a :class:`CampaignService` instance."""

    service: CampaignService  # assigned by serve()
    protocol_version = "HTTP/1.1"

    # The daemon logs via its own channel; per-request stderr chatter
    # would interleave across ThreadingHTTPServer threads.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json")

    def _dispatch(self, handler: "Any") -> None:
        try:
            handler()
        except ServiceError as error:
            self._send_json(error.status, {"error": str(error)})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as error:  # noqa: BLE001 - never kill the server thread
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch(self._post)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch(self._get)

    def _post(self) -> None:
        if self.path.rstrip("/") != "/campaigns":
            raise NotFound(f"no such endpoint: POST {self.path}")
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"body is not valid JSON: {error}") from error
        self._send_json(200, self.service.submit(payload))

    def _get(self) -> None:
        parts = [part for part in self.path.split("/") if part]
        if parts == ["stats"]:
            self._send_json(200, self.service.stats())
            return
        if not parts or parts[0] != "campaigns" or len(parts) > 3:
            raise NotFound(f"no such endpoint: GET {self.path}")
        if len(parts) == 2:
            self._send_json(200, self.service.entry(parts[1]).status_payload())
            return
        run_id, leaf = parts[1], parts[2]
        if leaf == "results":
            self._send_json(200, self.service.results_payload(run_id))
        elif leaf == "store":
            self._send(200, self.service.store_bytes(run_id), "application/octet-stream")
        elif leaf == "report":
            self._send(200, self.service.report_bytes(run_id), "text/html; charset=utf-8")
        else:
            raise NotFound(f"no such endpoint: GET {self.path}")


def serve(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 0,
    start: bool = True,
) -> ThreadingHTTPServer:
    """Bind an HTTP server onto ``service`` (not yet serving requests).

    Returns the bound :class:`~http.server.ThreadingHTTPServer`; the
    caller owns ``serve_forever``/``shutdown`` (the CLI runs it behind
    signal handlers; tests drive it from a thread).  ``port=0`` binds an
    ephemeral port — read it back from ``server.server_address``.
    ``start=False`` leaves the slot threads unspawned so tests can
    exercise queue-bound behaviour deterministically.
    """
    handler = type("BoundServiceHandler", (_ServiceHandler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    if start:
        service.start()
    return server
