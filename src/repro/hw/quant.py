"""Int8 quantized weight memory and bit-flip faults in the int8 domain.

The paper studies float32 weight storage, where a single exponent-MSB flip
multiplies a weight by 2^128 — the root cause of the accuracy collapse.
Deployed accelerators often store weights as int8 instead, where the worst
single-bit corruption is bounded by the sign bit (~2x the max weight
magnitude).  This module provides that alternative memory model so the
benchmark suite can quantify how much of the paper's problem is specific
to floating-point storage:

* symmetric per-tensor int8 quantization of every mapped parameter;
* a reversible quantizer that runs the model on dequantized-int8 weights
  (so clean accuracy honestly includes quantization error);
* an injector that corrupts bits of the *int8 codes* — random flips or
  any :class:`~repro.hw.faultmodels.FaultSet` (stuck-at-0/1, bursts,
  targeted positions) — and writes the dequantized result back into the
  live float parameters.

The memory advertises ``total_bits`` / ``total_words`` /
``bits_per_word`` (= 8), so every fault model in
:mod:`repro.hw.faultmodels` samples this code space directly and the
declarative scenario layer (:mod:`repro.scenarios`) can request "int8
variants" of any weight-memory fault scenario.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.hw.memory import MemoryRegion, WeightMemory, materialize_region
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = [
    "INT8_BITS",
    "quantize_symmetric",
    "dequantize_symmetric",
    "QuantizedWeightMemory",
]

INT8_BITS = 8
_QMAX = 127


def quantize_symmetric(values: np.ndarray) -> tuple[np.ndarray, float]:
    """Symmetric per-tensor int8 quantization.

    Returns ``(codes, scale)`` with ``codes`` int8 in [-127, 127] and
    ``values ~= codes * scale``.  An all-zero tensor gets scale 1.0.
    """
    values = np.asarray(values, dtype=np.float32)
    max_abs = float(np.abs(values).max()) if values.size else 0.0
    scale = max_abs / _QMAX if max_abs > 0 else 1.0
    codes = np.clip(np.rint(values / scale), -_QMAX, _QMAX).astype(np.int8)
    return codes, scale


def dequantize_symmetric(codes: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_symmetric`."""
    return codes.astype(np.float32) * np.float32(scale)


@dataclass
class _QuantRegion:
    """One parameter's int8 shadow storage."""

    region: MemoryRegion
    codes: np.ndarray  # int8, flat
    scale: float
    code_offset: int  # first global int8-bit index of this region


class QuantizedWeightMemory:
    """An int8 view over a model's :class:`WeightMemory`.

    Entering :meth:`deployed` quantizes every mapped parameter in place
    (the model then runs on dequantized int8 weights, exactly like an
    accelerator that stores int8 and dequantizes on read) and restores the
    original float weights on exit.  While deployed, :meth:`session`
    injects random bit flips into the int8 codes.
    """

    def __init__(self, memory: WeightMemory):
        self.memory = memory
        self._regions: list[_QuantRegion] = []
        self._float_snapshot: "list[np.ndarray] | None" = None
        offset = 0
        for region in memory.regions:
            codes, scale = quantize_symmetric(region.parameter.data.reshape(-1))
            self._regions.append(
                _QuantRegion(region=region, codes=codes, scale=scale, code_offset=offset)
            )
            offset += codes.size * INT8_BITS
        self.total_bits = offset
        # The fault-model polymorphism contract (repro.hw.faultmodels):
        # this memory is an 8-bit-word space, so word-addressed models
        # (TargetedBitFlip) stride by 8 and "sign bit" means bit 7.
        self.total_words = offset // INT8_BITS
        self.bits_per_word = INT8_BITS

    @property
    def deployed_now(self) -> bool:
        """Whether the float parameters currently hold dequantized values."""
        return self._float_snapshot is not None

    def scales(self) -> dict[str, float]:
        """Per-region quantization scales (for reports)."""
        return {q.region.name: q.scale for q in self._regions}

    # ------------------------------------------------------------------ #
    # deployment (quantize weights in place, restore on exit)
    # ------------------------------------------------------------------ #

    def _write_back(self, quant_region: _QuantRegion) -> None:
        # Copy-on-write: deployment rewrites the region in place, so a
        # read-only shared-memory view is privatized on first write
        # (int8 deployment touches every region by nature — the zero-copy
        # win for quantized sweeps is the transport, not residency).
        materialize_region(quant_region.region)
        flat = quant_region.region.parameter.data.reshape(-1)
        flat[:] = dequantize_symmetric(quant_region.codes, quant_region.scale)

    @contextmanager
    def deployed(self) -> Iterator["QuantizedWeightMemory"]:
        """Run the model on int8-dequantized weights inside the block."""
        if self.deployed_now:
            raise RuntimeError("already deployed")
        self._float_snapshot = self.memory.snapshot()
        try:
            for quant_region in self._regions:
                self._write_back(quant_region)
            yield self
        finally:
            self.memory.restore(self._float_snapshot)
            self._float_snapshot = None

    # ------------------------------------------------------------------ #
    # fault injection in int8 code space
    # ------------------------------------------------------------------ #

    def sample_bitflips(
        self, fault_rate: float, rng: "int | np.random.Generator"
    ) -> np.ndarray:
        """Unique int8-code bit indices at the given per-bit fault rate."""
        check_probability("fault_rate", fault_rate)
        generator = as_generator(rng)
        count = int(generator.binomial(self.total_bits, fault_rate))
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if count >= self.total_bits:
            return np.arange(self.total_bits, dtype=np.int64)
        return np.sort(
            generator.choice(self.total_bits, size=count, replace=False).astype(np.int64)
        )

    @staticmethod
    def _as_fault_set(faults) -> "FaultSet":
        """Coerce ``faults`` (bit-index array or FaultSet) to a FaultSet.

        The historical injection API took a flat array of bit indices
        (pure flips); declarative scenarios (:mod:`repro.scenarios`)
        sample full :class:`~repro.hw.faultmodels.FaultSet` objects so
        stuck-at fault models work in the int8 code space too.
        """
        from repro.hw.faultmodels import FaultSet

        if isinstance(faults, FaultSet):
            return faults
        return FaultSet.flips(np.asarray(faults, dtype=np.int64))

    def _locate(
        self, bit_indices: np.ndarray, operations: "np.ndarray | None" = None
    ) -> list[tuple[_QuantRegion, np.ndarray, np.ndarray, "np.ndarray | None"]]:
        offsets = np.asarray([q.code_offset for q in self._regions], dtype=np.int64)
        region_ids = np.searchsorted(offsets, bit_indices, side="right") - 1
        located = []
        for region_id in np.unique(region_ids):
            quant_region = self._regions[int(region_id)]
            mask = region_ids == region_id
            local = bit_indices[mask] - quant_region.code_offset
            located.append(
                (
                    quant_region,
                    local // INT8_BITS,
                    (local % INT8_BITS).astype(np.uint8),
                    operations[mask] if operations is not None else None,
                )
            )
        return located

    def affected_layers(self, faults) -> list[str]:
        """Distinct layer names the given int8-code faults belong to.

        ``faults`` is a bit-index array or a
        :class:`~repro.hw.faultmodels.FaultSet` over this code space.
        The cut-point report for suffix re-execution: layers upstream of
        the first affected layer keep their deployed (dequantized) weights
        bit-identical through an :meth:`apply` block.
        """
        bit_indices = self._as_fault_set(faults).bit_indices
        if bit_indices.size == 0:
            return []
        seen: list[str] = []
        for quant_region, _, _, _ in self._locate(bit_indices):
            name = quant_region.region.layer_name
            if name not in seen:
                seen.append(name)
        return seen

    @contextmanager
    def session(
        self, fault_rate: float, rng: "int | np.random.Generator"
    ) -> Iterator[int]:
        """Flip int8 bits at ``fault_rate`` inside the block; restore after.

        Must be used inside :meth:`deployed`.  Yields the number of flips.
        Equivalent to :meth:`sample_bitflips` followed by :meth:`apply`.
        """
        bit_indices = self.sample_bitflips(fault_rate, rng)
        with self.apply(bit_indices) as count:
            yield count

    @staticmethod
    def _code_masks(
        code_indices: np.ndarray, bit_positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-unique-code OR-combined bit masks.

        Bit indices are unique within a fault set, so each (code, bit)
        pair appears at most once and OR-reduce equals XOR-reduce.
        """
        order = np.argsort(code_indices, kind="stable")
        sorted_codes = code_indices[order]
        sorted_bits = bit_positions[order]
        unique_codes, starts = np.unique(sorted_codes, return_index=True)
        masks = np.bitwise_or.reduceat(
            (np.uint8(1) << sorted_bits).astype(np.uint8), starts
        )
        return unique_codes, masks

    @contextmanager
    def apply(self, faults) -> Iterator[int]:
        """Apply int8-code faults inside the block; restore after.

        ``faults`` is either a flat array of code-space bit indices
        (pure flips — the historical API) or a
        :class:`~repro.hw.faultmodels.FaultSet`, whose stuck-at
        operations force bits to 0/1 instead of toggling them — a stuck
        bit already holding the stuck value is benign, exactly as in
        the float32 :class:`~repro.hw.injector.FaultInjector`.

        Must be used inside :meth:`deployed`.  Yields the number of
        faulted bits.  Splitting sampling from application lets callers
        inspect the fault set (e.g. :meth:`affected_layers` for the
        suffix cut point) without perturbing the random stream.
        """
        from repro.hw.faultmodels import OP_FLIP, OP_STUCK0, OP_STUCK1

        if not self.deployed_now:
            raise RuntimeError("session requires the memory to be deployed()")
        fault_set = self._as_fault_set(faults)
        bit_indices = fault_set.bit_indices
        if bit_indices.size and (
            bit_indices.min() < 0 or bit_indices.max() >= self.total_bits
        ):
            raise IndexError("int8 bit index out of range")

        undo: list[tuple[_QuantRegion, np.ndarray, np.ndarray]] = []
        for quant_region, code_indices, bit_positions, operations in self._locate(
            bit_indices, fault_set.operations
        ):
            unique_codes = np.unique(code_indices)
            undo.append((quant_region, unique_codes, quant_region.codes[unique_codes].copy()))
            view = quant_region.codes.view(np.uint8)
            for op in (OP_FLIP, OP_STUCK0, OP_STUCK1):
                selected = operations == op
                if not selected.any():
                    continue
                codes, masks = self._code_masks(
                    code_indices[selected], bit_positions[selected]
                )
                if op == OP_FLIP:
                    view[codes] ^= masks
                elif op == OP_STUCK1:
                    view[codes] |= masks
                else:
                    view[codes] &= np.invert(masks)
            self._write_back(quant_region)
        try:
            yield int(bit_indices.size)
        finally:
            for quant_region, unique_codes, original in undo:
                quant_region.codes[unique_codes] = original
                self._write_back(quant_region)
