"""Fault-model registry: names + parameters a scenario spec may request.

Maps the declarative ``fault_model:`` block of a :class:`~repro.scenarios.spec.CampaignSpec`
onto the concrete :mod:`repro.hw.faultmodels` classes.  The registry
(:data:`FAULT_MODELS`) is the single source of truth for which model
names exist, which parameters each accepts and which campaign kinds can
run it — ``docs/SCENARIOS.md`` documents exactly this table and
``tests/test_docs_consistency.py`` enforces the two against each other
in both directions.

Rate semantics
--------------

A campaign sweeps one *rate axis*; each fault model interprets the rate
so that comparable rates mean comparable corruption budgets:

* ``random_bitflip`` / ``stuck_at`` — per-bit fault probability (the
  number of faulty bits is Binomial(total_bits, rate));
* ``burst`` — expected *fraction of faulty bits*: the burst count is
  ``round(rate * total_bits / burst_length)`` (deterministic per rate;
  placement random per trial);
* ``targeted_bit`` — per-*word* fault probability: ``round(rate *
  total_words)`` words get their targeted bit flipped;
* ``fixed_map`` — the rate axis is ignored; every cell injects the
  same pre-drawn map (the trial spread then isolates evaluation noise).

Every model samples through the memory-polymorphism contract of
:mod:`repro.hw.faultmodels` (``total_bits`` / ``total_words`` /
``bits_per_word``), so the same spec block targets the float32 weight
memory (``campaign: weight``) or the int8 code space
(``campaign: quantized``) unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.hw.faultmodels import (
    OP_FLIP,
    OP_STUCK0,
    OP_STUCK1,
    BurstFault,
    FaultModel,
    FaultSet,
    FixedFaultMap,
    RandomBitFlip,
    StuckAt,
    TargetedBitFlip,
)

__all__ = [
    "FaultModelInfo",
    "FAULT_MODELS",
    "NAMED_BIT_POSITIONS",
    "SpecFaultSampler",
    "build_fault_model",
    "resolve_bit_position",
    "validate_fault_params",
]

# Symbolic bit positions a ``targeted_bit`` spec may use instead of an
# integer.  ``sign`` resolves against the sampled memory's word width
# (bit 31 in float32, bit 7 in int8); the float32 field names are only
# valid on 32-bit-word memories and raise against int8 storage.
NAMED_BIT_POSITIONS: dict[str, "int | None"] = {
    "sign": None,  # bits_per_word - 1, any storage
    "exponent_msb": 30,  # float32 only
    "mantissa_msb": 22,  # float32 only
}

_OP_NAMES = {"flip": OP_FLIP, "stuck0": OP_STUCK0, "stuck1": OP_STUCK1}


@dataclass(frozen=True)
class FaultModelInfo:
    """One registry row: parameter schema + supported campaign kinds."""

    name: str
    campaigns: tuple[str, ...]
    params: Mapping[str, str] = field(default_factory=dict)  # name -> doc


FAULT_MODELS: dict[str, FaultModelInfo] = {
    info.name: info
    for info in (
        FaultModelInfo(
            name="random_bitflip",
            campaigns=("weight", "quantized", "activation"),
        ),
        FaultModelInfo(
            name="stuck_at",
            campaigns=("weight", "quantized"),
            params={"value": "stuck value, 0 or 1 (default 1)"},
        ),
        FaultModelInfo(
            name="burst",
            campaigns=("weight", "quantized"),
            params={
                "burst_length": "consecutive bits per burst (default 8)"
            },
        ),
        FaultModelInfo(
            name="targeted_bit",
            campaigns=("weight", "quantized"),
            params={
                "bit": (
                    "bit position within each word: an integer or one of "
                    "'sign', 'exponent_msb', 'mantissa_msb' (default 'sign')"
                )
            },
        ),
        FaultModelInfo(
            name="fixed_map",
            campaigns=("weight", "quantized"),
            params={
                "bits": "list of global bit indices to corrupt (required)",
                "op": "'flip', 'stuck0' or 'stuck1' (default 'flip')",
            },
        ),
    )
}


def resolve_bit_position(
    bit: "int | str", bits_per_word: "int | None" = None
) -> "int | None":
    """Resolve a ``targeted_bit`` position (validating symbolic names).

    With ``bits_per_word=None`` only the *name* is validated (spec parse
    time, before any memory exists) and symbolic positions return
    ``None``; with a concrete width the resolved integer position is
    returned and range-checked against that width.
    """
    if isinstance(bit, str):
        if bit not in NAMED_BIT_POSITIONS:
            raise ValueError(
                f"unknown bit position name {bit!r}; use an integer or one "
                f"of {sorted(NAMED_BIT_POSITIONS)}"
            )
        if bits_per_word is None:
            return NAMED_BIT_POSITIONS[bit]
        if bit == "sign":
            return bits_per_word - 1
        position = NAMED_BIT_POSITIONS[bit]
    elif isinstance(bit, (int, np.integer)) and not isinstance(bit, bool):
        position = int(bit)
        if position < 0:
            raise ValueError(f"bit position must be non-negative, got {position}")
    else:
        raise TypeError(
            f"bit position must be an int or a name, got {type(bit).__name__}"
        )
    if bits_per_word is not None and position >= bits_per_word:
        raise ValueError(
            f"bit position {bit!r} (= {position}) does not exist in a "
            f"{bits_per_word}-bit word memory"
        )
    return position


def validate_fault_params(name: str, params: Mapping[str, Any]) -> None:
    """Validate a fault-model block at spec-parse time (no memory needed)."""
    try:
        info = FAULT_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault model {name!r}; available: {sorted(FAULT_MODELS)}"
        ) from None
    unknown = set(params) - set(info.params)
    if unknown:
        raise ValueError(
            f"fault model {name!r} got unknown parameter(s) "
            f"{sorted(unknown)}; accepts {sorted(info.params) or 'none'}"
        )
    if name == "stuck_at" and params.get("value", 1) not in (0, 1):
        raise ValueError(
            f"stuck_at value must be 0 or 1, got {params['value']!r}"
        )
    if name == "burst":
        length = params.get("burst_length", 8)
        if not isinstance(length, (int, np.integer)) or length <= 0:
            raise ValueError(
                f"burst_length must be a positive integer, got {length!r}"
            )
    if name == "targeted_bit":
        resolve_bit_position(params.get("bit", "sign"))
    if name == "fixed_map":
        bits = params.get("bits")
        if bits is None:
            raise ValueError("fixed_map requires a 'bits' list")
        array = np.asarray(list(bits), dtype=np.int64)
        if array.ndim != 1 or (array.size and array.min() < 0):
            raise ValueError("fixed_map bits must be non-negative integers")
        if array.size and np.unique(array).size != array.size:
            raise ValueError("fixed_map bits must be unique")
        op = params.get("op", "flip")
        if op not in _OP_NAMES:
            raise ValueError(
                f"fixed_map op must be one of {sorted(_OP_NAMES)}, got {op!r}"
            )


def build_fault_model(
    name: str, params: Mapping[str, Any], rate: float, memory: Any
) -> FaultModel:
    """Instantiate the concrete fault model for one ``(rate, memory)`` pair.

    ``memory`` is any bit-addressable space honouring the polymorphism
    contract (:class:`~repro.hw.memory.WeightMemory` or
    :class:`~repro.hw.quant.QuantizedWeightMemory`).
    """
    validate_fault_params(name, params)
    if name == "random_bitflip":
        return RandomBitFlip(rate)
    if name == "stuck_at":
        return StuckAt(rate, value=int(params.get("value", 1)))
    if name == "burst":
        length = int(params.get("burst_length", 8))
        n_bursts = int(round(rate * memory.total_bits / length))
        return BurstFault(n_bursts=n_bursts, burst_length=length)
    if name == "targeted_bit":
        position = resolve_bit_position(
            params.get("bit", "sign"), memory.bits_per_word
        )
        n_faults = int(round(rate * memory.total_words))
        return TargetedBitFlip(position, n_faults)
    # fixed_map (validate_fault_params rejected everything else)
    bits = np.asarray(list(params["bits"]), dtype=np.int64)
    op = _OP_NAMES[params.get("op", "flip")]
    return FixedFaultMap(
        FaultSet(bits, np.full(bits.shape, op, dtype=np.uint8))
    )


class SpecFaultSampler:
    """Picklable fault sampler compiled from a spec's ``fault_model`` block.

    Satisfies the :data:`~repro.core.campaign.FaultSampler` protocol for
    float32 campaigns and the quantized-sampler hook of
    :class:`~repro.core.quantized.QuantizedCellTask` for int8 campaigns:
    the concrete fault model is rebuilt per ``(rate, memory)`` call, so
    rate-scaled models (burst, targeted_bit) derive their counts from
    the memory they are actually sampling.  A module-level class (not a
    closure) so spec-driven campaigns pickle and fan out across worker
    processes.
    """

    def __init__(self, name: str, params: "Mapping[str, Any] | None" = None):
        self.name = str(name)
        self.params = dict(params or {})
        validate_fault_params(self.name, self.params)

    def __call__(
        self, memory: Any, rate: float, rng: np.random.Generator
    ) -> FaultSet:
        model = build_fault_model(self.name, self.params, rate, memory)
        return model.sample(memory, rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpecFaultSampler({self.name!r}, {self.params!r})"
