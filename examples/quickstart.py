#!/usr/bin/env python
"""Quickstart: break a DNN with weight-memory bit flips, then fix it.

Walks the paper's whole story in under a minute on one CPU core:

1. get a pre-trained network (trained and cached by the model zoo);
2. flip random bits in its weight memory and watch accuracy collapse;
3. harden it with FT-ClipAct (profile -> clip -> fine-tune);
4. re-run the same faults and watch accuracy survive.

Run:  python examples/quickstart.py [--model lenet5] [--trials 10]
"""

import argparse

from repro.analysis.reporting import format_comparison_table
from repro.core.campaign import CampaignConfig, run_campaign
from repro.experiments import (
    clone_model,
    default_harden_config,
    experiment_bundle,
    hardened_clone,
    paper_fault_rates,
)
from repro.hw.memory import WeightMemory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model",
        default="lenet5",
        choices=["lenet5", "alexnet", "vgg16"],
        help="which canonical network to demo (lenet5 is fastest)",
    )
    parser.add_argument("--trials", type=int, default=10, help="fault trials per rate")
    parser.add_argument("--eval-images", type=int, default=200, help="evaluation set size")
    args = parser.parse_args()

    print(f"== Step 0: load (or train once) the pre-trained {args.model} ==")
    bundle = experiment_bundle(args.model)
    source = "cache" if bundle.from_cache else "fresh training"
    print(f"clean test accuracy: {bundle.clean_accuracy:.3f}  (from {source})")

    images, labels = bundle.test_set.arrays()
    images, labels = images[: args.eval_images], labels[: args.eval_images]
    config = CampaignConfig(
        fault_rates=paper_fault_rates(), trials=args.trials, seed=42
    )

    print("\n== Step 1: fault-inject the unprotected network ==")
    unprotected = clone_model(bundle)
    base_curve = run_campaign(
        unprotected,
        WeightMemory.from_model(unprotected),
        images,
        labels,
        config,
        label="unprotected",
    )

    print("== Step 2: harden with FT-ClipAct (profile, clip, fine-tune) ==")
    hardened, thresholds, act_max = hardened_clone(bundle, default_harden_config())
    print("per-layer clipping thresholds (ACT_max -> tuned T):")
    for layer in thresholds:
        print(f"  {layer:8s}  {act_max[layer]:10.4f} -> {thresholds[layer]:10.4f}")

    print("\n== Step 3: fault-inject the hardened network (same faults) ==")
    hard_curve = run_campaign(
        hardened,
        WeightMemory.from_model(hardened),
        images,
        labels,
        config,
        label="ft-clipact",
    )

    print()
    print(
        format_comparison_table(
            [base_curve, hard_curve],
            labels=["unprotected", "ft-clipact"],
            title=f"{args.model}: mean accuracy vs per-bit fault rate",
        )
    )
    gain = (hard_curve.auc() / base_curve.auc() - 1.0) * 100.0
    print(f"\nAUC improvement from FT-ClipAct: {gain:+.1f}%")


if __name__ == "__main__":
    main()
