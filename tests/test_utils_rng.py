"""Tests for the seeding infrastructure."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import SeedTree, as_generator, spawn_seeds


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnSeeds:
    def test_prefix_stability(self):
        assert spawn_seeds(7, 10)[:4] == spawn_seeds(7, 4)

    def test_distinct(self):
        seeds = spawn_seeds(7, 50)
        assert len(set(seeds)) == 50

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(7, -1)

    def test_zero_count(self):
        assert spawn_seeds(7, 0) == []


class TestSeedTree:
    def test_same_path_same_seed(self):
        tree = SeedTree(123)
        assert tree.seed("a/b") == tree.seed("a/b")

    def test_different_paths_differ(self):
        tree = SeedTree(123)
        assert tree.seed("a") != tree.seed("b")

    def test_order_independent(self):
        first = SeedTree(9)
        _ = first.seed("x")
        value = first.seed("y")
        second = SeedTree(9)
        assert second.seed("y") == value

    def test_child_consistency(self):
        tree = SeedTree(5)
        child = tree.child("sub")
        assert child.root_seed == tree.seed("sub")

    def test_generator_streams_independent(self):
        tree = SeedTree(11)
        a = tree.generator("one").random(100)
        b = tree.generator("two").random(100)
        assert not np.allclose(a, b)

    def test_seeds_helper_matches_paths(self):
        tree = SeedTree(3)
        assert tree.seeds("t", 3) == [tree.seed("t/0"), tree.seed("t/1"), tree.seed("t/2")]

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            SeedTree(0).seed("")

    def test_non_int_root_rejected(self):
        with pytest.raises(TypeError):
            SeedTree("abc")  # type: ignore[arg-type]

    def test_equality_and_hash(self):
        assert SeedTree(4) == SeedTree(4)
        assert SeedTree(4) != SeedTree(5)
        assert hash(SeedTree(4)) == hash(SeedTree(4))

    def test_repr(self):
        assert "42" in repr(SeedTree(42))

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    def test_seed_in_63bit_range(self, root, path):
        seed = SeedTree(root).seed(path)
        assert 0 <= seed < 2**63

    @given(st.integers(min_value=0, max_value=2**31))
    def test_distinct_roots_decorrelate(self, root):
        a = SeedTree(root).seed("p")
        b = SeedTree(root + 1).seed("p")
        assert a != b
