"""Adam optimizer."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction and optional decoupled weight decay (AdamW)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled: bool = True,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = self._check_hyper("weight_decay", weight_decay)
        self.decoupled = bool(decoupled)
        self._step_count = 0
        self._moment1: list["np.ndarray | None"] = [None] * len(self.parameters)
        self._moment2: list["np.ndarray | None"] = [None] * len(self.parameters)

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, param in enumerate(self.parameters):
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay and not self.decoupled:
                grad = grad + self.weight_decay * param.data

            m = self._moment1[index]
            v = self._moment2[index]
            if m is None or v is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._moment1[index] = m
            self._moment2[index] = v

            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay and self.decoupled:
                update = update + self.weight_decay * param.data
            param.data -= (self.lr * update).astype(np.float32)
