"""Hamming SEC-DED error-correcting code over 32-bit weight words.

The paper cites ECC as the standard (but costly) memory-protection
baseline.  We implement a real (39,32) Hamming single-error-correct /
double-error-detect codec — 6 Hamming check bits plus 1 overall parity —
and a campaign-level filter that models what an ECC-protected weight
memory does to a sampled fault set:

* codewords with exactly one faulty bit are fully corrected;
* codewords with two faulty bits are *detected* but uncorrectable (DUE);
  the policy decides whether the word is zeroed (safe default on many
  accelerators) or left corrupted;
* three or more faults may alias to silent corruption, which the filter
  conservatively treats like the >=2 case.

The storage overhead (39/32 ≈ 1.22x) and the detection guarantees match a
standard SEC-DED DRAM/SRAM design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.bits import WORD_BITS
from repro.hw.faultmodels import OP_FLIP, OP_STUCK0, FaultSet
from repro.hw.memory import WeightMemory
from repro.utils.validation import check_in_choices

__all__ = [
    "CODE_DATA_BITS",
    "CODE_CHECK_BITS",
    "CODE_TOTAL_BITS",
    "hamming_encode",
    "hamming_decode",
    "SECDEDResult",
    "ECCFilter",
]

CODE_DATA_BITS = 32
CODE_CHECK_BITS = 7  # 6 Hamming bits + 1 overall parity
CODE_TOTAL_BITS = CODE_DATA_BITS + CODE_CHECK_BITS  # 39


def _parity_positions() -> list[np.ndarray]:
    """For each of the 6 Hamming check bits, the data-bit indices it covers.

    Data bits are placed at the non-power-of-two codeword positions of a
    standard Hamming(63,57) layout truncated to 32 data bits.
    """
    data_codeword_positions = []
    position = 1
    while len(data_codeword_positions) < CODE_DATA_BITS:
        if position & (position - 1):  # not a power of two -> data position
            data_codeword_positions.append(position)
        position += 1
    covers: list[np.ndarray] = []
    for check in range(6):
        check_mask = 1 << check
        covered = [
            data_index
            for data_index, codeword_position in enumerate(data_codeword_positions)
            if codeword_position & check_mask
        ]
        covers.append(np.asarray(covered, dtype=np.int64))
    return covers


_PARITY_COVERS = _parity_positions()


def _data_bits_matrix(words: np.ndarray) -> np.ndarray:
    """Expand uint32 words into an (n, 32) bit matrix (LSB first)."""
    words = np.asarray(words, dtype=np.uint32)
    shifts = np.arange(CODE_DATA_BITS, dtype=np.uint32)
    return ((words[:, None] >> shifts[None, :]) & np.uint32(1)).astype(np.uint8)


def hamming_encode(words: np.ndarray) -> np.ndarray:
    """Compute the 7 check bits for each uint32 word.

    Returns an (n,) uint8 array: bits 0-5 are the Hamming check bits,
    bit 6 is the overall parity of data + Hamming bits.
    """
    bits = _data_bits_matrix(words)
    check = np.zeros(bits.shape[0], dtype=np.uint8)
    for index, cover in enumerate(_PARITY_COVERS):
        parity = bits[:, cover].sum(axis=1) & 1
        check |= (parity.astype(np.uint8)) << index
    overall = (bits.sum(axis=1, dtype=np.int64) + _popcount8(check & 0x3F)) & 1
    check |= overall.astype(np.uint8) << 6
    return check


def _popcount8(values: np.ndarray) -> np.ndarray:
    """Population count of uint8 values."""
    values = values.astype(np.uint8)
    count = np.zeros_like(values, dtype=np.int64)
    for shift in range(8):
        count += (values >> shift) & 1
    return count


@dataclass(frozen=True)
class SECDEDResult:
    """Outcome of decoding one codeword."""

    data: int  # possibly corrected uint32 word
    corrected: bool  # a single-bit error was fixed
    detected_uncorrectable: bool  # double-bit error detected (DUE)


def hamming_decode(word: int, check: int) -> SECDEDResult:
    """Decode one (data word, check bits) pair under SEC-DED semantics.

    Reference scalar implementation: used for testing the campaign-level
    filter below, which never materialises check-bit storage.
    """
    word = int(word) & 0xFFFFFFFF
    check = int(check) & 0x7F
    expected = int(hamming_encode(np.asarray([word], dtype=np.uint32))[0])
    syndrome = (check ^ expected) & 0x3F
    # Overall parity is checked over the *received* codeword (data bits plus
    # stored Hamming bits) against the stored parity bit, so any single-bit
    # error — data, check or parity — flips exactly one term.
    received_overall = (word.bit_count() + (check & 0x3F).bit_count()) & 1
    parity_mismatch = received_overall != ((check >> 6) & 1)

    if syndrome == 0 and not parity_mismatch:
        return SECDEDResult(data=word, corrected=False, detected_uncorrectable=False)
    if syndrome != 0 and parity_mismatch:
        # Single error at codeword position = syndrome; correct if it is a
        # data position (power-of-two positions are check bits).
        if syndrome & (syndrome - 1):
            data_positions = []
            position = 1
            while len(data_positions) < CODE_DATA_BITS:
                if position & (position - 1):
                    data_positions.append(position)
                position += 1
            try:
                data_index = data_positions.index(syndrome)
            except ValueError:
                # Syndrome beyond the truncated code: treat as detected.
                return SECDEDResult(word, corrected=False, detected_uncorrectable=True)
            return SECDEDResult(
                data=word ^ (1 << data_index),
                corrected=True,
                detected_uncorrectable=False,
            )
        # Error in a check bit: data is intact.
        return SECDEDResult(data=word, corrected=True, detected_uncorrectable=False)
    if syndrome == 0 and parity_mismatch:
        # Error in the overall parity bit itself: data intact.
        return SECDEDResult(data=word, corrected=True, detected_uncorrectable=False)
    # syndrome != 0 and overall parity consistent -> double error.
    return SECDEDResult(data=word, corrected=False, detected_uncorrectable=True)


class ECCFilter:
    """Campaign-level model of a SEC-DED-protected weight memory.

    Fault sets are sampled over the *codeword* bit space (39 bits per
    32-bit data word, so ECC pays its fault-exposure overhead honestly) and
    then filtered:

    * exactly 1 fault in a codeword -> corrected, no data corruption;
    * >=2 faults -> per ``due_policy``: ``"zero"`` zeroes the data word
      (detected-uncorrectable handled safely), ``"keep"`` lets the data-bit
      faults through (silent corruption).
    """

    def __init__(self, due_policy: str = "zero"):
        check_in_choices("due_policy", due_policy, ("zero", "keep"))
        self.due_policy = due_policy

    def codeword_bits(self, memory: WeightMemory) -> int:
        """Size of the protected bit space (data + check bits)."""
        return memory.total_words * CODE_TOTAL_BITS

    def filter(self, memory: WeightMemory, codeword_fault_bits: np.ndarray) -> FaultSet:
        """Translate codeword-space faults into the effective data faults.

        ``codeword_fault_bits`` are unique indices in
        ``[0, codeword_bits(memory))``; within each 39-bit codeword, offsets
        0-31 are data bits and 32-38 are check bits.
        """
        faults = np.asarray(codeword_fault_bits, dtype=np.int64)
        if faults.size == 0:
            return FaultSet.empty()
        if faults.min() < 0 or faults.max() >= self.codeword_bits(memory):
            raise IndexError("codeword fault index out of range")

        codeword = faults // CODE_TOTAL_BITS
        offset = faults % CODE_TOTAL_BITS
        unique_words, counts = np.unique(codeword, return_counts=True)
        multi_words = unique_words[counts >= 2]

        if multi_words.size == 0:
            return FaultSet.empty()

        if self.due_policy == "zero":
            # Zero every word that suffered a multi-bit error: express this
            # as stuck-at-0 on all 32 data bits of those words.
            bit_indices = (
                multi_words[:, None] * WORD_BITS + np.arange(WORD_BITS)[None, :]
            ).reshape(-1)
            ops = np.full(bit_indices.shape, OP_STUCK0, dtype=np.uint8)
            return FaultSet(bit_indices, ops)

        # "keep": let the data-bit faults of multi-fault words through.
        in_multi = np.isin(codeword, multi_words)
        is_data = offset < CODE_DATA_BITS
        passed = in_multi & is_data
        bit_indices = codeword[passed] * WORD_BITS + offset[passed]
        ops = np.full(bit_indices.shape, OP_FLIP, dtype=np.uint8)
        return FaultSet(bit_indices, ops)

    def sample_effective(
        self, memory: WeightMemory, fault_rate: float, rng: np.random.Generator
    ) -> FaultSet:
        """Sample raw faults over codeword space and return the survivors."""
        total = self.codeword_bits(memory)
        count = int(rng.binomial(total, fault_rate))
        if count == 0:
            return FaultSet.empty()
        if count >= total:
            raw = np.arange(total, dtype=np.int64)
        else:
            raw = rng.choice(total, size=count, replace=False).astype(np.int64)
        return self.filter(memory, raw)
