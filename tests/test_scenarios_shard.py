"""Multi-host sharding: segmented runs, merge bit-identity, resume guards.

The tentpole contract under test: ``ShardPlan.split`` partitions a
suite's cell matrix into N self-contained shards, each executed into a
segmented run directory by :func:`run_scenario_shard`, and
:func:`merge_run` reassembles outputs **byte-identical** to the
unsharded :func:`run_scenarios` run — for any N, any shard completion
order, exact and adaptive mode, serial and 2-worker execution (per-cell
seeds depend only on ``(seed, rate, trial)``).

Also here: the result-writing bugfix sweep — duplicate-name rejection on
both ``run_scenarios`` input shapes, atomic ``write_results``, and
deterministic disambiguation of colliding file stems.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.scenarios import (
    CampaignSpec,
    ScenarioContext,
    ScenarioResult,
    ScenarioSuite,
    ShardPlan,
    ShardSpec,
    merge_run,
    run_scenario_shard,
    run_scenarios,
    scenario_file_stems,
    suite_fingerprint,
    write_results,
)


# ------------------------------------------------------------------ #
# shared artifacts: one tiny trained model, one exact + adaptive suite
# ------------------------------------------------------------------ #


@pytest.fixture(scope="module")
def ctx():
    """One shared context so the tiny lenet5 trains once per module."""
    return ScenarioContext(
        bundle_overrides={
            "n_train": 96, "n_val": 48, "n_test": 64, "epochs": 1
        }
    )


@pytest.fixture(scope="module")
def suite():
    """Exact, adaptive, and importance-weighted adaptive scenarios."""
    return ScenarioSuite(
        name="shard-mini",
        specs=(
            CampaignSpec(
                name="exact", model="lenet5", rates=(1e-6, 1e-5, 1e-4),
                trials=2, eval_images=16, batch_size=16, seed=11,
            ),
            CampaignSpec(
                name="adaptive", model="lenet5", rates=(1e-6, 1e-4),
                trials=3, eval_images=16, batch_size=16, seed=12,
                mode="adaptive", ci_halfwidth=0.2,
            ),
            CampaignSpec(
                name="weighted", model="lenet5", rates=(1e-5, 1e-4),
                trials=2, eval_images=16, batch_size=16, seed=13,
                mode="adaptive", ci_halfwidth=0.2, importance=4.0,
            ),
        ),
    )


@pytest.fixture(scope="module")
def unsharded(suite, ctx, tmp_path_factory):
    """Byte-for-byte reference outputs of the single-host serial run."""
    out = tmp_path_factory.mktemp("unsharded")
    run_scenarios(suite, workers=1, out_dir=out, context=ctx)
    return {path.name: path.read_bytes() for path in out.glob("*.json")}


def _run_all_shards(suite, count, run_dir, ctx, order, workers=1):
    indices = range(1, count + 1)
    if order == "reverse":
        indices = reversed(list(indices))
    for index in indices:
        run_scenario_shard(
            suite, f"{index}/{count}", run_dir, workers=workers, context=ctx
        )


def _assert_merged_matches(run_dir, unsharded):
    merged = {path.name: path.read_bytes() for path in run_dir.glob("*.json")}
    assert merged == unsharded


# ------------------------------------------------------------------ #
# shard arithmetic
# ------------------------------------------------------------------ #


class TestShardPlan:
    def test_partition_is_disjoint_and_complete(self, suite):
        for count in (1, 2, 3, 5, 50):
            plan = ShardPlan.split(suite, count)
            seen: set = set()
            for index in range(1, count + 1):
                for spec_index, cells in enumerate(
                    plan.cells_for(f"{index}/{count}")
                ):
                    for cell in cells:
                        key = (spec_index, cell)
                        assert key not in seen
                        seen.add(key)
            assert len(seen) == plan.total_cells

    def test_round_robin_is_balanced(self, suite):
        plan = ShardPlan.split(suite, 3)
        loads = [
            sum(len(cells) for cells in plan.cells_for(f"{i}/3"))
            for i in (1, 2, 3)
        ]
        assert max(loads) - min(loads) <= 1

    def test_adaptive_families_shard_as_whole_units(self, suite):
        plan = ShardPlan.split(suite, 2)
        for spec in suite.specs:
            n_rates, n_trials = plan.grid_shape(spec)
            assert n_rates == len(spec.rates)
            # One executor cell per rate: the whole trial family moves
            # together, so stopping decisions cannot straddle shards.
            assert n_trials == (1 if spec.mode == "adaptive" else spec.trials)

    def test_parse_rejects_bad_shard_strings(self):
        for bad in ("0/3", "4/3", "1/0", "a/b", "1-3", "", "1/"):
            with pytest.raises(ValueError):
                ShardSpec.parse(bad)
        assert ShardSpec.parse("2/3") == ShardSpec(2, 3)
        assert ShardSpec(2, 3).dirname == "2-of-3"

    def test_split_rejects_duplicates_and_empty(self, suite):
        spec = suite.specs[0]
        with pytest.raises(ValueError, match="unique"):
            ShardPlan.split([spec, spec], 2)
        with pytest.raises(ValueError, match="empty"):
            ShardPlan.split([], 2)

    def test_fingerprint_tracks_content(self, suite):
        base = suite_fingerprint(suite.name, suite.specs)
        assert base == suite_fingerprint(suite.name, suite.specs)
        assert base != suite_fingerprint("other", suite.specs)
        assert base != suite_fingerprint(suite.name, suite.specs[:2])

    def test_more_shards_than_cells_is_fine(self, suite):
        plan = ShardPlan.split(suite, 50)
        total = sum(
            len(cells)
            for i in range(1, 51)
            for cells in plan.cells_for(f"{i}/50")
        )
        assert total == plan.total_cells


# ------------------------------------------------------------------ #
# the acceptance matrix: merged == unsharded, byte for byte
# ------------------------------------------------------------------ #


class TestMergedBitIdentity:
    @pytest.mark.parametrize("count", [1, 2, 3])
    @pytest.mark.parametrize("order", ["forward", "reverse"])
    def test_serial_shards(self, suite, ctx, unsharded, tmp_path, count, order):
        run_dir = tmp_path / "run"
        _run_all_shards(suite, count, run_dir, ctx, order)
        results = merge_run(run_dir)
        assert [r.name for r in results] == [s.name for s in suite.specs]
        _assert_merged_matches(run_dir, unsharded)

    @pytest.mark.parametrize("count", [1, 2, 3])
    def test_two_worker_shards(self, suite, ctx, unsharded, tmp_path, count):
        run_dir = tmp_path / "run"
        _run_all_shards(suite, count, run_dir, ctx, "reverse", workers=2)
        merge_run(run_dir)
        _assert_merged_matches(run_dir, unsharded)

    def test_merge_is_idempotent(self, suite, ctx, unsharded, tmp_path):
        run_dir = tmp_path / "run"
        _run_all_shards(suite, 2, run_dir, ctx, "forward")
        merge_run(run_dir)
        merge_run(run_dir)
        _assert_merged_matches(run_dir, unsharded)


# ------------------------------------------------------------------ #
# segmented-run lifecycle: resume, append, reject
# ------------------------------------------------------------------ #


class TestShardLifecycle:
    def test_rerun_resumes_from_checkpoint(self, suite, ctx, tmp_path):
        run_dir = tmp_path / "run"
        run_scenario_shard(suite, "1/2", run_dir, context=ctx)
        replayed: list = []
        run_scenario_shard(
            suite, "1/2", run_dir, context=ctx, progress=replayed.append
        )
        assert replayed, "second run emitted no cells"
        assert all(cell.from_checkpoint for cell in replayed)

    def test_checkpoint_refuses_other_shard_index(self, suite, ctx, tmp_path):
        run_dir = tmp_path / "run"
        run_scenario_shard(suite, "1/2", run_dir, context=ctx)
        foreign = run_dir / "shards" / "2-of-2"
        foreign.mkdir(parents=True)
        shutil.copy(
            run_dir / "shards" / "1-of-2" / "checkpoint.json",
            foreign / "checkpoint.json",
        )
        with pytest.raises(ValueError, match="different campaign"):
            run_scenario_shard(suite, "2/2", run_dir, context=ctx)

    def test_checkpoint_refuses_other_shard_count(self, suite, ctx, tmp_path):
        source = tmp_path / "source"
        run_scenario_shard(suite, "1/2", source, context=ctx)
        other = tmp_path / "other"
        target = other / "shards" / "1-of-3"
        target.mkdir(parents=True)
        shutil.copy(
            source / "shards" / "1-of-2" / "checkpoint.json",
            target / "checkpoint.json",
        )
        with pytest.raises(ValueError, match="different campaign"):
            run_scenario_shard(suite, "1/3", other, context=ctx)

    def test_shard_dir_refuses_a_different_suite(self, suite, ctx, tmp_path):
        run_dir = tmp_path / "run"
        run_scenario_shard(suite, "1/2", run_dir, context=ctx)
        other = ScenarioSuite(name="other-suite", specs=suite.specs)
        with pytest.raises(ValueError, match="manifest"):
            run_scenario_shard(other, "1/2", run_dir, context=ctx)

    def test_merge_lists_missing_shards_then_appends(
        self, suite, ctx, unsharded, tmp_path
    ):
        run_dir = tmp_path / "run"
        run_scenario_shard(suite, "1/3", run_dir, context=ctx)
        run_scenario_shard(suite, "3/3", run_dir, context=ctx)
        with pytest.raises(ValueError, match=r"missing shard\(s\) 2/3"):
            merge_run(run_dir)
        # A late shard appends into the existing run directory.
        run_scenario_shard(suite, "2/3", run_dir, context=ctx)
        merge_run(run_dir)
        _assert_merged_matches(run_dir, unsharded)

    def test_merge_rejects_foreign_suite_hash(self, suite, ctx, tmp_path):
        run_dir = tmp_path / "run"
        _run_all_shards(suite, 2, run_dir, ctx, "forward")
        manifest_path = run_dir / "shards" / "2-of-2" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["suite_hash"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="different suite"):
            merge_run(run_dir)

    def test_merge_rejects_edited_spec_list(self, suite, ctx, tmp_path):
        run_dir = tmp_path / "run"
        _run_all_shards(suite, 2, run_dir, ctx, "forward")
        manifest_path = run_dir / "shards" / "1-of-2" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["specs"][0]["seed"] += 1  # forge content, keep the hash
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="does not match its own spec"):
            merge_run(run_dir)

    def test_merge_rejects_incomplete_shard_partials(
        self, suite, ctx, tmp_path
    ):
        run_dir = tmp_path / "run"
        _run_all_shards(suite, 2, run_dir, ctx, "forward")
        partial_dir = run_dir / "shards" / "1-of-2" / "partial"
        removed = next(iter(sorted(partial_dir.glob("*.json"))))
        removed.unlink()
        with pytest.raises(ValueError, match="no partial result"):
            merge_run(run_dir)

    def test_merge_without_shards_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="shards"):
            merge_run(tmp_path)


# ------------------------------------------------------------------ #
# executor cell subsets (the substrate sharding rides on)
# ------------------------------------------------------------------ #


class TestExecutorCellSubsets:
    def _task(self, trained_mlp, mlp_eval_arrays):
        from repro.core.campaign import CampaignConfig
        from repro.core.executor import WeightFaultCellTask
        from repro.hw.memory import WeightMemory

        images, labels = mlp_eval_arrays
        return WeightFaultCellTask(
            trained_mlp,
            WeightMemory.from_model(trained_mlp),
            images[:16],
            labels[:16],
            config=CampaignConfig(
                fault_rates=(1e-5, 1e-4), trials=2, seed=5, batch_size=16
            ),
        )

    def test_subset_runs_only_requested_cells(
        self, trained_mlp, mlp_eval_arrays
    ):
        from repro.core.executor import CampaignExecutor

        task = self._task(trained_mlp, mlp_eval_arrays)
        _, grids = CampaignExecutor().run_grids(
            [task], cells=[[(1, 0), (0, 1)]]
        )
        finite = np.isfinite(grids[0])
        assert finite[1, 0] and finite[0, 1]
        assert not finite[0, 0] and not finite[1, 1]

    def test_subset_cells_match_full_run(self, trained_mlp, mlp_eval_arrays):
        from repro.core.executor import CampaignExecutor

        task = self._task(trained_mlp, mlp_eval_arrays)
        _, full = CampaignExecutor().run_grids([task])
        _, part = CampaignExecutor().run_grids([task], cells=[[(1, 1)]])
        assert part[0][1, 1] == full[0][1, 1]

    def test_subset_validation(self, trained_mlp, mlp_eval_arrays):
        from repro.core.executor import CampaignExecutor

        task = self._task(trained_mlp, mlp_eval_arrays)
        with pytest.raises(ValueError, match="outside"):
            CampaignExecutor().run_grids([task], cells=[[(2, 0)]])
        with pytest.raises(ValueError, match="duplicate"):
            CampaignExecutor().run_grids([task], cells=[[(0, 0), (0, 0)]])
        with pytest.raises(ValueError, match="parallel"):
            CampaignExecutor().run_grids([task], cells=[])


# ------------------------------------------------------------------ #
# the result-writing bugfix sweep
# ------------------------------------------------------------------ #


def _fake_result(name: str) -> ScenarioResult:
    from repro.core.metrics import ResilienceCurve

    return ScenarioResult(
        spec=CampaignSpec(name=name, rates=(1e-5,), trials=1),
        curve=ResilienceCurve(
            fault_rates=np.array([1e-5]),
            accuracies=np.array([[0.5]]),
            clean_accuracy=0.75,
            label=name,
        ),
    )


class TestResultWritingFixes:
    def test_run_scenarios_rejects_duplicates_in_suite_shape(self):
        # A suite arriving via unpickling bypasses __post_init__'s own
        # duplicate check; run_scenarios must still fail fast.
        spec = CampaignSpec(name="dup", rates=(1e-5,), trials=1)
        suite = object.__new__(ScenarioSuite)
        object.__setattr__(suite, "name", "forged")
        object.__setattr__(suite, "specs", (spec, spec))
        object.__setattr__(suite, "workers", None)
        with pytest.raises(ValueError, match="unique"):
            run_scenarios(suite)

    def test_run_scenarios_rejects_duplicates_in_sequence_shape(self):
        spec = CampaignSpec(name="dup", rates=(1e-5,), trials=1)
        with pytest.raises(ValueError, match="unique"):
            run_scenarios([spec, spec])

    def test_colliding_stems_are_deterministically_disambiguated(self):
        names = ["a/b", "a-b", "clean"]  # both sanitize to "a-b"
        stems = scenario_file_stems(names)
        assert stems == scenario_file_stems(names), "stems must be stable"
        assert len(set(stems)) == 3
        assert stems[2] == "clean"
        assert stems[0] != stems[1]
        assert all(stem.startswith("a-b-") for stem in stems[:2])

    def test_write_results_separates_colliding_scenarios(self, tmp_path):
        results = [_fake_result("a/b"), _fake_result("a-b")]
        summary_path = write_results(results, tmp_path)
        summary = json.loads(summary_path.read_text())
        files = [row["file"] for row in summary["scenarios"]]
        assert len(set(files)) == 2
        for row in summary["scenarios"]:
            payload = json.loads((tmp_path / row["file"]).read_text())
            assert payload["spec"]["name"] == row["name"]

    def test_write_results_is_atomic(self, tmp_path):
        class ExplodingResult(ScenarioResult):
            def to_dict(self):
                raise RuntimeError("killed mid-write")

        good = _fake_result("good")
        write_results([good], tmp_path)
        before = (tmp_path / "summary.json").read_bytes()

        bad = ExplodingResult(
            spec=CampaignSpec(name="bad", rates=(1e-5,), trials=1),
            curve=good.curve,
        )
        with pytest.raises(RuntimeError, match="killed"):
            write_results([good, bad], tmp_path)
        # The old summary survives intact and no temp files leak.
        assert (tmp_path / "summary.json").read_bytes() == before
        assert json.loads((tmp_path / "good.json").read_text())
        assert not list(tmp_path.glob("*.tmp"))


# ------------------------------------------------------------------ #
# quarantined (failed) cells flow through partials and merge
# ------------------------------------------------------------------ #


class TestQuarantineSurfacing:
    """A quarantined cell is a *result* (a ``failed`` outcome), not a
    coverage hole: shard partials record it, ``merge_run`` accepts the
    shard as complete, and the merged JSON surfaces ``failed_cells``."""

    CHAOS = "raise=1,attempts=99,cell=0:1"  # only exact's (0, 1) matches

    def test_run_scenarios_records_failed_cells(
        self, suite, ctx, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", self.CHAOS)
        out = tmp_path / "out"
        results = run_scenarios(
            suite, workers=1, out_dir=out, context=ctx,
            on_cell_error="quarantine",
        )
        by_name = {r.name: r for r in results}
        assert len(by_name["exact"].failed) == 1
        record = by_name["exact"].failed[0]
        assert (record["rate_index"], record["trial"]) == (0, 1)
        assert record["reason"] == "exception"
        assert "injected failure" in record["error"]
        # Adaptive families live at trial 0, so the chaos target misses.
        assert not by_name["adaptive"].failed
        assert not by_name["weighted"].failed
        payload = json.loads((out / "exact.json").read_text())
        assert payload["failed_cells"] == [dict(record)]
        summary = json.loads((out / "summary.json").read_text())
        rows = {row["name"]: row for row in summary["scenarios"]}
        assert rows["exact"]["failed_cells"] == [dict(record)]
        assert "failed_cells" not in rows["adaptive"]

    def test_shard_partials_and_merge_surface_failed_cells(
        self, suite, ctx, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", self.CHAOS)
        run_dir = tmp_path / "run"
        for index in (1, 2):
            run_scenario_shard(
                suite, f"{index}/2", run_dir, context=ctx,
                on_cell_error="quarantine",
            )
        partials = [
            json.loads(path.read_text())
            for path in run_dir.glob("shards/*/partial/*.json")
        ]
        failed = [p for p in partials if p.get("failed")]
        assert len(failed) == 1
        (record,) = failed[0]["failed"]
        assert (record["rate_index"], record["trial"]) == (0, 1)
        assert record["reason"] == "exception"
        # The failed cell is excluded from the partial's computed cells.
        assert "0/1" not in failed[0]["cells"]
        # Merge treats quarantined cells as covered, not missing.
        results = merge_run(run_dir)
        by_name = {r.name: r for r in results}
        assert [
            (r["rate_index"], r["trial"]) for r in by_name["exact"].failed
        ] == [(0, 1)]
        assert not by_name["adaptive"].failed
        payload = json.loads((run_dir / "exact.json").read_text())
        assert len(payload["failed_cells"]) == 1
