# Test-suite entry points (see pytest.ini for the slow-marker tiering).
#
#   make fast   - the ~25s inner loop: unit + property tests only
#   make test   - the full tier-1 gate, including figure benchmarks
#   make bench  - just the figure/infrastructure benchmarks
#
# REPRO_WORKERS=N fans every campaign in the suite across N worker
# processes (0 = one per core); results are bit-identical either way.

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: fast test bench

fast:
	$(PYTEST) -q -m "not slow"

test:
	$(PYTEST) -x -q

bench:
	$(PYTEST) -q benchmarks
