"""Paper Fig. 7: AlexNet with vs without clipped activation functions.

(a) mean accuracy vs fault rate for the clipped and unprotected networks;
(b) accuracy distribution (box plot) per rate for the clipped network;
(c) the same for the unprotected network.

Expected shapes: the clipped curve dominates the unprotected one with the
largest gaps at mid rates; at low rates the clipped network's *worst-case*
accuracy stays near the baseline while the unprotected worst case has
already collapsed (the paper quotes 41.93% / 13.66% worst cases at rates
where the clipped network is still near 72.8%).
"""

from benchmarks.conftest import TRIALS, run_once
from benchmarks.curves import comparison_curves
from repro.analysis.reporting import format_box_table, format_comparison_table


def test_fig7_alexnet_clipped_vs_unprotected(
    benchmark, alexnet_bundle, alexnet_hardened, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    hardened_model, _, _ = alexnet_hardened

    base, clipped = run_once(
        benchmark,
        lambda: comparison_curves(
            "alexnet", alexnet_bundle, hardened_model, images, labels, TRIALS
        ),
    )

    report = [
        format_comparison_table(
            [base, clipped],
            labels=["unprotected", "clipped"],
            title="Fig. 7a — AlexNet mean accuracy vs fault rate",
        ),
        "",
        format_box_table(clipped, title="Fig. 7b — clipped AlexNet accuracy distribution"),
        "",
        format_box_table(base, title="Fig. 7c — unprotected AlexNet accuracy distribution"),
    ]
    record_result("fig7_alexnet", "\n".join(report))

    base_means = base.mean_accuracies()
    clip_means = clipped.mean_accuracies()
    # Fig. 7a shape: clipped dominates at every damaging rate.
    assert (clip_means >= base_means - 0.02).all()
    # Clear separation somewhere in the damaging mid region (the paper's
    # 69.36% vs 51.16% point); individual rates can show noise bumps.
    assert (clip_means - base_means).max() > 0.10
    # AUC improvement is substantial.
    assert clipped.auc() > base.auc() * 1.10
    # Fig. 7b/c shape: worst case of the clipped network at the lowest
    # rates stays near baseline; the unprotected worst case collapses at
    # rates where the clipped one is still healthy.
    assert clipped.worst_case()[0] >= clipped.clean_accuracy - 0.10
    assert (clipped.worst_case() >= base.worst_case() - 0.02).all()
