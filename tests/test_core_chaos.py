"""The deterministic chaos harness: parsing, decisions, disturbances."""

import pytest

from repro.core.chaos import (
    CHAOS_ENV_VAR,
    CHAOS_SPEC_FIELDS,
    ChaosError,
    ChaosPolicy,
)


class TestParse:
    def test_round_trips_every_spec_key(self):
        policy = ChaosPolicy.parse(
            "kill=0.2,raise=0.1,delay=0.3,delay_seconds=1.5,"
            "seed=7,attempts=3,cell=2:5"
        )
        assert policy.kill == 0.2
        assert policy.error == 0.1
        assert policy.delay == 0.3
        assert policy.delay_seconds == 1.5
        assert policy.seed == 7
        assert policy.attempts == 3
        assert policy.cell == (2, 5)

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="known keys"):
            ChaosPolicy.parse("kil=0.2")

    def test_rejects_empty_spec(self):
        with pytest.raises(ValueError, match="empty chaos spec"):
            ChaosPolicy.parse("  ,  ")

    def test_rejects_malformed_cell(self):
        with pytest.raises(ValueError, match="rate:trial"):
            ChaosPolicy.parse("cell=3")

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError, match="probability"):
            ChaosPolicy.parse("kill=1.5")

    def test_rejects_probability_sum_above_one(self):
        with pytest.raises(ValueError, match="must not exceed 1"):
            ChaosPolicy.parse("kill=0.6,raise=0.6")

    def test_every_documented_key_parses(self):
        # CHAOS_SPEC_FIELDS is the docs-enforced registry; every key it
        # advertises must be accepted by the parser.
        samples = {
            "kill": "0.1", "raise": "0.1", "delay": "0.1",
            "delay_seconds": "0.5", "seed": "3", "attempts": "2",
            "cell": "0:1",
        }
        assert set(samples) == set(CHAOS_SPEC_FIELDS)
        for key, value in samples.items():
            ChaosPolicy.parse(f"{key}={value}")

    def test_from_env_unset_means_off(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        assert ChaosPolicy.from_env() is None

    def test_from_env_reads_spec(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "raise=1,seed=9")
        policy = ChaosPolicy.from_env()
        assert policy is not None
        assert policy.error == 1.0
        assert policy.seed == 9


class TestDecide:
    def test_pure_function_of_coordinates(self):
        policy = ChaosPolicy(kill=0.3, error=0.3, delay=0.3, seed=11)
        coords = [
            (t, r, j, a)
            for t in range(2)
            for r in range(3)
            for j in range(4)
            for a in range(1)
        ]
        first = [policy.decide(*c) for c in coords]
        again = [policy.decide(*c) for c in coords]
        assert first == again
        # A same-parameter policy built independently agrees too.
        clone = ChaosPolicy.parse("kill=0.3,raise=0.3,delay=0.3,seed=11")
        assert [clone.decide(*c) for c in coords] == first

    def test_seed_changes_the_pattern(self):
        a = ChaosPolicy(kill=0.5, seed=0)
        b = ChaosPolicy(kill=0.5, seed=1)
        coords = [(0, r, t, 0) for r in range(8) for t in range(8)]
        assert [a.decide(*c) for c in coords] != [b.decide(*c) for c in coords]

    def test_probabilities_partition_the_draw(self):
        policy = ChaosPolicy(kill=1.0, seed=5)
        assert policy.decide(0, 0, 0, 0) == "kill"
        policy = ChaosPolicy(error=1.0, seed=5)
        assert policy.decide(0, 0, 0, 0) == "raise"
        policy = ChaosPolicy(delay=1.0, seed=5)
        assert policy.decide(0, 0, 0, 0) == "delay"
        policy = ChaosPolicy(seed=5)
        assert policy.decide(0, 0, 0, 0) is None

    def test_attempt_gate(self):
        policy = ChaosPolicy(error=1.0, attempts=1)
        assert policy.decide(0, 0, 0, 0) == "raise"
        assert policy.decide(0, 0, 0, 1) is None
        policy = ChaosPolicy(error=1.0, attempts=3)
        assert policy.decide(0, 0, 0, 2) == "raise"
        assert policy.decide(0, 0, 0, 3) is None

    def test_cell_targeting(self):
        policy = ChaosPolicy(error=1.0, cell=(1, 2))
        assert policy.decide(0, 1, 2, 0) == "raise"
        assert policy.decide(5, 1, 2, 0) == "raise"  # any task
        assert policy.decide(0, 1, 1, 0) is None
        assert policy.decide(0, 0, 2, 0) is None


class TestDisturb:
    def test_raise_action_raises_chaos_error(self):
        policy = ChaosPolicy(error=1.0)
        with pytest.raises(ChaosError, match="cell 0/1 attempt 0"):
            policy.disturb(0, [(0, 1)], [0])

    def test_attempted_cells_pass_clean(self):
        policy = ChaosPolicy(error=1.0, attempts=1)
        policy.disturb(0, [(0, 1)], [1])  # retry attempt: no disturbance

    def test_kill_is_skipped_in_process(self):
        # A kill decision must not SIGKILL the campaign process itself.
        policy = ChaosPolicy(kill=1.0)
        policy.disturb(0, [(0, 0)], [0], in_process=True)

    def test_delay_sleeps_then_keeps_scanning(self, monkeypatch):
        import repro.core.chaos as chaos_module

        slept = []
        monkeypatch.setattr(chaos_module.time, "sleep", slept.append)
        policy = ChaosPolicy(delay=1.0, delay_seconds=0.25)
        policy.disturb(0, [(0, 0), (0, 1)], [0, 0])
        assert slept == [0.25, 0.25]
