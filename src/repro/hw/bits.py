"""IEEE-754 float32 bit-level utilities.

The paper's fault model flips bits of the float32 words that store DNN
weights; the key phenomenon (Section III) is that a 0->1 flip in a high
exponent bit turns a small weight into an enormous one.  This module gives
the rest of the library an explicit, testable view of that word layout:

  bit 31        sign
  bits 30..23   exponent (biased by 127)
  bits 22..0    mantissa
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "SIGN_BIT",
    "EXPONENT_BITS",
    "MANTISSA_BITS",
    "float_to_bits",
    "bits_to_float",
    "flip_bits_in_words",
    "set_bits_in_words",
    "bit_field",
    "decompose",
    "flip_scalar_bit",
]

WORD_BITS = 32
SIGN_BIT = 31
EXPONENT_BITS = tuple(range(23, 31))
MANTISSA_BITS = tuple(range(0, 23))


def float_to_bits(values: np.ndarray) -> np.ndarray:
    """Reinterpret a float32 array as uint32 words (copy)."""
    values = np.ascontiguousarray(values, dtype=np.float32)
    return values.view(np.uint32).copy()


def bits_to_float(words: np.ndarray) -> np.ndarray:
    """Reinterpret a uint32 array as float32 values (copy)."""
    words = np.ascontiguousarray(words, dtype=np.uint32)
    return words.view(np.float32).copy()


def bit_field(position: int) -> str:
    """Classify a bit position: 'sign', 'exponent' or 'mantissa'."""
    if not 0 <= position < WORD_BITS:
        raise ValueError(f"bit position must lie in [0, {WORD_BITS}), got {position}")
    if position == SIGN_BIT:
        return "sign"
    if position in EXPONENT_BITS:
        return "exponent"
    return "mantissa"


def decompose(value: float) -> tuple[int, int, int]:
    """Split one float32 into (sign, biased_exponent, mantissa) integers."""
    word = int(float_to_bits(np.asarray([value], dtype=np.float32))[0])
    sign = (word >> SIGN_BIT) & 0x1
    exponent = (word >> 23) & 0xFF
    mantissa = word & 0x7FFFFF
    return sign, exponent, mantissa


def flip_scalar_bit(value: float, position: int) -> np.float32:
    """Flip one bit of one float32 value (reference implementation).

    Returns an ``np.float32`` scalar rather than a python float: a flip
    landing on a signaling-NaN pattern must keep its payload bit-exact,
    and the float32 -> float64 -> float32 round-trip of ``float()``
    would quiet the NaN (x86 cvtss2sd), breaking flip-twice-is-identity.
    """
    if not 0 <= position < WORD_BITS:
        raise ValueError(f"bit position must lie in [0, {WORD_BITS}), got {position}")
    word = float_to_bits(np.asarray([value], dtype=np.float32))
    word[0] ^= np.uint32(1 << position)
    return bits_to_float(word)[0]


def _masks_by_word(
    word_indices: np.ndarray, bit_positions: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Combine per-bit operations into one uint32 mask per affected word.

    Returns ``(unique_word_indices, masks)`` where ``masks[i]`` has a 1 at
    every targeted bit position of word ``unique_word_indices[i]``.
    Callers guarantee bit targets are unique, so OR-combining is exact.
    """
    word_indices = np.asarray(word_indices, dtype=np.int64)
    bit_positions = np.asarray(bit_positions, dtype=np.int64)
    if word_indices.shape != bit_positions.shape:
        raise ValueError("word_indices and bit_positions must have the same shape")
    if word_indices.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint32)
    if bit_positions.min() < 0 or bit_positions.max() >= WORD_BITS:
        raise ValueError("bit positions must lie in [0, 32)")

    order = np.argsort(word_indices, kind="stable")
    sorted_words = word_indices[order]
    sorted_bits = bit_positions[order]
    unique_words, starts = np.unique(sorted_words, return_index=True)
    bit_masks = (np.uint32(1) << sorted_bits.astype(np.uint32)).astype(np.uint32)
    masks = np.bitwise_or.reduceat(bit_masks, starts).astype(np.uint32)
    return unique_words, masks


def flip_bits_in_words(
    flat_values: np.ndarray,
    word_indices: np.ndarray,
    bit_positions: np.ndarray,
) -> np.ndarray:
    """XOR-flip the given (word, bit) targets of a flat float32 array in place.

    Returns the unique affected word indices (useful for undo bookkeeping).
    The same (word, bit) pair must not appear twice.
    """
    if flat_values.ndim != 1 or flat_values.dtype != np.float32:
        raise ValueError("flat_values must be a 1-D float32 array")
    unique_words, masks = _masks_by_word(word_indices, bit_positions)
    if unique_words.size == 0:
        return unique_words
    if unique_words.min() < 0 or unique_words.max() >= flat_values.size:
        raise IndexError("word index out of range")
    view = flat_values.view(np.uint32)
    view[unique_words] ^= masks
    return unique_words


def set_bits_in_words(
    flat_values: np.ndarray,
    word_indices: np.ndarray,
    bit_positions: np.ndarray,
    value: int,
) -> np.ndarray:
    """Force the given bits to 0 or 1 (stuck-at faults) in place.

    Returns the unique affected word indices.
    """
    if value not in (0, 1):
        raise ValueError(f"stuck-at value must be 0 or 1, got {value}")
    if flat_values.ndim != 1 or flat_values.dtype != np.float32:
        raise ValueError("flat_values must be a 1-D float32 array")
    unique_words, masks = _masks_by_word(word_indices, bit_positions)
    if unique_words.size == 0:
        return unique_words
    if unique_words.min() < 0 or unique_words.max() >= flat_values.size:
        raise IndexError("word index out of range")
    view = flat_values.view(np.uint32)
    if value == 1:
        view[unique_words] |= masks
    else:
        view[unique_words] &= ~masks
    return unique_words
