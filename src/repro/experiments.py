"""Canonical experiment setup shared by the benchmark harness and examples.

This module pins the scaled-down stand-ins for the paper's two evaluation
networks and provides cached accessors so that the expensive artifacts —
trained weights and fine-tuned clipping thresholds — are produced once and
reused by every figure's benchmark.

Scaling notes (see DESIGN.md for the full substitution table):

* The paper's AlexNet/VGG-16 on CIFAR-10 reach 72.8% / 82.8% clean
  accuracy.  Our width-scaled models on the synthetic dataset are tuned
  (via the dataset noise level) to land nearby: ~76% / ~87%.
* Our models hold ~10-60x fewer weight bits than the originals, so the
  accuracy cliff sits at a per-bit fault rate roughly that factor higher.
  The canonical grid ``paper_fault_rates()`` spans 1e-7..1e-4 instead of
  the paper's 1e-8..1e-5; EXPERIMENTS.md reports both.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Any


from repro import nn
from repro.core.campaign import default_fault_rates
from repro.core.pipeline import FTClipActConfig, HardenedModel, harden_model
from repro.core.swap import swap_activations
from repro.models.registry import build_model
from repro.models.zoo import PretrainedBundle, ZooConfig, get_pretrained
from repro.utils.cache import ArtifactCache

__all__ = [
    "PAPER_ALEXNET",
    "PAPER_VGG16",
    "PAPER_LENET",
    "EXPERIMENT_CONFIGS",
    "CAMPAIGN_VARIANTS",
    "paper_fault_rates",
    "campaign_workers",
    "default_harden_config",
    "experiment_bundle",
    "clone_model",
    "hardened_clone",
    "prepare_campaign_variant",
]

# The two evaluation networks of paper Section V, width-scaled to a single
# CPU core.  Noise levels are chosen so clean accuracy lands near the
# paper's 72.8% (AlexNet) and 82.8% (VGG-16).
PAPER_ALEXNET = ZooConfig(
    model="alexnet",
    width_mult=0.25,
    n_train=1500,
    n_val=300,
    n_test=500,
    epochs=6,
    seed=2020,
    noise_std=0.55,
)

PAPER_VGG16 = ZooConfig(
    model="vgg16",
    width_mult=0.125,
    n_train=2000,
    n_val=300,
    n_test=500,
    epochs=10,
    lr=2e-3,
    seed=2020,
    noise_std=0.50,
)

# A fast stand-in used by the quickstart example.
PAPER_LENET = ZooConfig(
    model="lenet5",
    width_mult=1.0,
    n_train=1200,
    n_val=300,
    n_test=400,
    epochs=8,
    seed=2020,
    noise_std=0.40,
)

EXPERIMENT_CONFIGS: dict[str, ZooConfig] = {
    "alexnet": PAPER_ALEXNET,
    "vgg16": PAPER_VGG16,
    "lenet5": PAPER_LENET,
}


def paper_fault_rates(points_per_decade: int = 2) -> tuple[float, ...]:
    """The canonical fault-rate grid (paper's 1e-8..1e-5, rescaled)."""
    return tuple(default_fault_rates(1e-7, 1e-4, points_per_decade))


def campaign_workers(default: int = 1) -> int:
    """The worker count campaigns should use, from ``REPRO_WORKERS``.

    Campaigns are bit-deterministic at any worker count (see
    :mod:`repro.core.executor`), so parallelism is an environment choice,
    not an experiment parameter: ``REPRO_WORKERS=0`` uses every core,
    ``REPRO_WORKERS=N`` uses N processes, unset falls back to ``default``.
    """
    value = os.environ.get("REPRO_WORKERS", "").strip()
    if not value:
        return default
    try:
        workers = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be an integer (0 = cpu_count), got {value!r}"
        ) from None
    from repro.core.executor import resolve_workers

    resolve_workers(workers)  # shared validation; 0 resolves at run time
    return workers


def default_harden_config(seed: int = 2020, workers: "int | None" = None) -> FTClipActConfig:
    """The FT-ClipAct pipeline configuration used by all benchmarks.

    ``workers`` defaults to :func:`campaign_workers` (the ``REPRO_WORKERS``
    environment override); hardening results are identical either way.
    """
    from repro.core.finetune import FineTuneConfig

    return FTClipActConfig(
        profile_images=200,
        eval_images=128,
        trials=3,
        fault_rates=tuple(default_fault_rates(1e-6, 1e-4, 2)),
        seed=seed,
        tune_scope="layer",
        finetune=FineTuneConfig(max_iterations=4, min_iterations=2, tolerance=0.005),
        workers=campaign_workers() if workers is None else workers,
    )


def experiment_bundle(
    name: str,
    cache: "ArtifactCache | None" = None,
    **overrides: Any,
) -> PretrainedBundle:
    """The cached pre-trained bundle for one of the canonical networks."""
    try:
        config = EXPERIMENT_CONFIGS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment network {name!r}; available: "
            f"{sorted(EXPERIMENT_CONFIGS)}"
        ) from None
    if overrides:
        config = replace(config, **overrides)
    return get_pretrained(config, cache=cache)


def clone_model(bundle: PretrainedBundle) -> nn.Module:
    """A fresh model instance carrying the bundle's trained weights.

    Experiments mutate models (fault injection restores itself, but
    activation swapping does not), so each experiment takes its own clone.
    """
    config = bundle.config
    model = build_model(
        config.model,
        num_classes=config.num_classes,
        width_mult=config.width_mult,
        seed=config.seed,
    )
    model.load_state_dict(bundle.model.state_dict())
    model.eval()
    return model


# Canonical campaign variants (CLI `campaign --variant`, benchmark sweeps).
# "int8" runs through the quantized campaign; every other variant is a
# weight-fault campaign differing in model preparation and/or sampler.
CAMPAIGN_VARIANTS = (
    "unprotected", "ftclipact", "relu6", "ecc", "tmr", "dmr", "int8",
)


def prepare_campaign_variant(
    bundle: PretrainedBundle,
    variant: str,
    workers: int = 1,
    harden_config: "FTClipActConfig | None" = None,
    cache: "ArtifactCache | None" = None,
) -> "tuple[nn.Module, Any]":
    """The ``(model, sampler)`` for one canonical campaign variant.

    Model-level mitigations (ftclipact, relu6) return a prepared clone
    with ``sampler=None``; redundancy schemes (ecc/tmr/dmr) return an
    unmodified clone plus their protection sampler.  ``workers`` threads
    into the hardening step for ``ftclipact`` (on a cold cache Algorithm
    1's fine-tuning campaigns dominate) — hardening results are
    identical at any worker count.  ``harden_config`` / ``cache``
    override the FT-ClipAct pipeline configuration and artifact cache
    for that step (the scenario compiler's smoke mode shrinks both);
    both are ignored by every other variant.
    """
    from repro.core.baselines import (
        apply_relu6,
        dmr_sampler,
        ecc_sampler,
        tmr_sampler,
    )

    if variant not in CAMPAIGN_VARIANTS:
        raise ValueError(
            f"unknown campaign variant {variant!r}; available: "
            f"{list(CAMPAIGN_VARIANTS)}"
        )
    sampler = None
    if variant == "ftclipact":
        config = (
            harden_config
            if harden_config is not None
            else default_harden_config(workers=workers)
        )
        model, _, _ = hardened_clone(bundle, config, cache=cache)
    else:
        model = clone_model(bundle)
        if variant == "relu6":
            apply_relu6(model)
        elif variant == "ecc":
            sampler = ecc_sampler()
        elif variant == "tmr":
            sampler = tmr_sampler()
        elif variant == "dmr":
            sampler = dmr_sampler()
    return model, sampler


def hardened_clone(
    bundle: PretrainedBundle,
    config: "FTClipActConfig | None" = None,
    cache: "ArtifactCache | None" = None,
) -> tuple[nn.Module, dict[str, float], dict[str, float]]:
    """A clipped clone of the bundle's model with fine-tuned thresholds.

    Returns ``(model, thresholds, act_max)``.  The profiled ``ACT_max``
    values and tuned thresholds are cached on disk (keyed by the zoo and
    pipeline configurations), so only the first call pays for Step 3.
    """
    config = config if config is not None else default_harden_config()
    cache = cache if cache is not None else ArtifactCache()
    key_config = {
        "zoo": bundle.config.to_dict(),
        "profile_images": config.profile_images,
        "eval_images": config.eval_images,
        "trials": config.trials,
        "fault_rates": list(config.fault_rates),
        "seed": config.seed,
        "tune_scope": config.tune_scope,
        "variant": config.variant,
        "fine_tune": config.fine_tune,
        "finetune": [
            config.finetune.max_iterations,
            config.finetune.min_iterations,
            config.finetune.tolerance,
        ],
    }
    path = cache.path_for(f"thresholds-{bundle.config.model}", key_config, suffix=".json")

    if path.exists():
        payload = json.loads(path.read_text())
        model = clone_model(bundle)
        swap_activations(model, payload["thresholds"], variant=config.variant)
        return model, dict(payload["thresholds"]), dict(payload["act_max"])

    model = clone_model(bundle)
    report: HardenedModel = harden_model(model, bundle.val_set, config)
    cache.write_json(
        f"thresholds-{bundle.config.model}",
        key_config,
        {"thresholds": report.thresholds, "act_max": report.act_max},
    )
    return model, report.thresholds, report.act_max
