"""Fault models: distributions over weight-memory bit corruptions.

A fault model is a sampler: given a weight memory and a random generator
it produces a :class:`FaultSet` — concrete bit targets plus the operation
applied to each (flip, stuck-at-0, stuck-at-1).  The paper's experiments
use independent random bit flips at a per-bit fault rate (transient
upsets / the aggregate effect Fig. 1a sketches); stuck-at and burst
models cover the permanent/manufacturing-defect cases its introduction
discusses, and :class:`TargetedBitFlip` / :class:`FixedFaultMap` support
the bit-position sensitivity study and defect-map scenarios.

Every model is *memory-polymorphic*: it reads only the addressed space's
``total_bits`` / ``total_words`` / ``bits_per_word`` attributes, so the
same model samples the float32 bit space of
:class:`~repro.hw.memory.WeightMemory` (32 bits per word) or the int8
code space of :class:`~repro.hw.quant.QuantizedWeightMemory` (8 bits per
word).  That polymorphism is what lets a declarative campaign spec
(:mod:`repro.scenarios`) request, say, stuck-at-0 faults against either
storage model with one ``fault_model:`` block.

Models are deliberately *cheap, picklable value objects*: a parallel
campaign ships its sampler to every worker process, and the spec
compiler rebuilds one per ``(rate, memory)`` pair — construction must
not touch the memory it will later sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.bits import WORD_BITS
from repro.hw.memory import WeightMemory
from repro.utils.validation import check_probability

__all__ = [
    "OP_FLIP",
    "OP_STUCK0",
    "OP_STUCK1",
    "FaultSet",
    "FaultModel",
    "RandomBitFlip",
    "StuckAt",
    "BurstFault",
    "FixedFaultMap",
    "TargetedBitFlip",
]

OP_FLIP = 0
OP_STUCK0 = 1
OP_STUCK1 = 2
_VALID_OPS = (OP_FLIP, OP_STUCK0, OP_STUCK1)


@dataclass(frozen=True)
class FaultSet:
    """Concrete fault targets: parallel arrays of bit indices and operations.

    The exchange format between sampling and injection: a fault model
    *draws* a ``FaultSet``; :class:`~repro.hw.injector.FaultInjector`
    (float32 space) or :meth:`~repro.hw.quant.QuantizedWeightMemory.apply`
    (int8 code space) *applies* it.  ``bit_indices`` are global indices
    into the addressed memory's bit space and must be unique — one
    physical cell cannot simultaneously be stuck at two values — which
    also makes every per-word combination of operations order-free.
    Protection filters (ECC/TMR/DMR) consume and emit this type too:
    they sample raw faults over their enlarged bit space and return the
    surviving subset via :meth:`subset`.
    """

    bit_indices: np.ndarray  # int64 global bit indices, unique
    operations: np.ndarray  # uint8 operation codes, same length

    def __post_init__(self) -> None:
        bits = np.asarray(self.bit_indices, dtype=np.int64)
        ops = np.asarray(self.operations, dtype=np.uint8)
        if bits.shape != ops.shape or bits.ndim != 1:
            raise ValueError("bit_indices and operations must be matching 1-D arrays")
        if bits.size and np.unique(bits).size != bits.size:
            raise ValueError("bit indices must be unique within a FaultSet")
        if ops.size and not np.isin(ops, _VALID_OPS).all():
            raise ValueError(f"operations must be among {_VALID_OPS}")
        object.__setattr__(self, "bit_indices", bits)
        object.__setattr__(self, "operations", ops)

    def __len__(self) -> int:
        return int(self.bit_indices.size)

    @classmethod
    def empty(cls) -> "FaultSet":
        """A fault set with no faults."""
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8))

    @classmethod
    def flips(cls, bit_indices: np.ndarray) -> "FaultSet":
        """A fault set of pure bit flips."""
        bits = np.asarray(bit_indices, dtype=np.int64)
        return cls(bits, np.full(bits.shape, OP_FLIP, dtype=np.uint8))

    def subset(self, mask: np.ndarray) -> "FaultSet":
        """A fault set restricted to the boolean ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        return FaultSet(self.bit_indices[mask], self.operations[mask])


class FaultModel:
    """Base class for fault samplers.

    Subclasses hold the model's *parameters* (rates, counts, positions)
    and implement :meth:`sample`, which draws concrete bit targets for
    one injection trial.  ``memory`` may be any bit-addressable space
    exposing ``total_bits``, ``total_words`` and ``bits_per_word`` —
    see the module docstring for the polymorphism contract.  Sampling
    must be a pure function of ``(self, memory, rng)``: campaign
    determinism (bit-identical parallel runs) relies on the fault set
    depending only on the per-cell generator, never on ambient state.
    """

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        """Draw a concrete :class:`FaultSet` for ``memory``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable description for reports."""
        return type(self).__name__


def _sample_unique_bits(
    total_bits: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` distinct bit indices uniform over ``[0, total_bits)``.

    The shared placement primitive behind every rate-driven model.
    Returns a *sorted* int64 array (sorted order keeps downstream
    region lookups cache-friendly and makes results reproducible
    independent of set-iteration order).  Two regimes, both drawing
    from the same ``rng`` so the choice of algorithm is part of the
    determinism contract:

    * sparse (``count < total_bits // 64``): rejection sampling —
      repeatedly draw batches with replacement and keep new indices
      until ``count`` distinct ones accumulate.  O(count) instead of
      ``rng.choice``'s O(total_bits) permutation, which dominates at
      the paper's 1e-7..1e-4 rates over multi-megabit memories;
    * dense: fall back to ``rng.choice(..., replace=False)``, whose
      full permutation cost is acceptable when the draw is a sizable
      fraction of the space anyway.
    """
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if count >= total_bits:
        return np.arange(total_bits, dtype=np.int64)
    if count < total_bits // 64:
        chosen: set[int] = set()
        while len(chosen) < count:
            needed = count - len(chosen)
            draws = rng.integers(0, total_bits, size=max(needed * 2, 16))
            for draw in draws:
                chosen.add(int(draw))
                if len(chosen) == count:
                    break
        return np.sort(np.fromiter(chosen, dtype=np.int64, count=count))
    return np.sort(rng.choice(total_bits, size=count, replace=False).astype(np.int64))


class RandomBitFlip(FaultModel):
    """Independent bit flips at a per-bit ``fault_rate`` (the paper's model).

    The number of faulty bits is Binomial(total_bits, fault_rate); the
    faulty positions are uniform without replacement.
    """

    def __init__(self, fault_rate: float):
        check_probability("fault_rate", fault_rate)
        self.fault_rate = float(fault_rate)

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        count = int(rng.binomial(memory.total_bits, self.fault_rate))
        bits = _sample_unique_bits(memory.total_bits, count, rng)
        return FaultSet.flips(bits)

    def describe(self) -> str:
        return f"RandomBitFlip(rate={self.fault_rate:g})"


class StuckAt(FaultModel):
    """Permanent stuck-at faults at a per-bit ``fault_rate``.

    Models manufacturing defects and end-of-life cell failures: the
    number of defective cells is Binomial(``total_bits``,
    ``fault_rate``), their positions uniform without replacement, and
    each is stuck at ``value`` (0 or 1) — the injector forces the bit
    to that value rather than toggling it, so a stuck bit that already
    holds the stuck value is benign, matching real silicon.  Note the
    asymmetry this creates versus :class:`RandomBitFlip`: at equal
    rates roughly half the stuck-at faults are masked by agreeing
    storage, and stuck-at-1 in a float32 exponent field is far more
    damaging than stuck-at-0 (which can only shrink magnitudes).
    Positions are re-drawn per trial; pin a persistent defect map
    across trials with :class:`FixedFaultMap` instead.
    """

    def __init__(self, fault_rate: float, value: int = 1):
        check_probability("fault_rate", fault_rate)
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0 or 1, got {value}")
        self.fault_rate = float(fault_rate)
        self.value = int(value)

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        count = int(rng.binomial(memory.total_bits, self.fault_rate))
        bits = _sample_unique_bits(memory.total_bits, count, rng)
        op = OP_STUCK1 if self.value == 1 else OP_STUCK0
        return FaultSet(bits, np.full(bits.shape, op, dtype=np.uint8))

    def describe(self) -> str:
        return f"StuckAt{self.value}(rate={self.fault_rate:g})"


class BurstFault(FaultModel):
    """``n_bursts`` bursts of ``burst_length`` consecutive flipped bits.

    Models multi-bit upsets and row/column failures where physically
    adjacent cells fail together (a single energetic particle or a
    shorted wordline takes out a run of neighbouring bits).  Burst
    *start* positions are uniform over the memory; bursts may overlap,
    in which case the overlapping bits are flipped once (the resulting
    :class:`FaultSet` de-duplicates), so the realized fault count can
    be slightly below ``n_bursts * burst_length``.  Compared with
    :class:`RandomBitFlip` at the same total bit budget, bursts
    concentrate damage: a burst crossing a float32 word boundary
    corrupts sign, exponent and mantissa of adjacent weights at once,
    while sparse flips spread thinly over many words.
    """

    def __init__(self, n_bursts: int, burst_length: int = 8):
        if n_bursts < 0:
            raise ValueError(f"n_bursts must be non-negative, got {n_bursts}")
        if burst_length <= 0:
            raise ValueError(f"burst_length must be positive, got {burst_length}")
        self.n_bursts = int(n_bursts)
        self.burst_length = int(burst_length)

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        if self.n_bursts == 0:
            return FaultSet.empty()
        max_start = max(memory.total_bits - self.burst_length, 1)
        starts = rng.integers(0, max_start, size=self.n_bursts)
        bits = (starts[:, None] + np.arange(self.burst_length)[None, :]).reshape(-1)
        bits = np.unique(bits[bits < memory.total_bits]).astype(np.int64)
        return FaultSet.flips(bits)

    def describe(self) -> str:
        return f"BurstFault(n={self.n_bursts}, length={self.burst_length})"


@dataclass(frozen=True)
class FixedFaultMap(FaultModel):
    """A deterministic, pre-drawn fault set (manufacturing defect map).

    Sampling ignores the generator and always returns the same faults,
    so the same physical defects persist across every inference run —
    the permanent-fault scenario of paper Fig. 1a, and the natural way
    to replay a defect map measured on real silicon.  In a campaign
    this collapses the trial axis (every trial injects identical
    faults; rates are ignored too), which is itself useful: the
    trial-to-trial accuracy spread then isolates *evaluation* noise
    from *placement* noise.  The map is validated against the target
    memory at sample time — a map drawn for one model cannot silently
    alias into a smaller memory's bit space.
    """

    fault_set: FaultSet = field(default_factory=FaultSet.empty)

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        if (
            len(self.fault_set)
            and self.fault_set.bit_indices.max() >= memory.total_bits
        ):
            raise IndexError("fixed fault map exceeds this memory's size")
        return self.fault_set

    def describe(self) -> str:
        return f"FixedFaultMap(n={len(self.fault_set)})"


class TargetedBitFlip(FaultModel):
    """Flip a fixed *bit position* of ``n_faults`` randomly chosen words.

    The adversarial/worst-case model behind the bit-position
    sensitivity study: e.g. flip only bit 30 (the float32 exponent MSB)
    of 10 random weights and observe the damage, versus the same count
    of mantissa flips doing essentially nothing.  Word choice is
    uniform without replacement (at most one targeted flip per word);
    the position is interpreted against the sampled memory's own word
    width (``memory.bits_per_word``: 32 for float32 weight memories, 8
    for the int8 code space), so "sign bit" means bit 31 or bit 7
    depending on the storage model — positions at or beyond the
    memory's word width raise at sample time.
    """

    def __init__(self, bit_position: int, n_faults: int):
        if not 0 <= bit_position < WORD_BITS:
            raise ValueError(
                f"bit_position must lie in [0, {WORD_BITS}), got {bit_position}"
            )
        if n_faults < 0:
            raise ValueError(f"n_faults must be non-negative, got {n_faults}")
        self.bit_position = int(bit_position)
        self.n_faults = int(n_faults)

    def sample(self, memory: WeightMemory, rng: np.random.Generator) -> FaultSet:
        bits_per_word = int(getattr(memory, "bits_per_word", WORD_BITS))
        if self.bit_position >= bits_per_word:
            raise ValueError(
                f"bit_position {self.bit_position} does not exist in a "
                f"{bits_per_word}-bit word memory"
            )
        if self.n_faults == 0:
            return FaultSet.empty()
        count = min(self.n_faults, memory.total_words)
        words = _sample_unique_bits(memory.total_words, count, rng)
        bits = words * bits_per_word + self.bit_position
        return FaultSet.flips(bits)

    def describe(self) -> str:
        return f"TargetedBitFlip(bit={self.bit_position}, n={self.n_faults})"
