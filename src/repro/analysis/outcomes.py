"""Fault-outcome taxonomy: masked / benign / SDC / DUE classification.

Accuracy alone hides *how* a network fails.  The dependability literature
(e.g. Ares) classifies each faulty inference against the fault-free run:

* **masked** — the prediction is identical to the clean prediction;
* **benign** — the prediction changed but is still correct;
* **sdc** (silent data corruption) — the prediction changed from correct
  to wrong: the dangerous case for safety-critical deployment;
* **due** (detected uncorrectable error) — the output logits contain
  non-finite values, i.e. the corruption is at least *detectable* by a
  cheap runtime check.

A key appeal of clipped activations that plain accuracy understates: they
convert would-be SDCs into masked outcomes rather than merely shifting
the accuracy curve.

The analysis is a vector-valued cell task on the shared executor
substrate: ``workers=`` fans it out with weights shipped zero-copy
through the shared-memory tensor plane and the clean reference pass
published once per host (``docs/MEMORY_MODEL.md``), bit-identical to
the serial loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import nn
from repro.core.campaign import CampaignConfig, FaultSampler, random_bitflip_sampler
from repro.core.executor import CampaignExecutor, InjectionCellRunner, payload_state
from repro.core.metrics import predict_labels
from repro.hw.memory import WeightMemory

__all__ = [
    "OutcomeCounts",
    "OutcomeBreakdown",
    "OutcomeCellTask",
    "run_outcome_analysis",
]


@dataclass(frozen=True)
class OutcomeCounts:
    """Counts of inference outcomes at one fault rate (summed over trials)."""

    masked: int
    benign: int
    sdc: int
    due: int

    @property
    def total(self) -> int:
        """Total classified inferences."""
        return self.masked + self.benign + self.sdc + self.due

    def rate(self, outcome: str) -> float:
        """Fraction of inferences with the given outcome."""
        value = getattr(self, outcome)
        return value / self.total if self.total else 0.0


@dataclass
class OutcomeBreakdown:
    """Per-fault-rate outcome statistics of one campaign."""

    fault_rates: np.ndarray
    counts: list[OutcomeCounts]
    clean_accuracy: float
    label: str = ""

    def sdc_rates(self) -> np.ndarray:
        """Silent-data-corruption fraction per fault rate."""
        return np.asarray([c.rate("sdc") for c in self.counts])

    def masked_rates(self) -> np.ndarray:
        """Masked fraction per fault rate."""
        return np.asarray([c.rate("masked") for c in self.counts])

    def due_rates(self) -> np.ndarray:
        """Detected (non-finite output) fraction per fault rate."""
        return np.asarray([c.rate("due") for c in self.counts])

    def summary_rows(self) -> list[list[object]]:
        """Table rows: rate, masked, benign, sdc, due fractions."""
        rows: list[list[object]] = []
        for rate, count in zip(self.fault_rates, self.counts):
            rows.append(
                [
                    float(rate),
                    count.rate("masked"),
                    count.rate("benign"),
                    count.rate("sdc"),
                    count.rate("due"),
                ]
            )
        return rows


def _classify_trial(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    clean_predictions: np.ndarray,
    batch_size: int,
    forward=None,
) -> tuple[int, int, int, int]:
    """Classify every image's outcome for the currently-injected faults.

    ``forward`` optionally replaces the per-batch full forward (see
    :data:`repro.core.metrics.BatchForward`); the suffix engine's partial
    re-execution is bit-identical, so the taxonomy — including the
    non-finite-logit DUE check — is unchanged.
    """
    masked = benign = sdc = due = 0
    was_training = model.training
    model.eval()
    try:
        with np.errstate(over="ignore", invalid="ignore"):
            for start in range(0, images.shape[0], batch_size):
                batch = images[start : start + batch_size]
                batch_labels = labels[start : start + batch_size]
                batch_clean = clean_predictions[start : start + batch_size]
                logits = model(batch) if forward is None else forward(batch, start)
                finite = np.isfinite(logits).all(axis=1)
                predictions = np.argmax(logits, axis=1)

                due += int((~finite).sum())
                same = finite & (predictions == batch_clean)
                masked += int(same.sum())
                changed = finite & ~same
                benign += int((changed & (predictions == batch_labels)).sum())
                sdc += int(
                    (changed & (batch_clean == batch_labels) & (predictions != batch_labels)).sum()
                )
                # Changed wrong->different-wrong is neither benign nor SDC;
                # count it as masked-equivalent harm-neutral "benign".
                benign += int(
                    (changed & (batch_clean != batch_labels) & (predictions != batch_labels)).sum()
                )
    finally:
        model.train(was_training)
    return masked, benign, sdc, due


class OutcomeCellTask:
    """Cell protocol for the outcome taxonomy (see :mod:`repro.core.executor`).

    Each cell is vector-valued — the ``(masked, benign, sdc, due)``
    counts of one trial — and :meth:`build_result` sums them per rate.
    The clean predictions the taxonomy compares against are computed
    once parent-side and ship inside the task payload.
    """

    kind = "outcome"
    cell_width = 4

    def __init__(
        self,
        model: nn.Module,
        memory: WeightMemory,
        images: np.ndarray,
        labels: np.ndarray,
        config: "CampaignConfig | None" = None,
        sampler: "FaultSampler | None" = None,
        label: str = "",
        suffix: bool = True,
        batch_k: int = 0,
    ):
        self.model = model
        self.memory = memory
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.config = config if config is not None else CampaignConfig()
        self.sampler = sampler if sampler is not None else random_bitflip_sampler()
        self.label = label
        self.suffix = bool(suffix)
        # Variant-batching width (repro.core.batched); 0/1 = per-cell.
        self.batch_k = int(batch_k)
        self.clean_predictions = predict_labels(
            model, self.images, self.config.batch_size
        )

    def __getstate__(self) -> dict:
        return payload_state(self)

    def clean_accuracy(self) -> float:
        return float((self.clean_predictions == self.labels).mean())

    def measure(self, forward=None) -> tuple[float, ...]:
        """Outcome counts of the (currently fault-injected) model."""
        masked, benign, sdc, due = _classify_trial(
            self.model, self.images, self.labels,
            self.clean_predictions, self.config.batch_size,
            forward=forward,
        )
        return (float(masked), float(benign), float(sdc), float(due))

    def make_runner(self) -> InjectionCellRunner:
        return InjectionCellRunner(self)

    def build_result(self, rates: np.ndarray, values: np.ndarray) -> OutcomeBreakdown:
        counts = []
        for rate_index in range(rates.size):
            sums = values[rate_index].sum(axis=0)  # ints, exact in float64
            counts.append(
                OutcomeCounts(
                    masked=int(sums[0]),
                    benign=int(sums[1]),
                    sdc=int(sums[2]),
                    due=int(sums[3]),
                )
            )
        return OutcomeBreakdown(
            fault_rates=rates,
            counts=counts,
            clean_accuracy=self.clean_accuracy(),
            label=self.label,
        )


def run_outcome_analysis(
    model: nn.Module,
    memory: WeightMemory,
    images: np.ndarray,
    labels: np.ndarray,
    config: "CampaignConfig | None" = None,
    sampler: "FaultSampler | None" = None,
    label: str = "",
    workers: int = 1,
    progress: "Callable | None" = None,
    checkpoint: "str | None" = None,
    suffix: bool = True,
) -> OutcomeBreakdown:
    """Sweep fault rates and classify every inference's outcome.

    Uses the same ``rate/<i>/trial/<j>`` seed derivation as
    :class:`~repro.core.campaign.FaultInjectionCampaign`, so outcome
    breakdowns pair exactly with accuracy curves from the same config.
    ``workers`` fans the grid across a process pool (``0`` = one per CPU
    core) with counts bit-identical to the serial sweep; ``suffix``
    toggles suffix re-execution on the serial path (also bit-identical;
    workers always run with the engine on — ``REPRO_NO_SUFFIX=1``
    disables it everywhere).
    """
    task = OutcomeCellTask(
        model, memory, images, labels, config=config, sampler=sampler, label=label,
        suffix=suffix,
    )
    executor = CampaignExecutor(
        workers=workers, progress=progress, checkpoint=checkpoint
    )
    return executor.run_tasks([task])[0]
