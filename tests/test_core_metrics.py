"""Tests for accuracy, the AUC metric and ResilienceCurve."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.metrics import (
    BoxStats,
    ResilienceCurve,
    auc_resilience,
    evaluate_accuracy_arrays,
    predict_labels,
)
from repro.models import LeNet5


class TestAccuracy:
    def test_matches_manual(self, trained_lenet, eval_arrays):
        images, labels = eval_arrays
        accuracy = evaluate_accuracy_arrays(trained_lenet, images, labels)
        predictions = predict_labels(trained_lenet, images)
        assert accuracy == pytest.approx(float((predictions == labels).mean()))

    def test_batching_invariant(self, trained_lenet, eval_arrays):
        images, labels = eval_arrays
        a = evaluate_accuracy_arrays(trained_lenet, images, labels, batch_size=7)
        b = evaluate_accuracy_arrays(trained_lenet, images, labels, batch_size=128)
        assert a == b

    def test_empty_rejected(self, trained_lenet):
        with pytest.raises(ValueError):
            evaluate_accuracy_arrays(
                trained_lenet,
                np.zeros((0, 3, 32, 32), dtype=np.float32),
                np.zeros(0, dtype=np.int64),
            )

    def test_count_mismatch_rejected(self, trained_lenet):
        with pytest.raises(ValueError):
            evaluate_accuracy_arrays(
                trained_lenet,
                np.zeros((2, 3, 32, 32), dtype=np.float32),
                np.zeros(3, dtype=np.int64),
            )

    def test_mode_restored(self, eval_arrays):
        model = LeNet5(seed=0)
        model.train()
        images, labels = eval_arrays
        evaluate_accuracy_arrays(model, images[:8], labels[:8])
        assert model.training


class TestAUC:
    def test_ideal_network_scores_one(self):
        rates = np.asarray([1e-8, 1e-7, 1e-6, 1e-5])
        accs = np.ones(4)
        assert auc_resilience(rates, accs) == pytest.approx(1.0)
        # Linear mode integrates from the smallest sampled rate, so the
        # ideal value is 1 minus the (tiny) missing left sliver.
        assert auc_resilience(rates, accs, x_mode="linear") == pytest.approx(1.0, abs=1e-2)

    def test_zero_accuracy_scores_zero(self):
        rates = np.asarray([1e-8, 1e-5])
        assert auc_resilience(rates, np.zeros(2)) == 0.0

    def test_trapezoid_known_value(self):
        rates = np.asarray([1e-7, 1e-6, 1e-5])
        accs = np.asarray([1.0, 0.5, 0.0])
        # index mode: x = [0, .5, 1]; trapezoid = .5*(1+.5)/2 + .5*(.5+0)/2
        assert auc_resilience(rates, accs) == pytest.approx(0.5)

    def test_monotone_in_accuracy(self):
        rates = np.asarray([1e-7, 1e-6, 1e-5])
        low = auc_resilience(rates, np.asarray([0.9, 0.5, 0.1]))
        high = auc_resilience(rates, np.asarray([0.95, 0.6, 0.2]))
        assert high > low

    def test_linear_mode_weights_tail(self):
        rates = np.asarray([1e-7, 1e-5])
        accs = np.asarray([1.0, 0.0])
        linear = auc_resilience(rates, accs, x_mode="linear")
        index = auc_resilience(rates, accs, x_mode="index")
        # Linear mode squeezes the first point near x=0.
        assert linear == pytest.approx(0.5 * (1.0 - 0.01), rel=1e-3)
        assert index == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            auc_resilience(np.asarray([1e-6]), np.asarray([1.0]))
        with pytest.raises(ValueError):
            auc_resilience(np.asarray([1e-6, 1e-7]), np.asarray([1.0, 1.0]))
        with pytest.raises(ValueError):
            auc_resilience(np.asarray([1e-7, 1e-6]), np.asarray([1.0, 1.5]))
        with pytest.raises(ValueError):
            auc_resilience(np.asarray([1e-7, 1e-6]), np.asarray([1.0]))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=2, max_size=10),
    )
    def test_bounded_zero_one(self, accs):
        rates = np.logspace(-8, -4, len(accs))
        value = auc_resilience(rates, np.asarray(accs))
        assert 0.0 <= value <= 1.0


class TestBoxStats:
    def test_five_number_summary(self):
        samples = np.asarray([0.1, 0.2, 0.3, 0.4, 0.5])
        box = BoxStats.from_samples(samples)
        assert box.minimum == 0.1
        assert box.median == 0.3
        assert box.maximum == 0.5
        assert box.mean == pytest.approx(0.3)
        assert box.q1 == pytest.approx(0.2)
        assert box.q3 == pytest.approx(0.4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_samples(np.asarray([]))


class TestResilienceCurve:
    def _curve(self):
        rates = np.asarray([1e-7, 1e-6, 1e-5])
        accs = np.asarray(
            [[0.9, 0.95, 0.85], [0.7, 0.6, 0.8], [0.2, 0.1, 0.3]]
        )
        return ResilienceCurve(rates, accs, clean_accuracy=0.97, label="test")

    def test_mean_and_worst(self):
        curve = self._curve()
        np.testing.assert_allclose(curve.mean_accuracies(), [0.9, 0.7, 0.2])
        np.testing.assert_allclose(curve.worst_case(), [0.85, 0.6, 0.1])
        assert curve.n_trials == 3

    def test_auc_includes_clean_anchor(self):
        curve = self._curve()
        with_zero = curve.auc(include_zero_rate=True)
        without = curve.auc(include_zero_rate=False)
        assert with_zero != without
        # Anchoring at a high clean accuracy raises the AUC here.
        assert with_zero > without

    def test_box_stats_per_rate(self):
        boxes = self._curve().box_stats()
        assert len(boxes) == 3
        assert boxes[0].maximum == 0.95

    def test_summary_rows(self):
        rows = self._curve().summary_rows()
        assert len(rows) == 3
        assert rows[0]["fault_rate"] == 1e-7
        assert rows[2]["mean"] == pytest.approx(0.2)

    def test_single_trial_curve(self):
        curve = ResilienceCurve(
            np.asarray([1e-7, 1e-6]), np.asarray([[0.9], [0.5]]), clean_accuracy=1.0
        )
        assert curve.n_trials == 1
        np.testing.assert_allclose(curve.mean_accuracies(), [0.9, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceCurve(np.asarray([1e-6, 1e-7]), np.zeros((2, 3)), 1.0)
        with pytest.raises(ValueError):
            ResilienceCurve(np.asarray([1e-7, 1e-6]), np.zeros((3, 2)), 1.0)


class TestConfidenceInterval:
    def _curve(self, trials=8, seed=0):
        rng = np.random.default_rng(seed)
        rates = np.asarray([1e-7, 1e-6, 1e-5])
        accs = np.clip(rng.normal(0.7, 0.05, size=(3, trials)), 0, 1)
        return ResilienceCurve(rates, accs, clean_accuracy=0.9)

    def test_interval_brackets_mean(self):
        curve = self._curve()
        lower, upper = curve.confidence_interval(0.95)
        means = curve.mean_accuracies()
        assert (lower <= means + 1e-12).all()
        assert (upper >= means - 1e-12).all()

    def test_higher_level_wider(self):
        curve = self._curve()
        lower95, upper95 = curve.confidence_interval(0.95)
        lower99, upper99 = curve.confidence_interval(0.99)
        assert ((upper99 - lower99) >= (upper95 - lower95) - 1e-12).all()

    def test_more_trials_narrower(self):
        wide = self._curve(trials=4)
        narrow = self._curve(trials=64)
        width_wide = np.subtract(*wide.confidence_interval()[::-1]).mean()
        width_narrow = np.subtract(*narrow.confidence_interval()[::-1]).mean()
        assert width_narrow < width_wide

    def test_single_trial_degenerates(self):
        curve = ResilienceCurve(
            np.asarray([1e-7, 1e-6]), np.asarray([[0.9], [0.5]]), clean_accuracy=1.0
        )
        lower, upper = curve.confidence_interval()
        np.testing.assert_array_equal(lower, upper)

    def test_clipped_to_unit_interval(self):
        rates = np.asarray([1e-7, 1e-6])
        accs = np.asarray([[0.99, 1.0, 0.98], [0.01, 0.0, 0.02]])
        curve = ResilienceCurve(rates, accs, clean_accuracy=1.0)
        lower, upper = curve.confidence_interval(0.999)
        assert (upper <= 1.0).all() and (lower >= 0.0).all()

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            self._curve().confidence_interval(1.0)
        with pytest.raises(ValueError):
            self._curve().confidence_interval(0.0)


class TestCurveSerialization:
    def _curve(self):
        rates = np.asarray([1e-7, 1e-6, 1e-5])
        accs = np.random.default_rng(0).random((3, 5))
        return ResilienceCurve(rates, accs, clean_accuracy=0.91, label="demo/run-1")

    def test_roundtrip(self, tmp_path):
        curve = self._curve()
        path = curve.save(tmp_path / "curve.npz")
        loaded = ResilienceCurve.load(path)
        np.testing.assert_array_equal(loaded.fault_rates, curve.fault_rates)
        np.testing.assert_array_equal(loaded.accuracies, curve.accuracies)
        assert loaded.clean_accuracy == curve.clean_accuracy
        assert loaded.label == curve.label
        assert loaded.auc() == curve.auc()

    def test_empty_label_roundtrip(self, tmp_path):
        curve = ResilienceCurve(
            np.asarray([1e-7, 1e-6]), np.zeros((2, 1)), clean_accuracy=0.5
        )
        loaded = ResilienceCurve.load(curve.save(tmp_path / "c.npz"))
        assert loaded.label == ""

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ResilienceCurve.load(tmp_path / "absent.npz")

    def test_creates_parent_dirs(self, tmp_path):
        curve = self._curve()
        path = curve.save(tmp_path / "deep" / "dir" / "c.npz")
        assert path.exists()
