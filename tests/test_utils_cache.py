"""Tests for the artifact cache."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.utils.cache import ArtifactCache, config_fingerprint, default_cache_dir


class TestFingerprint:
    def test_deterministic(self):
        config = {"a": 1, "b": [1, 2]}
        assert config_fingerprint(config) == config_fingerprint(dict(config))

    def test_key_order_irrelevant(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint({"b": 2, "a": 1})

    def test_value_change_changes_fingerprint(self):
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_numpy_scalars_supported(self):
        assert config_fingerprint({"a": np.float64(1.5)}) == config_fingerprint({"a": 1.5})

    def test_sets_normalised(self):
        assert config_fingerprint({"a": {3, 1}}) == config_fingerprint({"a": [1, 3]})

    def test_unfingerprintable_type_raises(self):
        with pytest.raises(TypeError):
            config_fingerprint({"a": object()})


class TestArtifactCache:
    def test_env_var_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        assert ArtifactCache().directory == tmp_path / "custom"

    def test_path_for_stable(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        a = cache.path_for("model", {"x": 1})
        b = cache.path_for("model", {"x": 1})
        assert a == b
        assert a.parent == tmp_path

    def test_distinct_configs_distinct_paths(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.path_for("m", {"x": 1}) != cache.path_for("m", {"x": 2})

    def test_has_and_remove(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        config = {"x": 1}
        path = cache.path_for("m", config)
        assert not cache.has("m", config)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"data")
        assert cache.has("m", config)
        assert cache.remove("m", config)
        assert not cache.has("m", config)
        assert not cache.remove("m", config)

    def test_empty_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path).path_for("", {})

    def test_write_json_publishes_atomically(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        config = {"x": 1}
        path = cache.write_json("thresholds", config, {"a": [1, 2, 3]})
        assert path == cache.path_for("thresholds", config, suffix=".json")
        assert json.loads(path.read_text()) == {"a": [1, 2, 3]}
        # No tmp litter left behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == [path.name]


# One writer process: hammers the same cache key with its own marker
# payload.  The payload is internally consistent (every element equals
# the writer id), so a reader can detect any torn/interleaved write.
_WRITER = """
import sys
from repro.utils.cache import ArtifactCache

cache_dir, writer, iterations = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
cache = ArtifactCache(cache_dir)
for _ in range(iterations):
    cache.write_json("race", {"shared": True}, {"who": writer, "data": [writer] * 4096})
"""


class TestCrossProcessRace:
    def test_double_write_never_leaves_a_torn_entry(self, tmp_path):
        """Two processes caching the same fingerprint race benignly.

        The service depends on this: concurrent slot threads (and
        concurrent daemons sharing one REPRO_CACHE_DIR) may harden the
        same model at once.  Every read during the race must parse and
        be exactly one writer's complete payload — the pre-fix fixed-name
        ``.tmp`` scheme let two writers interleave within one tmp file.
        """
        cache = ArtifactCache(tmp_path)
        path = cache.path_for("race", {"shared": True}, suffix=".json")
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER, str(tmp_path), str(who), "150"],
                env=_child_env(),
            )
            for who in (1, 2)
        ]
        observed: set[int] = set()
        torn: list[str] = []
        try:
            while any(writer.poll() is None for writer in writers):
                if not path.exists():
                    continue
                try:
                    payload = json.loads(path.read_text())
                except json.JSONDecodeError as error:
                    torn.append(f"unparseable entry: {error}")
                    break
                if payload["data"] != [payload["who"]] * 4096:
                    torn.append(f"interleaved entry from writer {payload['who']}")
                    break
        finally:
            for writer in writers:
                writer.wait(timeout=60)
        assert not torn, torn
        assert all(writer.returncode == 0 for writer in writers)
        final = json.loads(path.read_text())
        observed.add(final["who"])
        assert final["data"] == [final["who"]] * 4096
        assert observed <= {1, 2}
        # Neither writer left its pid-unique tmp file behind.
        assert [p.name for p in tmp_path.glob("*.tmp-*")] == []

    def test_state_dict_double_write_never_torn(self, tmp_path):
        """The zoo's .npz writes obey the same atomicity contract."""
        from repro.utils.serialization import load_state_dict, save_state_dict

        path = tmp_path / "weights.npz"
        script = """
import sys
import numpy as np
from repro.utils.serialization import save_state_dict

path, writer, iterations = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
for _ in range(iterations):
    save_state_dict(path, {"w": np.full(4096, writer)}, {"who": writer})
"""
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path), str(who), "60"],
                env=_child_env(),
            )
            for who in (1, 2)
        ]
        torn: list[str] = []
        try:
            while any(writer.poll() is None for writer in writers):
                if not path.exists():
                    continue
                try:
                    state, metadata = load_state_dict(path)
                except Exception as error:  # noqa: BLE001 - any failure = torn
                    torn.append(f"unreadable archive: {error}")
                    break
                if not (state["w"] == metadata["who"]).all():
                    torn.append("archive mixes two writers")
                    break
        finally:
            for writer in writers:
                writer.wait(timeout=60)
        assert not torn, torn
        assert all(writer.returncode == 0 for writer in writers)
        state, metadata = load_state_dict(path)
        assert (state["w"] == metadata["who"]).all()


def _child_env() -> dict:
    import os
    from pathlib import Path

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env
