"""Activation association and replacement (methodology Step 2).

The paper assigns one clipping threshold per *computational layer*: the
activation following CONV-k (possibly with batch-norm in between) is
clipped at that layer's threshold.  This module discovers that
association generically — walking any module tree in forward/registration
order — and swaps unbounded activations for clipped ones in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro import nn
from repro.core.clipped import ClampedReLU, ClippedLeakyReLU, ClippedReLU
from repro.nn.activations import Identity, LeakyReLU, ReLU, ReLU6, Softmax

__all__ = [
    "ActivationSite",
    "ActivationSwapResult",
    "find_activation_sites",
    "swap_activations",
    "set_thresholds",
    "get_thresholds",
]

# Activation types eligible for replacement.  Softmax/Identity are excluded:
# Softmax is an output layer and Identity is an explicit "no activation".
_SWAPPABLE = (ReLU, LeakyReLU, ReLU6)


@dataclass(frozen=True)
class ActivationSite:
    """One replaceable activation and the computational layer feeding it."""

    layer_name: str  # paper-style name of the feeding CONV/FC layer
    parent: nn.Module  # module that owns the activation attribute
    attribute: str  # attribute name of the activation on the parent
    activation: nn.Module  # the current activation module


def _iter_children_in_order(module: nn.Module) -> Iterator[tuple[nn.Module, str, nn.Module]]:
    """Depth-first (parent, attr, child) walk in registration order.

    Registration order equals forward order for Sequential models, which is
    all this library's architectures use.
    """
    for name, child in module.named_children():
        yield module, name, child
        yield from _iter_children_in_order(child)


def find_activation_sites(model: nn.Module) -> list[ActivationSite]:
    """Locate every swappable activation and its feeding CONV/FC layer.

    Activations that appear before any computational layer are skipped
    (there is no layer whose output they bound).
    """
    sites: list[ActivationSite] = []
    conv_count = 0
    fc_count = 0
    current_layer: "str | None" = None
    for parent, attribute, child in _iter_children_in_order(model):
        if isinstance(child, nn.Conv2d):
            conv_count += 1
            current_layer = f"CONV-{conv_count}"
        elif isinstance(child, nn.Linear):
            fc_count += 1
            current_layer = f"FC-{fc_count}"
        elif isinstance(child, _SWAPPABLE) and not isinstance(child, (Softmax, Identity)):
            if current_layer is None:
                continue
            sites.append(
                ActivationSite(
                    layer_name=current_layer,
                    parent=parent,
                    attribute=attribute,
                    activation=child,
                )
            )
            # One activation per computational layer (the paper's model);
            # further activations before the next layer are left alone.
            current_layer = None
    return sites


@dataclass
class ActivationSwapResult:
    """Outcome of :func:`swap_activations`.

    ``clipped`` maps layer names to the live replacement modules —
    :class:`ClippedReLU`, :class:`ClippedLeakyReLU` or, for the clamp
    variant, :class:`ClampedReLU`.
    """

    clipped: "dict[str, ClippedReLU | ClampedReLU | ClippedLeakyReLU]" = field(
        default_factory=dict
    )
    replaced: int = 0

    def layer_names(self) -> list[str]:
        """Names of the layers whose activations were clipped, in order."""
        return list(self.clipped)


def swap_activations(
    model: nn.Module,
    thresholds: "Mapping[str, float] | float",
    variant: str = "clip",
) -> ActivationSwapResult:
    """Replace unbounded activations with clipped ones (Step 2).

    ``thresholds`` is either a single initial threshold for every layer or
    a mapping from paper-style layer name (``"CONV-1"``...) to threshold —
    typically the profiled ``ACT_max`` values from Step 1.  ``variant``
    selects ``"clip"`` (the paper: out-of-range -> 0) or ``"clamp"``
    (saturate at T, the ablation).

    The model is modified in place; the returned result maps layer names
    to the live clipped modules so Step 3 can tune their thresholds.
    """
    if variant not in ("clip", "clamp"):
        raise ValueError(f"variant must be 'clip' or 'clamp', got {variant!r}")

    def factory(site: ActivationSite, threshold: float) -> nn.Module:
        if variant == "clamp":
            return ClampedReLU(threshold)
        if isinstance(site.activation, LeakyReLU):
            # The paper notes other activations clip analogously; preserve
            # the Leaky-ReLU's negative slope below zero.
            return ClippedLeakyReLU(
                threshold, negative_slope=site.activation.negative_slope
            )
        return ClippedReLU(threshold)

    sites = find_activation_sites(model)
    if not sites:
        raise ValueError("model has no swappable activations")
    if isinstance(thresholds, Mapping):
        missing = [s.layer_name for s in sites if s.layer_name not in thresholds]
        if missing:
            raise KeyError(f"thresholds missing for layers {missing!r}")

    result = ActivationSwapResult()
    for site in sites:
        threshold = (
            float(thresholds[site.layer_name])
            if isinstance(thresholds, Mapping)
            else float(thresholds)
        )
        replacement = factory(site, threshold)
        replacement.train(model.training)
        setattr(site.parent, site.attribute, replacement)
        result.clipped[site.layer_name] = replacement
        result.replaced += 1
    return result


def set_thresholds(model: nn.Module, thresholds: Mapping[str, float]) -> None:
    """Update thresholds of already-swapped clipped activations by layer name."""
    clipped = _clipped_by_layer(model)
    unknown = set(thresholds) - set(clipped)
    if unknown:
        raise KeyError(f"no clipped activation for layers {sorted(unknown)!r}")
    for layer_name, threshold in thresholds.items():
        clipped[layer_name].threshold = float(threshold)


def get_thresholds(model: nn.Module) -> dict[str, float]:
    """Current thresholds of the model's clipped activations by layer name."""
    return {name: module.threshold for name, module in _clipped_by_layer(model).items()}


def _clipped_by_layer(
    model: nn.Module,
) -> dict[str, "ClippedReLU | ClampedReLU | ClippedLeakyReLU"]:
    """Re-discover clipped activations with their feeding-layer names."""
    found: dict[str, ClippedReLU | ClampedReLU | ClippedLeakyReLU] = {}
    conv_count = 0
    fc_count = 0
    current_layer: "str | None" = None
    for _, _, child in _iter_children_in_order(model):
        if isinstance(child, nn.Conv2d):
            conv_count += 1
            current_layer = f"CONV-{conv_count}"
        elif isinstance(child, nn.Linear):
            fc_count += 1
            current_layer = f"FC-{fc_count}"
        elif isinstance(child, (ClippedReLU, ClampedReLU, ClippedLeakyReLU)):
            if current_layer is not None:
                found[current_layer] = child
                current_layer = None
    return found
