"""Hardware substrate: weight memory, IEEE-754 bit faults, ECC and TMR."""

from repro.hw.actfaults import (
    ActivationFaultCellTask,
    ActivationFaultInjector,
    flip_activation_bits,
    run_activation_campaign,
)
from repro.hw.bits import (
    EXPONENT_BITS,
    MANTISSA_BITS,
    SIGN_BIT,
    WORD_BITS,
    bit_field,
    bits_to_float,
    decompose,
    flip_bits_in_words,
    flip_scalar_bit,
    float_to_bits,
    set_bits_in_words,
)
from repro.hw.ecc import (
    CODE_CHECK_BITS,
    CODE_DATA_BITS,
    CODE_TOTAL_BITS,
    ECCFilter,
    SECDEDResult,
    hamming_decode,
    hamming_encode,
)
from repro.hw.faultmodels import (
    OP_FLIP,
    OP_STUCK0,
    OP_STUCK1,
    BurstFault,
    FaultModel,
    FaultSet,
    FixedFaultMap,
    RandomBitFlip,
    StuckAt,
    TargetedBitFlip,
)
from repro.hw.injector import FaultInjector, InjectionRecord
from repro.hw.memory import MemoryRegion, WeightMemory
from repro.hw.quant import (
    INT8_BITS,
    QuantizedWeightMemory,
    dequantize_symmetric,
    quantize_symmetric,
)
from repro.hw.rangecheck import WeightRangeCheck
from repro.hw.tmr import DMRFilter, TMRFilter

__all__ = [
    "ActivationFaultCellTask",
    "ActivationFaultInjector",
    "BurstFault",
    "CODE_CHECK_BITS",
    "CODE_DATA_BITS",
    "CODE_TOTAL_BITS",
    "DMRFilter",
    "ECCFilter",
    "EXPONENT_BITS",
    "FaultInjector",
    "FaultModel",
    "FaultSet",
    "FixedFaultMap",
    "INT8_BITS",
    "InjectionRecord",
    "MANTISSA_BITS",
    "MemoryRegion",
    "OP_FLIP",
    "OP_STUCK0",
    "OP_STUCK1",
    "QuantizedWeightMemory",
    "RandomBitFlip",
    "SECDEDResult",
    "SIGN_BIT",
    "StuckAt",
    "TMRFilter",
    "TargetedBitFlip",
    "WORD_BITS",
    "WeightMemory",
    "WeightRangeCheck",
    "bit_field",
    "bits_to_float",
    "decompose",
    "dequantize_symmetric",
    "flip_activation_bits",
    "run_activation_campaign",
    "flip_bits_in_words",
    "flip_scalar_bit",
    "float_to_bits",
    "hamming_decode",
    "hamming_encode",
    "quantize_symmetric",
    "set_bits_in_words",
]
