"""Parallel campaign execution: deterministic fan-out of (rate, trial) cells.

:class:`CampaignExecutor` runs the grid of a
:class:`~repro.core.campaign.FaultInjectionCampaign` either in-process
(``workers=1``, the default — exactly the historical serial loop) or across
a :class:`concurrent.futures.ProcessPoolExecutor` worker pool.

Design
------

**Weight shipping.**  Each worker process holds its own deserialized model
and :class:`~repro.hw.memory.WeightMemory`.  The parent pickles the
``(model, memory, images, labels, sampler)`` tuple *once* into a payload
blob (reused as the checkpoint fingerprint's CRC input) and hands it to
every worker through the pool's ``initializer`` — not per task — so a
sweep of hundreds of cells ships the weights exactly ``workers`` times.  Pickling the model and the memory in
one payload preserves their aliasing: the worker's memory regions point at
the worker's own parameter arrays, so fault injection in a worker mutates
(and restores) only that worker's copy.

**Determinism.**  The per-cell seed depends only on
``(campaign seed, rate index, trial index)`` via
:class:`~repro.utils.rng.SeedTree` (path ``rate/<i>/trial/<j>``), never on
which worker evaluates the cell or in which order cells complete.  Worker
models are bit-exact copies of the parent's float32 weights and the
evaluation is pure single-threaded NumPy, so a parallel run produces a
:class:`~repro.core.metrics.ResilienceCurve` *bit-identical* to the serial
run — the common-random-numbers contract of ``campaign.py`` survives
parallelism unchanged.

**Dispatch.**  Cells are enumerated rate-major (the serial order), split
into contiguous chunks of ``chunk_size`` (default: about four chunks per
worker) and submitted eagerly; results are written back into the
``(n_rates, n_trials)`` accuracy grid by index, so completion order is
irrelevant.

**Streaming and resume.**  An optional per-cell ``progress`` callback
receives a :class:`CellResult` as each accuracy lands, and an optional
``checkpoint`` JSON file records completed cells so an interrupted sweep
restarted with the same configuration re-runs only the missing cells.
"""

from __future__ import annotations

import json
import os
import pickle
import warnings
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.metrics import ResilienceCurve, evaluate_accuracy_arrays
from repro.utils.rng import SeedTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.campaign import CampaignConfig, FaultInjectionCampaign, FaultSampler

__all__ = [
    "CellResult",
    "ProgressCallback",
    "CampaignExecutor",
    "resolve_workers",
    "cell_seed_path",
]

_CHECKPOINT_VERSION = 1


def cell_seed_path(rate_index: int, trial: int) -> str:
    """The :class:`SeedTree` path of one campaign cell.

    This string is the determinism contract between the serial loop and
    the worker pool: both derive the cell's generator from it.
    """
    return f"rate/{rate_index}/trial/{trial}"


def resolve_workers(workers: int) -> int:
    """Normalize a worker count: ``0`` means one worker per CPU core."""
    if not isinstance(workers, (int, np.integer)):
        raise TypeError(f"workers must be an int, got {type(workers).__name__}")
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = cpu_count), got {workers}")
    if workers == 0:
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # pragma: no cover - non-Linux fallback
            return os.cpu_count() or 1
    return int(workers)


@dataclass(frozen=True)
class CellResult:
    """One completed (rate, trial) cell, streamed to progress callbacks."""

    rate_index: int
    trial: int
    fault_rate: float
    accuracy: float
    completed: int  # cells finished so far (including checkpointed ones)
    total: int  # total cells in the grid
    from_checkpoint: bool = False


ProgressCallback = Callable[[CellResult], None]


# --------------------------------------------------------------------- #
# worker-side machinery
# --------------------------------------------------------------------- #

# Per-process campaign state, set once by _init_worker.  Plain module
# globals: ProcessPoolExecutor workers are single-threaded and each
# process runs exactly one campaign at a time.
_WORKER_STATE: "dict | None" = None


def _init_worker(payload: bytes, config: "CampaignConfig") -> None:
    """Pool initializer: deserialize the campaign payload once per worker."""
    global _WORKER_STATE
    from repro.hw.injector import FaultInjector

    model, memory, images, labels, sampler = pickle.loads(payload)
    _WORKER_STATE = {
        "model": model,
        "memory": memory,
        "images": images,
        "labels": labels,
        "config": config,
        "sampler": sampler,
        "injector": FaultInjector(memory),
        "tree": SeedTree(config.seed),
        "rates": np.asarray(config.fault_rates, dtype=np.float64),
    }


def _run_cells(cells: Sequence[tuple[int, int]]) -> list[tuple[int, int, float]]:
    """Evaluate a chunk of (rate_index, trial) cells in this worker."""
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - defensive: initializer always ran
        raise RuntimeError("campaign worker used before initialization")
    out: list[tuple[int, int, float]] = []
    for rate_index, trial in cells:
        accuracy = _evaluate_cell(
            state["model"],
            state["memory"],
            state["injector"],
            state["images"],
            state["labels"],
            state["config"],
            state["sampler"],
            state["tree"],
            rate_index,
            trial,
        )
        out.append((rate_index, trial, accuracy))
    return out


def _evaluate_cell(
    model,
    memory,
    injector,
    images,
    labels,
    config: "CampaignConfig",
    sampler: "FaultSampler",
    tree: SeedTree,
    rate_index: int,
    trial: int,
) -> float:
    """One campaign cell: sample faults, inject, evaluate, restore.

    Shared verbatim by the serial path and the worker pool — determinism
    by construction rather than by keeping two loops in sync.
    """
    rate = float(config.fault_rates[rate_index])
    rng = tree.generator(cell_seed_path(rate_index, trial))
    fault_set = sampler(memory, rate, rng)
    with injector.apply(fault_set):
        return evaluate_accuracy_arrays(model, images, labels, config.batch_size)


# --------------------------------------------------------------------- #
# checkpoint file
# --------------------------------------------------------------------- #


def _pickle_state(
    campaign: "FaultInjectionCampaign", sampler: "FaultSampler"
) -> "tuple[bytes | None, Exception | None]":
    """Serialize the campaign state (model, memory, eval set, sampler) once.

    The same blob feeds both the checkpoint fingerprint (CRC) and the
    worker-pool payload, so large models are pickled exactly once per
    run.  Returns ``(None, error)`` when the state is unpicklable (e.g.
    a closure sampler): serial runs then fall back to config-level
    checkpoint validation, and parallel runs raise a clear error.
    """
    try:
        return (
            pickle.dumps(
                (
                    campaign.model,
                    campaign.memory,
                    campaign.images,
                    campaign.labels,
                    sampler,
                )
            ),
            None,
        )
    except Exception as error:
        return None, error


class _Checkpoint:
    """A JSON record of completed cells, validated against the campaign.

    The file stores a campaign fingerprint — the config grid (seed,
    trials, fault rates) plus a CRC of the pickled campaign state — so a
    checkpoint can never silently resume a *different* sweep (different
    model, mitigation variant, sampler or evaluation set).
    """

    def __init__(
        self,
        path: "str | Path",
        config: "CampaignConfig",
        campaign_crc: "str | None" = None,
    ):
        self.path = Path(path)
        self._fingerprint = {
            "version": _CHECKPOINT_VERSION,
            "seed": int(config.seed),
            "trials": int(config.trials),
            "batch_size": int(config.batch_size),
            "fault_rates": [float(r) for r in config.fault_rates],
            "campaign_crc": campaign_crc,
        }
        self.cells: dict[tuple[int, int], float] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        payload = json.loads(self.path.read_text())
        stored = {key: payload.get(key) for key in self._fingerprint}
        if stored != self._fingerprint:
            raise ValueError(
                f"checkpoint {self.path} was written by a different campaign "
                f"configuration; delete it or use a fresh path "
                f"(stored {stored}, expected {self._fingerprint})"
            )
        for key, accuracy in payload.get("cells", {}).items():
            rate_index, trial = (int(part) for part in key.split("/"))
            self.cells[(rate_index, trial)] = float(accuracy)

    def record(self, rate_index: int, trial: int, accuracy: float) -> None:
        self.cells[(rate_index, trial)] = float(accuracy)

    def flush(self) -> None:
        """Atomically rewrite the checkpoint file."""
        payload = dict(self._fingerprint)
        payload["cells"] = {
            f"{rate_index}/{trial}": accuracy
            for (rate_index, trial), accuracy in sorted(self.cells.items())
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1))
        os.replace(tmp, self.path)


# --------------------------------------------------------------------- #
# the executor
# --------------------------------------------------------------------- #


class CampaignExecutor:
    """Runs a campaign's (rates x trials) grid, serially or in parallel.

    Parameters
    ----------
    workers:
        ``1`` (default) runs in-process with the campaign's own injector —
        the historical serial path.  ``N > 1`` fans cells across ``N``
        worker processes.  ``0`` means one worker per CPU core.
    chunk_size:
        Cells per dispatched task; ``0`` picks roughly four chunks per
        worker.  Larger chunks amortize dispatch overhead, smaller chunks
        stream progress sooner and balance load better.
    progress:
        Optional callback receiving a :class:`CellResult` per completed
        cell (checkpointed cells are replayed with
        ``from_checkpoint=True`` at the start of a resumed run).
    checkpoint:
        Optional JSON file path.  Completed cells are appended as they
        finish; re-running with the same configuration skips them.
    mp_context:
        Optional :mod:`multiprocessing` start-method name (``"fork"``,
        ``"spawn"``, ``"forkserver"``); default lets the platform choose.
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: int = 0,
        progress: "ProgressCallback | None" = None,
        checkpoint: "str | Path | None" = None,
        mp_context: "str | None" = None,
    ):
        self.workers = resolve_workers(workers)
        if chunk_size < 0:
            raise ValueError(f"chunk_size must be >= 0 (0 = auto), got {chunk_size}")
        self.chunk_size = int(chunk_size)
        self.progress = progress
        self.checkpoint_path = checkpoint
        self.mp_context = mp_context

    # ------------------------------------------------------------------ #

    def run(
        self,
        campaign: "FaultInjectionCampaign",
        sampler: "FaultSampler | None" = None,
        label: str = "",
    ) -> ResilienceCurve:
        """Execute the full sweep for ``campaign`` and build its curve."""
        from repro.core.campaign import random_bitflip_sampler

        sampler = sampler if sampler is not None else random_bitflip_sampler()
        config = campaign.config
        rates = np.asarray(config.fault_rates, dtype=np.float64)
        accuracies = np.full((rates.size, config.trials), np.nan, dtype=np.float64)
        total = rates.size * config.trials

        # One serialization serves both the checkpoint fingerprint and
        # the worker payload.
        state_blob: "bytes | None" = None
        state_error: "Exception | None" = None
        if self.checkpoint_path is not None or self.workers > 1:
            state_blob, state_error = _pickle_state(campaign, sampler)

        checkpoint = None
        if self.checkpoint_path is not None:
            if state_blob is None:
                warnings.warn(
                    "campaign state is not picklable; the checkpoint can "
                    "validate only the config grid, not the model/sampler/"
                    "eval set — resuming against different campaign content "
                    f"would go undetected ({state_error})",
                    RuntimeWarning,
                    stacklevel=2,
                )
            crc = f"{zlib.crc32(state_blob):08x}" if state_blob is not None else None
            checkpoint = _Checkpoint(self.checkpoint_path, config, crc)
        completed = 0
        if checkpoint is not None:
            for (rate_index, trial), accuracy in sorted(checkpoint.cells.items()):
                if rate_index < rates.size and trial < config.trials:
                    accuracies[rate_index, trial] = accuracy
                    completed += 1
                    self._emit(
                        rate_index, trial, rates, accuracy, completed, total,
                        from_checkpoint=True,
                    )

        pending = [
            (rate_index, trial)
            for rate_index in range(rates.size)
            for trial in range(config.trials)
            if not np.isfinite(accuracies[rate_index, trial])
        ]

        if pending:
            if self.workers == 1:
                self._run_serial(
                    campaign, sampler, pending, rates, accuracies,
                    completed, total, checkpoint,
                )
            else:
                self._run_parallel(
                    campaign, state_blob, state_error, pending, rates,
                    accuracies, completed, total, checkpoint,
                )

        return ResilienceCurve(
            fault_rates=rates,
            accuracies=accuracies,
            clean_accuracy=campaign.clean_accuracy,
            label=label,
        )

    # ------------------------------------------------------------------ #

    def _emit(
        self,
        rate_index: int,
        trial: int,
        rates: np.ndarray,
        accuracy: float,
        completed: int,
        total: int,
        from_checkpoint: bool = False,
    ) -> None:
        if self.progress is not None:
            self.progress(
                CellResult(
                    rate_index=rate_index,
                    trial=trial,
                    fault_rate=float(rates[rate_index]),
                    accuracy=float(accuracy),
                    completed=completed,
                    total=total,
                    from_checkpoint=from_checkpoint,
                )
            )

    def _run_serial(
        self,
        campaign: "FaultInjectionCampaign",
        sampler: "FaultSampler",
        pending: list[tuple[int, int]],
        rates: np.ndarray,
        accuracies: np.ndarray,
        completed: int,
        total: int,
        checkpoint: "_Checkpoint | None",
    ) -> None:
        """The historical in-process loop, cell order unchanged."""
        tree = SeedTree(campaign.config.seed)
        for rate_index, trial in pending:
            accuracy = _evaluate_cell(
                campaign.model,
                campaign.memory,
                campaign.injector,
                campaign.images,
                campaign.labels,
                campaign.config,
                sampler,
                tree,
                rate_index,
                trial,
            )
            accuracies[rate_index, trial] = accuracy
            completed += 1
            self._emit(rate_index, trial, rates, accuracy, completed, total)
            if checkpoint is not None:
                checkpoint.record(rate_index, trial, accuracy)
                checkpoint.flush()

    def _run_parallel(
        self,
        campaign: "FaultInjectionCampaign",
        state_blob: "bytes | None",
        state_error: "Exception | None",
        pending: list[tuple[int, int]],
        rates: np.ndarray,
        accuracies: np.ndarray,
        completed: int,
        total: int,
        checkpoint: "_Checkpoint | None",
    ) -> None:
        """Fan pending cells over a process pool (weights shipped once)."""
        import multiprocessing

        if state_blob is None:
            raise ValueError(
                "campaign state must be picklable for workers > 1; use a "
                "picklable sampler (e.g. random_bitflip_sampler(), "
                "ecc_sampler()) instead of a lambda/closure, or run with "
                f"workers=1 ({state_error})"
            ) from state_error

        workers = min(self.workers, len(pending))
        chunk_size = self.chunk_size or max(1, len(pending) // (workers * 4))
        chunks = [
            pending[start : start + chunk_size]
            for start in range(0, len(pending), chunk_size)
        ]
        context = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context is not None
            else None
        )
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(state_blob, campaign.config),
        ) as pool:
            futures = {pool.submit(_run_cells, chunk) for chunk in chunks}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    for rate_index, trial, accuracy in future.result():
                        accuracies[rate_index, trial] = accuracy
                        completed += 1
                        self._emit(
                            rate_index, trial, rates, accuracy, completed, total
                        )
                        if checkpoint is not None:
                            checkpoint.record(rate_index, trial, accuracy)
                    if checkpoint is not None:
                        checkpoint.flush()
