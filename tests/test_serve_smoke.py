"""`make serve-smoke`: the daemon end-to-end through the real CLI.

The deployment-shaped acceptance test for campaign-as-a-service
(docs/SERVICE.md): `repro serve --smoke` runs as a **real subprocess**,
a shrunk bundled suite is submitted twice through `repro submit`, and
the test asserts the memoization counters (first submission a miss that
executes, second a cache hit that doesn't), byte-equality of the
`repro fetch`ed run directory against the direct in-process run, and a
clean SIGTERM shutdown that leaves no orphaned shared-memory segments
behind (the leak-regression check for the worker pools' tensor plane).

The daemon inherits the test's ``REPRO_CACHE_DIR``, so the tiny smoke
bundle trained by the in-process reference is shared — exactly how a
deployed daemon shares a training artifact store with its fleet.
"""

from __future__ import annotations

import json
import os
import re
import select
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SUITE = "stuck_at_memory"


def _smoke_suite():
    from repro.scenarios import ScenarioSuite, load_bundled

    base = load_bundled(SUITE)
    return ScenarioSuite(
        name=f"{SUITE}-serve-smoke", specs=tuple(s.shrunk() for s in base.specs)
    )


def _child_env() -> dict:
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(src)
    )
    return env


def _read_line(proc: subprocess.Popen, timeout: float) -> str:
    """One stdout line from a subprocess, or fail loudly on silence."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        remaining = max(0.0, deadline - time.monotonic())
        ready, _, _ = select.select([proc.stdout], [], [], remaining)
        if ready:
            return proc.stdout.readline()
        if proc.poll() is not None:
            break
    raise AssertionError(
        f"daemon produced no output (exit code {proc.poll()})"
    )


def _cli(env, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"repro {args[0]} failed:\n{proc.stdout}\n{proc.stderr}"
    )
    return proc.stdout


def _json_docs(text: str) -> list:
    """Every concatenated JSON document in a CLI's stdout."""
    decoder = json.JSONDecoder()
    docs, index = [], 0
    while index < len(text):
        while index < len(text) and text[index].isspace():
            index += 1
        if index >= len(text):
            break
        doc, index = decoder.raw_decode(text, index)
        docs.append(doc)
    return docs


def _shm_entries() -> "set[str] | None":
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return None
    return {entry.name for entry in shm.iterdir()}


def test_daemon_memoizes_and_shuts_down_clean(tmp_path):
    from repro.results.report import write_report
    from repro.scenarios import run_scenarios, smoke_context

    suite = _smoke_suite()
    spec_file = tmp_path / "suite.json"
    spec_file.write_text(
        json.dumps(
            {
                "name": suite.name,
                "scenarios": [spec.to_dict() for spec in suite.specs],
            }
        )
    )

    # Direct in-process reference (also warms the shared training cache).
    direct = tmp_path / "direct"
    results = run_scenarios(suite, workers=1, out_dir=direct, context=smoke_context())
    assert results
    write_report(direct)

    env = _child_env()
    before = _shm_entries()
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--smoke", "--port", "0", "--root", str(tmp_path / "svc"),
            "--workers", "2", "--queue-limit", "4",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = _read_line(daemon, timeout=120)
        match = re.search(r"serving on (http://\S+)", banner)
        assert match, f"unexpected startup banner: {banner!r}"
        url = match.group(1)

        # First submission: a miss that actually executes.
        first = _json_docs(_cli(env, "submit", str(spec_file), "--url", url, "--wait"))
        assert first[0]["cached"] is False
        assert first[-1]["state"] == "complete"
        run_id = first[0]["id"]

        # Second submission: a cache hit, no new execution.
        second = _json_docs(_cli(env, "submit", str(spec_file), "--url", url))
        assert second[0] == {"cached": True, "id": run_id, "state": "complete"}

        (stats,) = _json_docs(_cli(env, "status", "--url", url))
        assert stats["submissions"] == 2
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["executions"] == 1

        (status,) = _json_docs(_cli(env, "status", run_id, "--url", url))
        assert status["state"] == "complete"
        assert status["completed"] == status["total"] > 0

        # The fetched run directory is byte-identical to the direct run.
        fetched = tmp_path / "fetched"
        _cli(env, "fetch", run_id, "--url", url, "--out", str(fetched))
        reference = {p.name: p.read_bytes() for p in direct.glob("*.json")}
        assert "summary.json" in reference
        produced = {p.name: p.read_bytes() for p in fetched.glob("*.json")}
        assert produced == reference
        assert (
            (fetched / "store" / "cells.rcs").read_bytes()
            == (direct / "store" / "cells.rcs").read_bytes()
        )
        assert (
            (fetched / "report.html").read_bytes()
            == (direct / "report.html").read_bytes()
        )

        # Clean SIGTERM shutdown: exit 0, goodbye line, worker pools gone.
        daemon.send_signal(signal.SIGTERM)
        stdout, stderr = daemon.communicate(timeout=120)
        assert daemon.returncode == 0, f"unclean shutdown:\n{stdout}\n{stderr}"
        assert "shutting down" in stdout
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate()

    # No orphaned shared-memory segments (tensor plane, pool semaphores).
    after = _shm_entries()
    if before is None or after is None:
        pytest.skip("/dev/shm not available on this platform")
    leaked = after - before
    assert not leaked, f"daemon leaked shm segments: {sorted(leaked)}"
