"""Hypothesis property tests on cross-cutting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.core.clipped import ClampedReLU, ClippedReLU
from repro.core.finetune import FineTuneConfig, fine_tune_threshold
from repro.core.metrics import auc_resilience
from repro.hw.bits import bits_to_float, flip_bits_in_words, float_to_bits
from repro.hw.ecc import hamming_decode, hamming_encode
from repro.hw.faultmodels import FaultSet, RandomBitFlip
from repro.hw.injector import FaultInjector
from repro.hw.memory import WeightMemory


class TestInjectorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        rate=st.floats(1e-4, 5e-2),
        words=st.integers(8, 256),
    )
    def test_inject_restore_roundtrip(self, seed, rate, words):
        """inject followed by restore is always the exact identity."""
        rng = np.random.default_rng(seed)
        param = nn.Parameter(rng.standard_normal(words).astype(np.float32))
        original = param.data.copy()
        memory = WeightMemory.from_parameters([("p", param)])
        injector = FaultInjector(memory)
        with injector.session(RandomBitFlip(rate), rng=seed):
            pass
        np.testing.assert_array_equal(param.data, original)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), words=st.integers(4, 64))
    def test_fault_count_matches_changed_bits(self, seed, words):
        """Flipping k distinct bits changes exactly k bits of the memory."""
        rng = np.random.default_rng(seed)
        param = nn.Parameter(rng.standard_normal(words).astype(np.float32))
        memory = WeightMemory.from_parameters([("p", param)])
        injector = FaultInjector(memory)
        before = float_to_bits(param.data.copy())
        k = min(10, words * 32)
        bits = rng.choice(words * 32, size=k, replace=False).astype(np.int64)
        record = injector.inject(FaultSet.flips(bits))
        after = float_to_bits(param.data)
        changed = 0
        for b, a in zip(before, after):
            changed = changed + int(b ^ a).bit_count()
        assert changed == k
        injector.restore(record)


class TestClippedActivationProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=30
        ),
        threshold=st.floats(0.01, 1e6),
    )
    def test_clip_never_exceeds_clamp(self, values, threshold):
        """Pointwise: clip(x) <= clamp(x) <= T and both are >= 0."""
        x = np.asarray(values, dtype=np.float32)
        clipped = ClippedReLU(threshold)(x)
        clamped = ClampedReLU(threshold)(x)
        assert (clipped <= clamped + 1e-6).all()
        assert (clamped <= np.float32(threshold) + 1e-6).all()
        assert (clipped >= 0).all() and (clamped >= 0).all()

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(-100, 100, width=32, allow_nan=False), min_size=1, max_size=30
        ),
        t_small=st.floats(0.1, 10.0),
        t_big=st.floats(10.0, 1000.0),
    )
    def test_larger_threshold_passes_superset(self, values, t_small, t_big):
        """Raising T never zeroes a previously-passed activation."""
        x = np.asarray(values, dtype=np.float32)
        small = ClippedReLU(t_small)(x)
        big = ClippedReLU(t_big)(x)
        passed_small = small > 0
        np.testing.assert_array_equal(big[passed_small], x[passed_small])


class TestHammingProperties:
    @settings(max_examples=40, deadline=None)
    @given(word=st.integers(0, 2**32 - 1))
    def test_encode_decode_identity(self, word):
        check = int(hamming_encode(np.asarray([word], dtype=np.uint32))[0])
        result = hamming_decode(word, check)
        assert result.data == word and not result.corrected

    @settings(max_examples=40, deadline=None)
    @given(word=st.integers(0, 2**32 - 1), bit=st.integers(0, 38))
    def test_any_single_codeword_error_handled(self, word, bit):
        """Any single-bit error — data, Hamming, or parity bit — is either
        corrected or leaves the data intact; never a silent corruption."""
        check = int(hamming_encode(np.asarray([word], dtype=np.uint32))[0])
        if bit < 32:
            result = hamming_decode(word ^ (1 << bit), check)
        else:
            result = hamming_decode(word, check ^ (1 << (bit - 32)))
        assert not result.detected_uncorrectable
        assert result.data == word


class TestAUCProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        accs=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=12),
        bump=st.floats(0.0, 0.3),
        index=st.integers(0, 11),
    )
    def test_auc_monotone_pointwise(self, accs, bump, index):
        """Raising any accuracy point never lowers the AUC."""
        rates = np.logspace(-8, -4, len(accs))
        base = np.asarray(accs)
        raised = base.copy()
        i = index % len(accs)
        raised[i] = min(1.0, raised[i] + bump)
        assert auc_resilience(rates, raised) >= auc_resilience(rates, base) - 1e-12


class TestIntervalSearchProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        peak=st.floats(0.5, 9.5),
        act_max=st.floats(10.0, 100.0),
    )
    def test_result_always_within_search_interval(self, peak, act_max):
        config = FineTuneConfig(max_iterations=6, min_iterations=2, tolerance=0.0)
        evaluator = lambda t: float(np.exp(-(((t - peak) / 2.0) ** 2)))
        result = fine_tune_threshold(evaluator, act_max=act_max, config=config)
        assert 0.0 <= result.threshold <= act_max
        assert result.iterations <= config.max_iterations

    @settings(max_examples=20, deadline=None)
    @given(peak=st.floats(1.0, 9.0))
    def test_more_iterations_never_worse(self, peak):
        """Extra interval-search iterations never reduce the found AUC."""
        evaluator = lambda t: float(np.exp(-(((t - peak) / 1.5) ** 2)))
        short = fine_tune_threshold(
            evaluator, 10.0,
            FineTuneConfig(max_iterations=2, min_iterations=2, tolerance=0.0),
        )
        long = fine_tune_threshold(
            evaluator, 10.0,
            FineTuneConfig(max_iterations=8, min_iterations=8, tolerance=0.0),
        )
        assert long.auc >= short.auc - 1e-12


class TestFlipProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 500),
        words=st.integers(1, 64),
    )
    def test_flip_is_involution(self, seed, words):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal(words).astype(np.float32)
        original = values.copy()
        k = rng.integers(1, words * 32)
        bits = rng.choice(words * 32, size=int(k), replace=False)
        word_idx = (bits // 32).astype(np.int64)
        bit_pos = (bits % 32).astype(np.int64)
        flip_bits_in_words(values, word_idx, bit_pos)
        flip_bits_in_words(values, word_idx, bit_pos)
        np.testing.assert_array_equal(values, original)


def _random_words(rng: np.random.Generator, count: int) -> np.ndarray:
    """Uniformly random uint32 words: every float32 bit pattern, including
    ±0, ±inf, denormals and NaNs with arbitrary mantissa payloads."""
    return rng.integers(0, 2**32, size=count, dtype=np.uint64).astype(np.uint32)


class TestBitsRoundTripProperties:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 1000), count=st.integers(1, 128))
    def test_words_to_float_to_words_identity(self, seed, count):
        """bits_to_float / float_to_bits round-trips *any* bit pattern,
        NaN payloads included (word comparison sees through NaN != NaN)."""
        words = _random_words(np.random.default_rng(seed), count)
        np.testing.assert_array_equal(float_to_bits(bits_to_float(words)), words)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 1000), count=st.integers(1, 128))
    def test_float_to_words_to_float_bit_identity(self, seed, count):
        values = np.random.default_rng(seed).standard_normal(count).astype(np.float32)
        round_tripped = bits_to_float(float_to_bits(values))
        np.testing.assert_array_equal(
            round_tripped.view(np.uint32), values.view(np.uint32)
        )

    def test_special_values_round_trip(self):
        """±0, ±inf and NaNs with distinct payloads survive bit-exactly."""
        specials = np.asarray(
            [0.0, -0.0, np.inf, -np.inf, np.nan, 1e-45, -1e-45], dtype=np.float32
        )
        payload_nans = bits_to_float(
            np.asarray([0x7FC00001, 0x7F800123, 0xFFC0ABCD], dtype=np.uint32)
        )
        values = np.concatenate([specials, payload_nans])
        words = float_to_bits(values)
        np.testing.assert_array_equal(
            bits_to_float(words).view(np.uint32), values.view(np.uint32)
        )
        # Signed zeros and NaN payloads are distinct at the word level.
        assert words[0] != words[1]
        assert len({int(w) for w in float_to_bits(payload_nans)}) == 3

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 1000), count=st.integers(1, 64))
    def test_flip_twice_is_identity_on_any_pattern(self, seed, count):
        """Involution must hold even when flips create or destroy NaNs/infs."""
        rng = np.random.default_rng(seed)
        values = bits_to_float(_random_words(rng, count))
        original_words = values.view(np.uint32).copy()
        k = int(rng.integers(1, count * 32 + 1))
        bits = rng.choice(count * 32, size=k, replace=False)
        word_idx = (bits // 32).astype(np.int64)
        bit_pos = (bits % 32).astype(np.int64)
        flip_bits_in_words(values, word_idx, bit_pos)
        flip_bits_in_words(values, word_idx, bit_pos)
        np.testing.assert_array_equal(values.view(np.uint32), original_words)


class TestQuantizedMemoryProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 300), words=st.integers(4, 128), rate=st.floats(0.0, 0.1))
    def test_deploy_session_roundtrip(self, seed, words, rate):
        """deployed() + session() always restore the exact float weights."""
        from repro.hw.quant import QuantizedWeightMemory

        rng = np.random.default_rng(seed)
        param = nn.Parameter(rng.standard_normal(words).astype(np.float32))
        original = param.data.copy()
        quantized = QuantizedWeightMemory(
            WeightMemory.from_parameters([("p", param)])
        )
        with quantized.deployed():
            with quantized.session(rate, seed):
                pass
        np.testing.assert_array_equal(param.data, original)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 300), words=st.integers(4, 64))
    def test_corruption_always_bounded(self, seed, words):
        """No int8-domain fault can exceed the 128/127-scaled max weight."""
        from repro.hw.quant import QuantizedWeightMemory

        rng = np.random.default_rng(seed)
        param = nn.Parameter(rng.standard_normal(words).astype(np.float32))
        bound = float(np.abs(param.data).max()) * (128.0 / 127.0) + 1e-6
        quantized = QuantizedWeightMemory(
            WeightMemory.from_parameters([("p", param)])
        )
        with quantized.deployed():
            with quantized.session(0.2, seed):
                assert float(np.abs(param.data).max()) <= bound


class TestRangeCheckProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 300), rate=st.floats(1e-4, 2e-2))
    def test_survivors_keep_weights_in_range(self, seed, rate):
        """After the range-check filter, injected weights never exceed the
        profiled bound (the filter's defining guarantee)."""
        from repro.hw.injector import FaultInjector
        from repro.hw.rangecheck import WeightRangeCheck

        rng = np.random.default_rng(seed)
        param = nn.Parameter(
            rng.uniform(-0.5, 0.5, size=200).astype(np.float32)
        )
        memory = WeightMemory.from_parameters([("p", param)])
        check = WeightRangeCheck(memory, margin=1.0)
        bound = check.bounds()["p"]
        effective = check.sample_effective(memory, rate, rng)
        injector = FaultInjector(memory)
        with injector.apply(effective):
            assert float(np.abs(param.data).max()) <= bound + 1e-6
            assert np.isfinite(param.data).all()
