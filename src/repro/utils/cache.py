"""A tiny on-disk cache for expensive artifacts (trained models, campaigns).

The cache is keyed by a human-readable name plus a deterministic fingerprint
of the configuration that produced the artifact, so a change to any
hyper-parameter transparently invalidates stale entries.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping

__all__ = ["default_cache_dir", "config_fingerprint", "ArtifactCache"]

_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the cache directory.

    Honours the ``REPRO_CACHE_DIR`` environment variable; otherwise uses
    ``~/.cache/repro-ftclipact``.
    """
    override = os.environ.get(_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-ftclipact"


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """A short stable hash of a JSON-serialisable configuration mapping."""
    canonical = json.dumps(config, sort_keys=True, default=_jsonify)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _jsonify(value: Any) -> Any:
    """Fallback encoder: tuples and numpy scalars appear in configs."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}")


class ArtifactCache:
    """Maps ``(name, config)`` keys to file paths under a cache directory."""

    def __init__(self, directory: "str | Path | None" = None):
        self._directory = Path(directory) if directory else default_cache_dir()

    @property
    def directory(self) -> Path:
        """Root directory of this cache."""
        return self._directory

    def path_for(self, name: str, config: Mapping[str, Any], suffix: str = ".npz") -> Path:
        """Return the (possibly not yet existing) cache path for this key."""
        if not name:
            raise ValueError("artifact name must be non-empty")
        fingerprint = config_fingerprint(config)
        return self._directory / f"{name}-{fingerprint}{suffix}"

    def has(self, name: str, config: Mapping[str, Any], suffix: str = ".npz") -> bool:
        """True if an artifact for this key is already on disk."""
        return self.path_for(name, config, suffix).exists()

    def write_json(
        self,
        name: str,
        config: Mapping[str, Any],
        payload: Any,
        suffix: str = ".json",
    ) -> Path:
        """Atomically publish a JSON artifact for this key.

        Uses the pid-unique tmp + ``os.replace`` pattern of
        :func:`repro.utils.serialization.write_json_atomic`, so two
        processes caching the same fingerprint race benignly: readers
        see one writer's complete payload, never a torn entry.
        """
        from repro.utils.serialization import write_json_atomic

        return write_json_atomic(self.path_for(name, config, suffix), payload)

    def remove(self, name: str, config: Mapping[str, Any], suffix: str = ".npz") -> bool:
        """Delete the cached artifact if present; returns whether it existed."""
        path = self.path_for(name, config, suffix)
        if path.exists():
            path.unlink()
            return True
        return False
