"""Every bundled scenario spec runs end-to-end (`make scenarios-smoke`).

Part of the fast (`-m "not slow"`) tier: all bundled specs — shrunk via
:meth:`CampaignSpec.shrunk` and driven with the tiny
:func:`repro.scenarios.smoke_context` artifacts — compile and execute
through **one** shared executor scheduling pass, so a schema change,
registry regression or compiler break in any bundled scenario fails the
inner loop rather than a CI-hours benchmark.
"""

import json

import numpy as np

from repro.scenarios import (
    bundled_spec_names,
    load_bundled,
    run_scenarios,
    smoke_context,
)


def test_every_bundled_spec_runs_through_one_pool(tmp_path):
    specs = []
    for name in bundled_spec_names():
        suite = load_bundled(name)
        assert suite.specs, f"bundled spec {name} expanded to nothing"
        specs.extend(spec.shrunk() for spec in suite.specs)

    names = [spec.name for spec in specs]
    assert len(set(names)) == len(names), "bundled scenario names collide"

    out = tmp_path / "out"
    results = run_scenarios(
        specs, workers=1, context=smoke_context(), out_dir=out
    )

    assert len(results) == len(specs)
    for result in results:
        accuracies = result.curve.accuracies
        assert np.isfinite(accuracies).all(), f"{result.name} produced NaNs"
        assert ((accuracies >= 0.0) & (accuracies <= 1.0)).all()
        assert (out / f"{result.file_stem()}.json").exists()

    summary = json.loads((out / "summary.json").read_text())
    assert summary["count"] == len(specs)
    assert {row["name"] for row in summary["scenarios"]} == set(names)
