"""Paper Fig. 1b: accuracy of the unprotected AlexNet vs fault rate.

The paper's motivating figure: classification accuracy of the baseline
(unprotected) AlexNet on CIFAR-10 collapses as the per-bit fault rate in
the weight memory grows.  We regenerate the same series on the scaled
AlexNet; the expected *shape* is a plateau near the clean accuracy at low
rates followed by a monotonic collapse.
"""

from benchmarks.conftest import TRIALS, run_once
from repro.analysis.reporting import format_curve_table
from repro.core.campaign import CampaignConfig, run_campaign
from repro.experiments import clone_model
from repro.hw.memory import WeightMemory


def test_fig1b_unprotected_alexnet_collapse(
    benchmark, alexnet_bundle, alexnet_eval, fault_rates, record_result
):
    images, labels = alexnet_eval
    model = clone_model(alexnet_bundle)
    memory = WeightMemory.from_model(model)
    config = CampaignConfig(fault_rates=fault_rates, trials=TRIALS, seed=1)

    curve = run_once(
        benchmark,
        lambda: run_campaign(
            model, memory, images, labels, config, label="unprotected alexnet"
        ),
    )

    record_result(
        "fig1b_alexnet_unprotected",
        format_curve_table(
            curve,
            title=(
                "Fig. 1b — unprotected AlexNet: accuracy vs per-bit fault rate\n"
                f"(clean accuracy {curve.clean_accuracy:.3f}; paper baseline 72.8%)"
            ),
        ),
    )

    means = curve.mean_accuracies()
    # Shape check 1: plateau near clean accuracy at the lowest rates.
    assert means[0] >= curve.clean_accuracy - 0.03
    # Shape check 2: drastic collapse by the top of the sweep.
    assert means[-1] <= curve.clean_accuracy - 0.25
    # Shape check 3: near-monotone decrease (small trial noise allowed).
    assert all(means[i] >= means[i + 1] - 0.08 for i in range(len(means) - 1))
