"""Ablation: faults in activation memory (our extension).

The paper injects into the weight memory; accelerators also buffer
feature maps in on-chip SRAM.  Activation-memory upsets are transient
(one inference) but hit values *after* the weights did their work — and
they land before the activation function, so the paper's clipped
activations bound them exactly the same way.

Expected shape: the unprotected network degrades with the activation
fault rate; the clipped network holds substantially more accuracy at
every damaging rate.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_rate, format_table
from repro.core.metrics import evaluate_accuracy_arrays
from repro.experiments import clone_model
from repro.hw.actfaults import ActivationFaultInjector

RATES = (1e-6, 1e-5, 1e-4, 1e-3)
TRIALS = 6


def _sweep(model, images, labels):
    """Mean accuracy per activation-fault rate."""
    means = []
    with ActivationFaultInjector(model) as injector:
        for rate_index, rate in enumerate(RATES):
            values = []
            for trial in range(TRIALS):
                with injector.session(rate, rng=1000 * rate_index + trial):
                    with np.errstate(over="ignore", invalid="ignore"):
                        values.append(evaluate_accuracy_arrays(model, images, labels))
            means.append(float(np.mean(values)))
    return means


def test_ablation_activation_memory_faults(
    benchmark, alexnet_bundle, alexnet_hardened, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    images, labels = images[:128], labels[:128]
    hardened_model, _, _ = alexnet_hardened

    def experiment():
        plain = clone_model(alexnet_bundle)
        return _sweep(plain, images, labels), _sweep(hardened_model, images, labels)

    plain_means, clipped_means = run_once(benchmark, experiment)

    rows = [
        [format_rate(rate), f"{p:.4f}", f"{c:.4f}"]
        for rate, p, c in zip(RATES, plain_means, clipped_means)
    ]
    record_result(
        "ablation_activation_faults",
        format_table(
            ["act fault_rate", "unprotected", "ft-clipact"],
            rows,
            title="Ablation — AlexNet under activation-memory bit flips",
        ),
    )

    # Degradation with rate for the unprotected network.
    assert plain_means[0] > plain_means[-1] + 0.1
    # Clipping bounds activation corruption: no worse anywhere, clearly
    # better at the damaging end.
    assert all(c >= p - 0.03 for p, c in zip(plain_means, clipped_means))
    assert clipped_means[-1] > plain_means[-1] + 0.1
