"""2-D convolution via im2col lowering."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.functional import col2im, im2col
from repro.nn.module import Module, Parameter
from repro.utils.rng import as_generator
from repro.utils.validation import as_pair, check_positive

__all__ = ["Conv2d"]


class Conv2d(Module):
    """2-D cross-correlation over NCHW inputs.

    Weight shape is ``(out_channels, in_channels, kh, kw)``.  The forward
    pass lowers the input with :func:`repro.nn.functional.im2col` and
    performs one GEMM, which is the performant formulation in numpy.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: "int | tuple[int, int]",
        stride: "int | tuple[int, int]" = 1,
        padding: "int | tuple[int, int]" = 0,
        bias: bool = True,
        seed: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        check_positive("in_channels", in_channels)
        check_positive("out_channels", out_channels)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = as_pair("kernel_size", kernel_size)
        self.stride = as_pair("stride", stride)
        self.padding = as_pair("padding", padding)
        check_positive("kernel_size", min(self.kernel_size))
        check_positive("stride", min(self.stride))
        if min(self.padding) < 0:
            raise ValueError(f"padding must be non-negative, got {self.padding}")

        rng = as_generator(seed)
        weight_shape = (self.out_channels, self.in_channels, *self.kernel_size)
        self.weight = Parameter(init.kaiming_uniform(weight_shape, rng))
        if bias:
            self.bias: "Parameter | None" = Parameter(init.zeros((self.out_channels,)))
        else:
            self.bias = None

        self._cols: "np.ndarray | None" = None
        self._input_shape: "tuple[int, int, int, int] | None" = None
        self._out_hw: "tuple[int, int] | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects NCHW input, got shape {x.shape}")
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {x.shape[1]}"
            )
        n = x.shape[0]
        cols, (out_h, out_w) = im2col(x, self.kernel_size, self.stride, self.padding)
        flat_weight = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ flat_weight.T  # (N*out_h*out_w, out_channels)
        if self.bias is not None:
            out = out + self.bias.data
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

        if self.training:
            self._cols = cols
            self._input_shape = x.shape  # type: ignore[assignment]
            self._out_hw = (out_h, out_w)
        return np.ascontiguousarray(out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward in training mode")
        grad_output = np.asarray(grad_output, dtype=np.float32)
        n = self._input_shape[0]
        out_h, out_w = self._out_hw
        # (N, C_out, H, W) -> (N*out_h*out_w, C_out), matching forward's GEMM.
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, -1)

        grad_weight = grad_flat.T @ self._cols
        self.weight.accumulate_grad(grad_weight.reshape(self.weight.data.shape))
        if self.bias is not None:
            self.bias.accumulate_grad(grad_flat.sum(axis=0))

        flat_weight = self.weight.data.reshape(self.out_channels, -1)
        grad_cols = grad_flat @ flat_weight
        return col2im(
            grad_cols, self._input_shape, self.kernel_size, self.stride, self.padding
        )

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None}"
        )
