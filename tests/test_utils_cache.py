"""Tests for the artifact cache."""

import numpy as np
import pytest

from repro.utils.cache import ArtifactCache, config_fingerprint, default_cache_dir


class TestFingerprint:
    def test_deterministic(self):
        config = {"a": 1, "b": [1, 2]}
        assert config_fingerprint(config) == config_fingerprint(dict(config))

    def test_key_order_irrelevant(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint({"b": 2, "a": 1})

    def test_value_change_changes_fingerprint(self):
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_numpy_scalars_supported(self):
        assert config_fingerprint({"a": np.float64(1.5)}) == config_fingerprint({"a": 1.5})

    def test_sets_normalised(self):
        assert config_fingerprint({"a": {3, 1}}) == config_fingerprint({"a": [1, 3]})

    def test_unfingerprintable_type_raises(self):
        with pytest.raises(TypeError):
            config_fingerprint({"a": object()})


class TestArtifactCache:
    def test_env_var_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        assert ArtifactCache().directory == tmp_path / "custom"

    def test_path_for_stable(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        a = cache.path_for("model", {"x": 1})
        b = cache.path_for("model", {"x": 1})
        assert a == b
        assert a.parent == tmp_path

    def test_distinct_configs_distinct_paths(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.path_for("m", {"x": 1}) != cache.path_for("m", {"x": 2})

    def test_has_and_remove(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        config = {"x": 1}
        path = cache.path_for("m", config)
        assert not cache.has("m", config)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"data")
        assert cache.has("m", config)
        assert cache.remove("m", config)
        assert not cache.has("m", config)
        assert not cache.remove("m", config)

    def test_empty_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path).path_for("", {})
