"""Tests for per-class vulnerability analysis."""

import numpy as np
import pytest

from repro.analysis.perclass import PerClassResult, run_per_class_analysis
from repro.core.campaign import CampaignConfig
from repro.hw.memory import WeightMemory


@pytest.fixture
def analysis(trained_mlp, mlp_eval_arrays):
    images, labels = mlp_eval_arrays
    memory = WeightMemory.from_model(trained_mlp)
    config = CampaignConfig(fault_rates=(1e-5, 1e-3), trials=3, seed=2, batch_size=96)
    return run_per_class_analysis(trained_mlp, memory, images, labels, config)


class TestPerClassAnalysis:
    def test_shapes(self, analysis):
        assert analysis.recall.shape == (2, 10)
        assert analysis.prediction_share.shape == (2, 10)
        assert analysis.clean_recall.shape == (10,)

    def test_recall_in_unit_interval(self, analysis):
        assert (analysis.recall >= 0).all() and (analysis.recall <= 1).all()
        assert (analysis.clean_recall >= 0).all()

    def test_prediction_share_sums_to_one(self, analysis):
        np.testing.assert_allclose(analysis.prediction_share.sum(axis=1), 1.0, rtol=1e-9)

    def test_low_rate_recall_near_clean(self, analysis):
        assert np.abs(analysis.recall[0] - analysis.clean_recall).mean() < 0.1

    def test_high_rate_mean_recall_degrades(self, analysis):
        assert analysis.recall[1].mean() < analysis.recall[0].mean()

    def test_prediction_collapse_grows(self, analysis):
        """Heavy faults concentrate predictions into fewer classes."""
        assert analysis.prediction_collapse(1) >= analysis.prediction_collapse(0) - 0.05

    def test_most_vulnerable_classes(self, analysis):
        worst = analysis.most_vulnerable_classes(rate_index=1, k=3)
        assert len(worst) == 3
        assert all(0 <= cls < 10 for cls in worst)

    def test_weights_restored(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        memory = WeightMemory.from_model(trained_mlp)
        before = trained_mlp.state_dict()
        run_per_class_analysis(
            trained_mlp, memory, images, labels,
            CampaignConfig(fault_rates=(1e-3,), trials=2, seed=0),
        )
        after = trained_mlp.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_deterministic(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        memory = WeightMemory.from_model(trained_mlp)
        config = CampaignConfig(fault_rates=(1e-3,), trials=2, seed=9)
        a = run_per_class_analysis(trained_mlp, memory, images, labels, config)
        b = run_per_class_analysis(trained_mlp, memory, images, labels, config)
        np.testing.assert_array_equal(a.recall, b.recall)
