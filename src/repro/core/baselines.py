"""Mitigation baselines the paper compares against (or motivates).

Every baseline is expressed in the same campaign vocabulary so the
comparison benchmark can sweep them uniformly:

* **unprotected** — the raw network (paper's "unprotected DNN");
* **relu6** — fixed clipping at 6 (a common bounded activation);
* **actmax-clip** — Step 1+2 only: clipped activations at profiled
  ``ACT_max`` without fine-tuning (isolates Algorithm 1's contribution);
* **clamp** — saturate-at-T ablation of the paper's zero-out clipping;
* **ecc** / **tmr** / **dmr** — hardware memory protection, modelled by
  fault-sampler filters that honestly pay the redundancy's enlarged
  fault-exposure surface.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro import nn
from repro.core.campaign import FaultSampler, random_bitflip_sampler
from repro.core.swap import swap_activations
from repro.hw.ecc import ECCFilter
from repro.hw.faultmodels import FaultSet
from repro.hw.memory import WeightMemory
from repro.hw.rangecheck import WeightRangeCheck
from repro.hw.tmr import DMRFilter, TMRFilter
from repro.nn.activations import ReLU6

__all__ = [
    "apply_relu6",
    "FilterSampler",
    "range_check_sampler",
    "apply_actmax_clipping",
    "apply_clamping",
    "ecc_sampler",
    "tmr_sampler",
    "dmr_sampler",
    "run_mitigation_sweep",
    "MITIGATION_SAMPLERS",
]


def apply_relu6(model: nn.Module, cap: float = 6.0) -> int:
    """Swap every unbounded activation for ReLU6; returns the swap count.

    Uses the same association walk as the paper's swap so the comparison
    bounds exactly the same activations.
    """
    from repro.core.swap import find_activation_sites

    sites = find_activation_sites(model)
    if not sites:
        raise ValueError("model has no swappable activations")
    for site in sites:
        replacement = ReLU6(cap=cap)
        replacement.train(model.training)
        setattr(site.parent, site.attribute, replacement)
    return len(sites)


def apply_actmax_clipping(model: nn.Module, act_max: Mapping[str, float]) -> None:
    """Steps 1+2 without Step 3: clip at the profiled ACT_max values."""
    swap_activations(model, act_max, variant="clip")


def apply_clamping(model: nn.Module, thresholds: Mapping[str, float]) -> None:
    """The clamp ablation: saturate at T instead of zeroing."""
    swap_activations(model, thresholds, variant="clamp")


class FilterSampler:
    """A :data:`FaultSampler` delegating to a protection filter.

    A module-level class (not a closure) so protected campaigns pickle
    and can run under a parallel :class:`~repro.core.executor.CampaignExecutor`.
    """

    def __init__(self, filter_) -> None:
        self.filter = filter_

    def __call__(
        self, memory: WeightMemory, rate: float, rng: np.random.Generator
    ) -> FaultSet:
        return self.filter.sample_effective(memory, rate, rng)


def ecc_sampler(due_policy: str = "zero") -> FaultSampler:
    """Fault sampler seen by a SEC-DED-protected weight memory."""
    return FilterSampler(ECCFilter(due_policy=due_policy))


def tmr_sampler() -> FaultSampler:
    """Fault sampler seen by a bitwise-TMR-protected weight memory."""
    return FilterSampler(TMRFilter())


def range_check_sampler(memory: WeightMemory, margin: float = 1.0) -> FaultSampler:
    """Fault sampler seen behind a Ranger-style weight range check.

    Unlike the redundancy samplers this one is *bound to a memory*: the
    per-region bounds are profiled from that memory's current weights.
    """
    return FilterSampler(WeightRangeCheck(memory, margin=margin))


def dmr_sampler() -> FaultSampler:
    """Fault sampler seen by a DMR (detect-and-zero) weight memory."""
    return FilterSampler(DMRFilter())


def run_mitigation_sweep(
    variants: "Mapping[str, tuple[nn.Module, WeightMemory, FaultSampler | None]]",
    images: np.ndarray,
    labels: np.ndarray,
    config=None,
    workers: int = 1,
    progress: "Callable | None" = None,
    checkpoint: "str | None" = None,
) -> "dict[str, object]":
    """Run several mitigation variants' campaigns through one worker pool.

    ``variants`` maps a label to ``(model, memory, sampler-or-None)``;
    model-level mitigations (relu6, clipping) differ in the model,
    redundancy schemes (ECC/TMR/DMR) in the sampler.  All variants share
    ``config`` — common random numbers — and with ``workers > 1`` their
    cells interleave in a single shared pool instead of running the
    campaigns back-to-back; each returned
    :class:`~repro.core.metrics.ResilienceCurve` is bit-identical to its
    standalone serial run either way.  ``checkpoint`` resumes the whole
    comparison from one JSON file.
    """
    from repro.core.executor import CampaignExecutor, WeightFaultCellTask

    tasks = [
        WeightFaultCellTask(
            model, memory, images, labels,
            config=config, sampler=sampler, label=label,
        )
        for label, (model, memory, sampler) in variants.items()
    ]
    executor = CampaignExecutor(
        workers=workers, progress=progress, checkpoint=checkpoint
    )
    return dict(zip(variants, executor.run_tasks(tasks)))


# Registry used by the mitigation-comparison benchmark.  "unprotected",
# "relu6", "actmax-clip", "ftclipact" and "clamp" differ in *model*
# preparation and share the plain sampler; the redundancy schemes differ in
# *sampler* and share the unmodified model.
MITIGATION_SAMPLERS: dict[str, Callable[[], FaultSampler]] = {
    "plain": random_bitflip_sampler,
    "ecc": ecc_sampler,
    "tmr": tmr_sampler,
    "dmr": dmr_sampler,
}
