"""Tests for im2col/col2im and numeric helpers against naive references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.functional import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    one_hot,
    pad_nchw,
    softmax,
)


def naive_im2col(x, kernel, stride, padding):
    """Loop-based reference for im2col."""
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    rows = []
    for b in range(n):
        for i in range(out_h):
            for j in range(out_w):
                patch = padded[b, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
                rows.append(patch.reshape(-1))
    return np.stack(rows), (out_h, out_w)


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [(32, 3, 1, 1, 32), (32, 2, 2, 0, 16), (28, 5, 1, 0, 24), (7, 3, 2, 1, 4)],
    )
    def test_known_values(self, size, kernel, stride, padding, expected):
        assert conv_output_size(size, kernel, stride, padding) == expected

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestPad:
    def test_zero_padding_is_identity(self):
        x = np.random.default_rng(0).random((1, 2, 3, 3)).astype(np.float32)
        assert pad_nchw(x, (0, 0)) is x

    def test_padding_shape_and_zeros(self):
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        padded = pad_nchw(x, (1, 2))
        assert padded.shape == (1, 1, 4, 6)
        assert padded[0, 0, 0, 0] == 0.0
        assert padded[0, 0, 1, 2] == 1.0


class TestIm2Col:
    @pytest.mark.parametrize(
        "shape,kernel,stride,padding",
        [
            ((2, 3, 8, 8), (3, 3), (1, 1), (1, 1)),
            ((1, 1, 5, 5), (2, 2), (2, 2), (0, 0)),
            ((3, 2, 7, 9), (3, 2), (2, 1), (1, 0)),
            ((1, 4, 4, 4), (4, 4), (1, 1), (0, 0)),
        ],
    )
    def test_matches_naive(self, shape, kernel, stride, padding):
        x = np.random.default_rng(1).standard_normal(shape).astype(np.float32)
        got, got_hw = im2col(x, kernel, stride, padding)
        want, want_hw = naive_im2col(x, kernel, stride, padding)
        assert got_hw == want_hw
        np.testing.assert_allclose(got, want, rtol=0, atol=0)

    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property
        that makes conv backward correct."""
        rng = np.random.default_rng(2)
        shape, kernel, stride, padding = (2, 3, 6, 6), (3, 3), (2, 2), (1, 1)
        x = rng.standard_normal(shape).astype(np.float32)
        cols, _ = im2col(x, kernel, stride, padding)
        y = rng.standard_normal(cols.shape).astype(np.float32)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, shape, kernel, stride, padding)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-4)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 2),
        c=st.integers(1, 3),
        size=st.integers(4, 8),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        padding=st.integers(0, 1),
    )
    def test_property_matches_naive(self, n, c, size, kernel, stride, padding):
        x = np.random.default_rng(0).standard_normal((n, c, size, size)).astype(np.float32)
        got, _ = im2col(x, (kernel, kernel), (stride, stride), (padding, padding))
        want, _ = naive_im2col(x, (kernel, kernel), (stride, stride), (padding, padding))
        np.testing.assert_array_equal(got, want)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).standard_normal((4, 10)).astype(np.float32)
        probs = softmax(logits, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)

    def test_shift_invariance(self):
        logits = np.asarray([[1.0, 2.0, 3.0]], dtype=np.float32)
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0), rtol=1e-5)

    def test_large_logits_stable(self):
        logits = np.asarray([[1e4, 0.0]], dtype=np.float32)
        probs = softmax(logits)
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        logits = np.random.default_rng(1).standard_normal((3, 5)).astype(np.float32)
        np.testing.assert_allclose(
            np.exp(log_softmax(logits, axis=1)), softmax(logits, axis=1), rtol=1e-5
        )


class TestOneHot:
    def test_basic(self):
        encoded = one_hot(np.asarray([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.asarray([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.asarray([-1]), 3)

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)
