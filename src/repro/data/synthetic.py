"""Synthetic CIFAR-10 substitute.

The paper evaluates on CIFAR-10, which is unavailable offline, so this
module generates a deterministic, class-conditional 10-class dataset of
3x32x32 float32 images.  Each class is defined by a procedurally derived
*prototype* — a colour palette, an oriented sinusoidal texture, and one of
several geometric shapes — and each sample perturbs the prototype with
per-instance jitter (phase, position, scale, brightness) plus Gaussian
pixel noise.

Design goals (see DESIGN.md, substitution table):

* classes are separable enough for small CNNs to reach high clean accuracy
  within a few epochs on a single CPU core;
* samples are diverse enough that accuracy is a meaningful, non-saturated
  metric under fault injection;
* generation is fully deterministic given ``(seed, split, index)`` so every
  experiment sees exactly the same data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import SeedTree
from repro.utils.validation import check_positive

__all__ = ["ClassPrototype", "SyntheticCIFAR10", "CIFAR10_CLASS_NAMES"]

# CIFAR-10's class names, kept for readable reports even though our images
# are procedural rather than photographic.
CIFAR10_CLASS_NAMES = (
    "airplane",
    "automobile",
    "bird",
    "cat",
    "deer",
    "dog",
    "frog",
    "horse",
    "ship",
    "truck",
)

_SHAPES = ("disc", "ring", "square", "cross", "stripes", "checker")


@dataclass(frozen=True)
class ClassPrototype:
    """The deterministic generative parameters of one class."""

    label: int
    base_color: np.ndarray  # (3,) in [0, 1]
    accent_color: np.ndarray  # (3,) in [0, 1]
    frequency: tuple[float, float]  # texture spatial frequency (fx, fy)
    shape: str  # one of _SHAPES
    shape_scale: float  # relative size of the shape in the frame


class SyntheticCIFAR10:
    """Deterministic generator for the 10-class synthetic image dataset."""

    def __init__(
        self,
        num_classes: int = 10,
        image_size: int = 32,
        noise_std: float = 0.08,
        seed: int = 2020,
    ):
        check_positive("num_classes", num_classes)
        check_positive("image_size", image_size)
        if noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {noise_std}")
        self.num_classes = int(num_classes)
        self.image_size = int(image_size)
        self.noise_std = float(noise_std)
        self.seed = int(seed)
        self._tree = SeedTree(seed)
        self.prototypes = tuple(
            self._build_prototype(label) for label in range(self.num_classes)
        )
        # Pre-computed normalized coordinate grids in [-1, 1].
        axis = np.linspace(-1.0, 1.0, self.image_size, dtype=np.float32)
        self._yy, self._xx = np.meshgrid(axis, axis, indexing="ij")

    # ------------------------------------------------------------------ #
    # prototypes
    # ------------------------------------------------------------------ #

    def _build_prototype(self, label: int) -> ClassPrototype:
        rng = self._tree.generator(f"class/{label}")
        # Spread hues around the colour wheel so classes are chromatically
        # distinct; keep saturation moderate so texture/shape still matter.
        hue = (label / self.num_classes + rng.uniform(-0.03, 0.03)) % 1.0
        base_color = _hsv_to_rgb(hue, 0.55 + 0.3 * rng.random(), 0.75)
        accent_color = _hsv_to_rgb((hue + 0.5) % 1.0, 0.7, 0.9)
        frequency = (
            float(rng.uniform(1.0, 4.0)),
            float(rng.uniform(1.0, 4.0)),
        )
        shape = _SHAPES[label % len(_SHAPES)]
        shape_scale = float(rng.uniform(0.35, 0.6))
        return ClassPrototype(
            label=label,
            base_color=base_color,
            accent_color=accent_color,
            frequency=frequency,
            shape=shape,
            shape_scale=shape_scale,
        )

    # ------------------------------------------------------------------ #
    # sample generation
    # ------------------------------------------------------------------ #

    def _shape_mask(
        self,
        prototype: ClassPrototype,
        center: tuple[float, float],
        scale: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Soft [0,1] mask of the class shape at the given pose."""
        cy, cx = center
        yy = (self._yy - cy) / scale
        xx = (self._xx - cx) / scale
        radius = np.sqrt(yy**2 + xx**2)
        if prototype.shape == "disc":
            mask = radius < 1.0
        elif prototype.shape == "ring":
            mask = (radius > 0.55) & (radius < 1.0)
        elif prototype.shape == "square":
            mask = (np.abs(yy) < 0.8) & (np.abs(xx) < 0.8)
        elif prototype.shape == "cross":
            mask = (np.abs(yy) < 0.3) | (np.abs(xx) < 0.3)
            mask &= radius < 1.3
        elif prototype.shape == "stripes":
            mask = (np.sin(6.0 * np.pi * yy) > 0) & (radius < 1.2)
        elif prototype.shape == "checker":
            mask = (np.sin(4.0 * np.pi * yy) * np.sin(4.0 * np.pi * xx)) > 0
            mask &= radius < 1.2
        else:  # pragma: no cover - guarded by _SHAPES
            raise ValueError(f"unknown shape {prototype.shape!r}")
        return mask.astype(np.float32)

    def _texture(
        self, prototype: ClassPrototype, phase: float, rotation: float
    ) -> np.ndarray:
        """Oriented sinusoidal texture field in [0, 1]."""
        fx, fy = prototype.frequency
        cos_r, sin_r = np.cos(rotation), np.sin(rotation)
        xr = cos_r * self._xx - sin_r * self._yy
        yr = sin_r * self._xx + cos_r * self._yy
        wave = np.sin(2.0 * np.pi * (fx * xr + fy * yr) + phase)
        return (0.5 + 0.5 * wave).astype(np.float32)

    def generate_sample(self, label: int, rng: np.random.Generator) -> np.ndarray:
        """One (3, H, W) float32 image of class ``label`` in [0, 1]."""
        if not 0 <= label < self.num_classes:
            raise ValueError(f"label must lie in [0, {self.num_classes}), got {label}")
        prototype = self.prototypes[label]

        phase = float(rng.uniform(0.0, 2.0 * np.pi))
        rotation = float(rng.uniform(-0.35, 0.35))
        center = (float(rng.uniform(-0.25, 0.25)), float(rng.uniform(-0.25, 0.25)))
        scale = prototype.shape_scale * float(rng.uniform(0.8, 1.25))
        brightness = float(rng.uniform(0.85, 1.15))

        texture = self._texture(prototype, phase, rotation)
        mask = self._shape_mask(prototype, center, scale, rng)

        base = prototype.base_color[:, None, None] * texture[None, :, :]
        accent = prototype.accent_color[:, None, None] * mask[None, :, :]
        image = brightness * (0.65 * base + 0.35 * accent)
        if self.noise_std > 0:
            image = image + rng.normal(0.0, self.noise_std, size=image.shape)
        return np.clip(image, 0.0, 1.0).astype(np.float32)

    def generate(
        self, n: int, split: str = "train"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``n`` (images, labels) with a balanced label cycle.

        Different ``split`` names draw from independent random streams, so
        train/val/test never overlap.
        """
        check_positive("n", n)
        rng = self._tree.generator(f"split/{split}")
        labels = np.arange(n, dtype=np.int64) % self.num_classes
        rng.shuffle(labels)
        images = np.stack(
            [self.generate_sample(int(label), rng) for label in labels]
        )
        return images, labels

    def dataset(self, n: int, split: str = "train") -> ArrayDataset:
        """Materialise a split as an :class:`ArrayDataset`."""
        images, labels = self.generate(n, split)
        return ArrayDataset(images, labels)

    def splits(
        self, n_train: int, n_val: int, n_test: int
    ) -> tuple[ArrayDataset, ArrayDataset, ArrayDataset]:
        """Standard train/val/test triple from independent streams."""
        return (
            self.dataset(n_train, "train"),
            self.dataset(n_val, "val"),
            self.dataset(n_test, "test"),
        )


def _hsv_to_rgb(hue: float, saturation: float, value: float) -> np.ndarray:
    """Scalar HSV→RGB conversion returning a float32 (3,) vector."""
    hue = hue % 1.0
    sector = int(hue * 6.0) % 6
    fraction = hue * 6.0 - int(hue * 6.0)
    p = value * (1.0 - saturation)
    q = value * (1.0 - saturation * fraction)
    t = value * (1.0 - saturation * (1.0 - fraction))
    table = {
        0: (value, t, p),
        1: (q, value, p),
        2: (p, value, t),
        3: (p, q, value),
        4: (t, p, value),
        5: (value, p, q),
    }
    return np.asarray(table[sector], dtype=np.float32)
