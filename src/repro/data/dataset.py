"""Dataset abstractions."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["Dataset", "ArrayDataset", "Subset", "TransformedDataset"]


class Dataset:
    """Minimal dataset interface: length plus indexed (image, label) access."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        raise NotImplementedError

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialise the whole dataset as (images, labels) arrays."""
        images = []
        labels = []
        for index in range(len(self)):
            image, label = self[index]
            images.append(image)
            labels.append(label)
        return np.stack(images).astype(np.float32), np.asarray(labels, dtype=np.int64)


class ArrayDataset(Dataset):
    """Wraps in-memory (images, labels) arrays."""

    def __init__(self, images: np.ndarray, labels: np.ndarray):
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if images.shape[0] != labels.shape[0]:
            raise ValueError(
                f"images and labels disagree on sample count: "
                f"{images.shape[0]} vs {labels.shape[0]}"
            )
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self.images, self.labels


class Subset(Dataset):
    """A view of another dataset restricted to the given indices."""

    def __init__(self, base: Dataset, indices: Sequence[int]):
        self.base = base
        self.indices = [int(i) for i in indices]
        n = len(base)
        for i in self.indices:
            if not 0 <= i < n:
                raise IndexError(f"index {i} out of range for dataset of size {n}")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.base[self.indices[index]]


class TransformedDataset(Dataset):
    """Applies an image transform lazily on access (for augmentation)."""

    def __init__(
        self, base: Dataset, transform: Callable[[np.ndarray], np.ndarray]
    ):
        self.base = base
        self.transform = transform

    def __len__(self) -> int:
        return len(self.base)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        image, label = self.base[index]
        return self.transform(image), label
