"""Property tests for the shared-memory tensor plane (hypothesis).

The executor ships campaign state through one shared-memory segment per
host (see :mod:`repro.utils.shm`).  Two contracts are pinned here: the
byte transport's round-trip is the exact identity for arbitrary
payloads — any dtype, any shape — with an inline fallback when shared
memory is unavailable; and the *tensor plane* reconstructs packed
objects as zero-copy read-only views (writable private copies under
``REPRO_NO_SHM_VIEWS=1``), bit-equal to the originals in every mode.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils import shm
from repro.utils.shm import (
    PackedUnit,
    ShippedBytes,
    pack_object,
    ship_bytes,
    ship_units,
    shared_memory_available,
    shm_views_disabled,
)

DTYPES = (
    np.float32,
    np.float64,
    np.int8,
    np.uint8,
    np.int16,
    np.int32,
    np.int64,
    np.uint32,
    np.complex64,
    np.bool_,
)


def _roundtrip(blob: bytes) -> bytes:
    """Parent ships the blob; a "worker" opens the address and reads it."""
    shipment = ship_bytes(blob)
    try:
        # The address must survive pickling: it travels to workers
        # through the pool initializer's arguments.
        ref = pickle.loads(pickle.dumps(shipment.ref))
        view = ref.open()
        try:
            return bytes(view.buffer)
        finally:
            view.close()
    finally:
        shipment.release()


class TestSharedMemoryRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        dtype_index=st.integers(0, len(DTYPES) - 1),
        shape=st.lists(st.integers(0, 7), min_size=0, max_size=4),
    )
    def test_arbitrary_arrays_survive_attach_detach(self, seed, dtype_index, shape):
        """Any dtype/shape pickles through the segment unchanged."""
        rng = np.random.default_rng(seed)
        dtype = DTYPES[dtype_index]
        array = (rng.standard_normal(shape) * 64).astype(dtype)
        blob = pickle.dumps(array)
        restored = pickle.loads(_roundtrip(blob))
        assert restored.dtype == array.dtype
        assert restored.shape == array.shape
        np.testing.assert_array_equal(restored, array)

    @settings(max_examples=25, deadline=None)
    @given(data=st.binary(min_size=0, max_size=4096))
    def test_raw_bytes_identity(self, data):
        assert _roundtrip(data) == data

    def test_sliced_reads_match_offsets(self):
        """The executor concatenates per-task blobs and reads by span."""
        blobs = [pickle.dumps(np.arange(n, dtype=np.int64)) for n in (3, 0, 17)]
        spans, offset = [], 0
        for blob in blobs:
            spans.append((offset, offset + len(blob)))
            offset += len(blob)
        shipment = ship_bytes(b"".join(blobs))
        try:
            view = shipment.ref.open()
            try:
                for (start, end), blob in zip(spans, blobs):
                    restored = pickle.loads(view.buffer[start:end])
                    np.testing.assert_array_equal(restored, pickle.loads(blob))
            finally:
                view.close()
        finally:
            shipment.release()

    def test_nonempty_payload_prefers_shared_memory(self):
        if not shared_memory_available():  # pragma: no cover - always true on Linux
            pytest.skip("platform without shared memory")
        shipment = ship_bytes(b"x" * 128)
        try:
            assert shipment.ref.via_shared_memory
            assert shipment.ref.inline is None
            assert shipment.ref.size == 128
        finally:
            shipment.release()

    def test_release_is_idempotent(self):
        shipment = ship_bytes(b"payload")
        shipment.release()
        shipment.release()  # second release must not raise

    def test_closed_buffer_rejects_reads(self):
        shipment = ship_bytes(b"payload")
        try:
            view = shipment.ref.open()
            view.close()
            with pytest.raises(ValueError):
                view.buffer
        finally:
            shipment.release()


class TestInlineFallback:
    @settings(max_examples=15, deadline=None)
    @given(data=st.binary(min_size=0, max_size=1024))
    def test_fallback_when_shared_memory_missing(self, data):
        """With shared memory patched away, bytes travel inline.

        Patched by hand (not the monkeypatch fixture): hypothesis runs
        many examples per test call and function-scoped fixtures would
        not reset between them.
        """
        original = shm._shared_memory
        shm._shared_memory = None
        try:
            shipment = ship_bytes(data)
            assert not shipment.ref.via_shared_memory
            assert shipment.ref.inline == data
            view = shipment.ref.open()
            assert bytes(view.buffer) == data
            view.close()
            shipment.release()
        finally:
            shm._shared_memory = original

    def test_fallback_when_segment_creation_fails(self, monkeypatch):
        class _FailingSharedMemory:
            def __init__(self, *args, **kwargs):
                raise OSError("no /dev/shm")

        class _Module:
            SharedMemory = _FailingSharedMemory

        monkeypatch.setattr(shm, "_shared_memory", _Module)
        shipment = ship_bytes(b"payload")
        assert not shipment.ref.via_shared_memory
        assert bytes(shipment.ref.open().buffer) == b"payload"

    def test_empty_payload_ships_inline(self):
        shipment = ship_bytes(b"")
        assert not shipment.ref.via_shared_memory
        assert bytes(shipment.ref.open().buffer) == b""

    def test_parallel_campaign_bit_identical_without_shared_memory(
        self, monkeypatch
    ):
        """The executor's fallback path: same curves, inline transport."""
        import repro.utils.shm as shm_module
        from repro.core.campaign import CampaignConfig, run_campaign
        from repro.hw.memory import WeightMemory
        from repro.models import MLP

        monkeypatch.setattr(shm_module, "_shared_memory", None)
        rng = np.random.default_rng(0)
        model = MLP(3 * 8 * 8, 10, hidden=(16,), seed=1)
        model.eval()
        images = rng.standard_normal((32, 3, 8, 8)).astype(np.float32)
        labels = rng.integers(0, 10, 32)
        memory = WeightMemory.from_model(model)
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=2, seed=9)
        serial = run_campaign(model, memory, images, labels, config)
        parallel = run_campaign(model, memory, images, labels, config, workers=2)
        np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)


class TestShippedBytesContract:
    def test_inline_ref_roundtrips_through_pickle(self):
        ref = ShippedBytes(segment=None, size=3, inline=b"abc")
        clone = pickle.loads(pickle.dumps(ref))
        assert clone == ref
        assert bytes(clone.open().buffer) == b"abc"


def _sample_payload(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "weights": rng.standard_normal((6, 4)).astype(np.float32),
        "bias": rng.standard_normal(4).astype(np.float32),
        "labels": rng.integers(0, 10, 16),
        "name": "unit-under-test",
        "scale": 0.5,
    }


class TestTensorPlane:
    def test_packed_unit_extracts_buffers_out_of_band(self):
        unit = pack_object(_sample_payload())
        assert isinstance(unit, PackedUnit)
        assert len(unit.buffers) == 3  # one per contiguous array
        assert unit.nbytes > len(unit.stream)

    def test_crc_covers_tensor_content(self):
        payload = _sample_payload()
        baseline = pack_object(payload).crc32()
        assert pack_object(_sample_payload()).crc32() == baseline
        payload["weights"][0, 0] += 1.0
        assert pack_object(payload).crc32() != baseline

    def test_unpack_copy_is_private_and_writable(self):
        payload = _sample_payload()
        copy = pack_object(payload).unpack_copy()
        np.testing.assert_array_equal(copy["weights"], payload["weights"])
        assert copy["weights"].flags.writeable
        assert not np.shares_memory(copy["weights"], payload["weights"])

    def test_shipped_plane_loads_read_only_views(self):
        """The zero-copy contract: mapped arrays are bit-equal, read-only."""
        payload = _sample_payload()
        shipment = ship_units([("task/0", pack_object(payload))])
        try:
            ref = pickle.loads(pickle.dumps(shipment.ref))  # worker transit
            assert ref.names() == ["task/0"]
            view = ref.open()
            try:
                loaded = view.load("task/0")
                for key in ("weights", "bias", "labels"):
                    np.testing.assert_array_equal(loaded[key], payload[key])
                    assert not loaded[key].flags.writeable
                assert loaded["name"] == payload["name"]
                with pytest.raises(ValueError):
                    loaded["weights"][0, 0] = 1.0
                del loaded
            finally:
                view.close()
        finally:
            shipment.release()

    def test_copy_mode_yields_writable_private_arrays(self):
        payload = _sample_payload()
        shipment = ship_units([("task/0", pack_object(payload))])
        try:
            view = shipment.ref.open()
            try:
                loaded = view.load("task/0", copy=True)
                np.testing.assert_array_equal(loaded["weights"], payload["weights"])
                assert loaded["weights"].flags.writeable
                loaded["weights"][0, 0] += 1.0  # must not raise
            finally:
                view.close()
        finally:
            shipment.release()

    def test_no_shm_views_env_switches_default_to_copies(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM_VIEWS", "1")
        assert shm_views_disabled()
        shipment = ship_units([("task/0", pack_object(_sample_payload()))])
        try:
            view = shipment.ref.open()
            try:
                assert view.load("task/0")["weights"].flags.writeable
            finally:
                view.close()
        finally:
            shipment.release()
        monkeypatch.setenv("REPRO_NO_SHM_VIEWS", "0")
        assert not shm_views_disabled()

    def test_inline_fallback_still_serves_views(self, monkeypatch):
        """Without shared memory the plane travels inline, same contract."""
        monkeypatch.setattr(shm, "_shared_memory", None)
        payload = _sample_payload()
        shipment = ship_units([("task/0", pack_object(payload))])
        try:
            assert not shipment.ref.via_shared_memory
            view = shipment.ref.open()
            try:
                loaded = view.load("task/0")
                np.testing.assert_array_equal(loaded["weights"], payload["weights"])
                assert not loaded["weights"].flags.writeable
            finally:
                view.close()
        finally:
            shipment.release()

    def test_multiple_units_load_independently(self):
        units = [
            (f"task/{i}", pack_object(_sample_payload(seed=i))) for i in range(3)
        ]
        shipment = ship_units(units)
        try:
            view = shipment.ref.open()
            try:
                assert "task/2" in view and "missing" not in view
                for i in (2, 0, 1):  # any order
                    loaded = view.load(f"task/{i}")
                    expected = _sample_payload(seed=i)
                    np.testing.assert_array_equal(
                        loaded["weights"], expected["weights"]
                    )
                # Views must die before the detach (the executor drops
                # its runner before closing the old generation's plane).
                del loaded
            finally:
                view.close()
        finally:
            shipment.release()

    def test_closed_view_rejects_loads(self):
        shipment = ship_units([("task/0", pack_object(_sample_payload()))])
        try:
            view = shipment.ref.open()
            view.close()
            view.close()  # idempotent
            with pytest.raises(ValueError):
                view.load("task/0")
        finally:
            shipment.release()

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        dtype_index=st.integers(0, len(DTYPES) - 1),
        shape=st.lists(st.integers(0, 7), min_size=0, max_size=4),
    )
    def test_arbitrary_arrays_roundtrip_as_views(self, seed, dtype_index, shape):
        """Any dtype/shape maps through the plane bit-exactly."""
        rng = np.random.default_rng(seed)
        array = (rng.standard_normal(shape) * 64).astype(DTYPES[dtype_index])
        shipment = ship_units([("unit", pack_object(array))])
        try:
            view = shipment.ref.open()
            try:
                loaded = view.load("unit", copy=False)
                assert loaded.dtype == array.dtype
                assert loaded.shape == array.shape
                np.testing.assert_array_equal(loaded, array)
                del loaded
            finally:
                view.close()
        finally:
            shipment.release()
