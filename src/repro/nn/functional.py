"""Low-level array operations shared by the NN layers.

The convolution layers use the classic im2col/col2im lowering: convolution
becomes one large matrix multiply, which is the only way to get acceptable
throughput out of pure numpy on a CPU.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_size",
    "pad_nchw",
    "im2col",
    "col2im",
    "softmax",
    "log_softmax",
    "one_hot",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size: input={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def pad_nchw(x: np.ndarray, padding: tuple[int, int]) -> np.ndarray:
    """Zero-pad the two spatial axes of an NCHW tensor."""
    pad_h, pad_w = padding
    if pad_h == 0 and pad_w == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))


def im2col(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
) -> tuple[np.ndarray, tuple[int, int]]:
    """Lower an NCHW tensor into patch-matrix form.

    Returns ``(cols, (out_h, out_w))`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kh * kw)``: one row per output pixel, one
    column per weight of the receptive field.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    out_h = conv_output_size(h, kh, sh, padding[0])
    out_w = conv_output_size(w, kw, sw, padding[1])
    padded = pad_nchw(x, padding)

    # Strided sliding-window view: (N, C, out_h, out_w, kh, kw), no copy.
    ns, cs, hs, ws = padded.strides
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(ns, cs, hs * sh, ws * sw, hs, ws),
        writeable=False,
    )
    # Reorder to (N, out_h, out_w, C, kh, kw) then flatten.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
) -> np.ndarray:
    """Scatter-add the inverse of :func:`im2col` (used by conv backward)."""
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    pad_h, pad_w = padding
    out_h = conv_output_size(h, kh, sh, pad_h)
    out_w = conv_output_size(w, kw, sw, pad_w)

    padded = np.zeros((n, c, h + 2 * pad_h, w + 2 * pad_w), dtype=cols.dtype)
    patches = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    # Accumulate each kernel offset in a vectorised slice-add.
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += patches[:, :, :, :, i, j]
    if pad_h == 0 and pad_w == 0:
        return padded
    return padded[:, :, pad_h : pad_h + h, pad_w : pad_w + w]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to one-hot float32 ``(N, num_classes)``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
