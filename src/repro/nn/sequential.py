"""Sequential container with layer replacement support.

Layer replacement (``replace``) is what the FT-ClipAct methodology uses to
swap unbounded activations for clipped ones without rebuilding the model.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.module import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Run child modules in order; backward chains them in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        for index, layer in enumerate(layers):
            if not isinstance(layer, Module):
                raise TypeError(
                    f"Sequential layers must be Modules, got "
                    f"{type(layer).__name__} at position {index}"
                )
            setattr(self, str(index), layer)

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return self._modules[str(self._normalize_index(index))]

    def _normalize_index(self, index: int) -> int:
        length = len(self._modules)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"index {index} out of range for {length} layers")
        return index

    def append(self, layer: Module) -> "Sequential":
        """Add a layer at the end; returns self for chaining."""
        if not isinstance(layer, Module):
            raise TypeError(f"expected a Module, got {type(layer).__name__}")
        setattr(self, str(len(self._modules)), layer)
        return self

    def replace(self, index: int, layer: Module) -> Module:
        """Swap the layer at ``index`` for ``layer``; returns the old layer."""
        if not isinstance(layer, Module):
            raise TypeError(f"expected a Module, got {type(layer).__name__}")
        index = self._normalize_index(index)
        old = self._modules[str(index)]
        layer.train(self.training)
        setattr(self, str(index), layer)
        return old

    def index_of(self, layer: Module) -> int:
        """Position of ``layer`` (by identity); raises ValueError if absent."""
        for index, candidate in enumerate(self._modules.values()):
            if candidate is layer:
                return index
        raise ValueError("layer is not a direct child of this Sequential")

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self._modules.values():
            out = layer(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(list(self._modules.values())):
            grad = layer.backward(grad)
        return grad
