"""Append-only columnar per-cell result store.

Campaign output used to be aggregate JSON per scenario: once a sweep
finished, the per-cell record (which trial, which seed path, which
outcome) was gone, and every new metric meant re-running the
Monte-Carlo sweep.  This module keeps the cells.

One :class:`CellRecord` describes one *logical* campaign cell — a
``(scenario, rate_index, trial)`` coordinate with its accuracy, outcome
class, engine provenance (seed, batch_k, importance weight) and, for
quarantined cells, the failure fields of
:data:`~repro.core.executor.FAILED_CELL_FIELDS`.  The schema is fixed:
:data:`CELL_COLUMNS` is the single source of truth, mirrored by the
store-schema table in ``docs/RESULTS.md`` and enforced both directions
by ``tests/test_docs_consistency.py``.

Records flow through two representations:

* **Segments** (:class:`SegmentRecorder`, :func:`read_segment`) — an
  append-only JSON-lines file written incrementally while a run
  executes, one line per record, flushed per cell.  A killed run keeps
  every completed cell; a resumed run appends its replayed cells again
  and canonicalization collapses the duplicates (which must be
  bit-identical — re-recording is itself a determinism check).
* **The canonical store** (:class:`CellStore`, :data:`STORE_FILENAME`)
  — a self-contained binary *columnar* file: a JSON header (format
  version, row count, per-column dtype and dictionary) followed by one
  contiguous little-endian buffer per column, strings
  dictionary-encoded.  Canonical order is content-only (scenario name,
  rate index, trial), so the bytes are invariant to shard count,
  completion order and worker count — ``repro merge`` of an N-way
  sharded run reproduces the unsharded store byte for byte.

:func:`store_from_results` derives the canonical store from assembled
:class:`~repro.scenarios.compile.ScenarioResult` objects; the property
tests assert it equals the store reassembled from the incrementally
written segments, and that aggregates recomputed from the cells match
the scenario JSON exactly.  See ``docs/RESULTS.md``.
"""

from __future__ import annotations

import json
import math
import os
import struct
from dataclasses import dataclass, fields
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.executor import CellResult
    from repro.scenarios.compile import ScenarioResult
    from repro.scenarios.spec import CampaignSpec

__all__ = [
    "STORE_FORMAT_VERSION",
    "STORE_DIRNAME",
    "STORE_FILENAME",
    "SEGMENT_FILENAME",
    "SHARD_SEGMENT_FILENAME",
    "segment_path",
    "CELL_COLUMNS",
    "OUTCOME_CLASSES",
    "CellRecord",
    "CellStore",
    "SegmentRecorder",
    "read_segment",
    "read_segments",
    "records_from_value",
    "records_from_failure",
    "store_from_results",
    "store_path",
    "write_store",
    "read_store",
]

# Bumped when the record schema or container layout changes
# incompatibly; readers refuse other formats.
STORE_FORMAT_VERSION = 1

# Layout inside a run directory: run/store/cells.rcs (canonical) plus
# the incrementally appended run/store/segment.jsonl (unsharded runs)
# or shards/<i>-of-<N>/partial/cells.jsonl (one segment per shard).
STORE_DIRNAME = "store"
STORE_FILENAME = "cells.rcs"
SEGMENT_FILENAME = "segment.jsonl"
SHARD_SEGMENT_FILENAME = "cells.jsonl"

_MAGIC = b"RCSTORE1"

# Outcome class of one logical cell:
#   ok      - the cell executed and its accuracy is recorded
#   failed  - the cell was quarantined (supervised executor; the
#             reason/attempts/error fields carry the failure)
#   skipped - an adaptive family stopped before reaching this trial
OUTCOME_CLASSES = ("ok", "failed", "skipped")

# The fixed per-cell schema: column name -> (dtype, meaning).  Dtypes
# are "str" (dictionary-encoded int32 codes), "int" (int64) and
# "float" (float64, NaN-preserving).  The store-schema table in
# docs/RESULTS.md mirrors these rows and tests/test_docs_consistency.py
# enforces the match both directions.
CELL_COLUMNS = {
    "scenario": ("str", "owning scenario name (unique within a run)"),
    "campaign": ("str", "campaign kind: weight, quantized or activation"),
    "variant": ("str", "mitigation variant the cell ran under"),
    "fault_model": ("str", "fault-model name from the spec"),
    "mode": ("str", "execution mode: exact or adaptive"),
    "rate_index": ("int", "index into the scenario's fault-rate grid"),
    "fault_rate": ("float", "fault rate of the cell's rate family"),
    "trial": ("int", "trial index inside the rate family"),
    "seed": ("int", "spec seed; the cell RNG path is rate/<i>/trial/<t>"),
    "batch_k": ("int", "batched-kernel chunk width the spec requested"),
    "outcome": ("str", "outcome class: ok, failed or skipped"),
    "accuracy": ("float", "cell accuracy (NaN unless the outcome is ok)"),
    "weight": (
        "float",
        "importance weight of the trial (1.0 unweighted; NaN unless ok)",
    ),
    "reason": ("str", "failure reason of a failed cell ('' otherwise)"),
    "attempts": ("int", "dispatch attempts behind a failed cell (0 otherwise)"),
    "error": ("str", "rendering of a failed cell's last error ('' otherwise)"),
}

_KINDS = {"str", "int", "float"}


def _canonical_float(value: Any) -> float:
    """A float with one NaN representation, so equality is bytewise."""
    value = float(value)
    return float("nan") if math.isnan(value) else value


@dataclass(frozen=True)
class CellRecord:
    """One logical campaign cell, in :data:`CELL_COLUMNS` order.

    Equality treats NaN as equal to NaN (records are compared for
    byte-level determinism, not IEEE arithmetic), which :meth:`sort_key`
    and the bit-pattern float packing below make exact.
    """

    scenario: str
    campaign: str
    variant: str
    fault_model: str
    mode: str
    rate_index: int
    fault_rate: float
    trial: int
    seed: int
    batch_k: int
    outcome: str
    accuracy: float
    weight: float
    reason: str = ""
    attempts: int = 0
    error: str = ""

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOME_CLASSES:
            raise ValueError(
                f"outcome must be one of {OUTCOME_CLASSES}, "
                f"got {self.outcome!r}"
            )
        for name, (kind, _) in CELL_COLUMNS.items():
            value = getattr(self, name)
            if kind == "str":
                object.__setattr__(self, name, str(value))
            elif kind == "int":
                object.__setattr__(self, name, int(value))
            else:
                object.__setattr__(self, name, _canonical_float(value))
        if self.rate_index < 0 or self.trial < 0 or self.attempts < 0:
            raise ValueError(
                "rate_index, trial and attempts must be non-negative"
            )

    def sort_key(self) -> "tuple[str, int, int]":
        """Canonical, content-only store order."""
        return (self.scenario, self.rate_index, self.trial)

    def _packed(self) -> tuple:
        return tuple(
            struct.pack("<d", getattr(self, name))
            if kind == "float"
            else getattr(self, name)
            for name, (kind, _) in CELL_COLUMNS.items()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CellRecord):
            return NotImplemented
        return self._packed() == other._packed()

    def __hash__(self) -> int:
        return hash(self._packed())

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready mapping (one segment line)."""
        return {name: getattr(self, name) for name in CELL_COLUMNS}

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "CellRecord":
        unknown = set(mapping) - set(CELL_COLUMNS)
        if unknown:
            raise ValueError(
                f"unknown cell-record field(s) {sorted(unknown)}; the "
                f"schema is {sorted(CELL_COLUMNS)}"
            )
        missing = set(CELL_COLUMNS) - set(mapping)
        if missing:
            raise ValueError(
                f"cell record is missing field(s) {sorted(missing)}"
            )
        return cls(**{name: mapping[name] for name in CELL_COLUMNS})


assert {f.name for f in fields(CellRecord)} == set(CELL_COLUMNS), (
    "CellRecord fields and CELL_COLUMNS must stay in lockstep"
)


class CellStore:
    """An ordered collection of :class:`CellRecord` rows.

    The in-memory facade over both representations: build one from
    records (``CellStore(records)``), from segments
    (:func:`read_segments`) or from a canonical file (:meth:`read`);
    :meth:`canonical` sorts and deduplicates; :meth:`to_bytes` emits
    the deterministic columnar container.
    """

    def __init__(self, records: "Iterable[CellRecord]" = ()):
        self.records: "list[CellRecord]" = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CellStore):
            return NotImplemented
        return self.records == other.records

    def append(self, record: CellRecord) -> None:
        self.records.append(record)

    def extend(self, records: "Iterable[CellRecord]") -> None:
        self.records.extend(records)

    # ------------------------------------------------------------------ #
    # canonicalization
    # ------------------------------------------------------------------ #

    def canonical(self) -> "CellStore":
        """Sort into content order and collapse duplicate coordinates.

        Duplicates appear when a resumed run re-records checkpointed
        cells, or when a quarantined cell is re-executed by a later
        resume.  The rules: an executed (``ok``/``skipped``) record
        beats a ``failed`` one for the same coordinate; duplicate
        executed records must be identical (anything else means the
        run was *not* deterministic and is an error worth raising);
        among ``failed`` duplicates the last appended wins (the most
        recent attempt).
        """
        chosen: "dict[tuple, CellRecord]" = {}
        for record in self.records:
            key = record.sort_key()
            existing = chosen.get(key)
            if existing is None:
                chosen[key] = record
                continue
            if existing.outcome != "failed" and record.outcome != "failed":
                if existing != record:
                    raise ValueError(
                        f"conflicting records for cell {key}: the run "
                        "re-recorded a cell with different content, "
                        "which breaks the determinism contract"
                    )
                continue
            if existing.outcome == "failed":
                # ok/skipped beats failed; a newer failed beats older.
                chosen[key] = record
        return CellStore(
            sorted(chosen.values(), key=CellRecord.sort_key)
        )

    def scenarios(self) -> "list[str]":
        """Distinct scenario names, in first-appearance order."""
        seen: "dict[str, None]" = {}
        for record in self.records:
            seen.setdefault(record.scenario, None)
        return list(seen)

    def select(self, **equals: Any) -> "CellStore":
        """Rows whose columns equal the given values (column=value)."""
        unknown = set(equals) - set(CELL_COLUMNS)
        if unknown:
            raise ValueError(f"unknown column(s) {sorted(unknown)}")
        return CellStore(
            record
            for record in self.records
            if all(
                getattr(record, name) == value
                for name, value in equals.items()
            )
        )

    def column(self, name: str) -> "list[Any]":
        """One column as a plain list, in row order."""
        if name not in CELL_COLUMNS:
            raise ValueError(f"unknown column {name!r}")
        return [getattr(record, name) for record in self.records]

    def outcome_counts(self) -> "dict[str, int]":
        counts = {outcome: 0 for outcome in OUTCOME_CLASSES}
        for record in self.records:
            counts[record.outcome] += 1
        return counts

    # ------------------------------------------------------------------ #
    # the columnar container
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        """The canonical columnar container (deterministic bytes)."""
        columns: "list[dict[str, Any]]" = []
        payloads: "list[bytes]" = []
        for name, (kind, _) in CELL_COLUMNS.items():
            values = [getattr(record, name) for record in self.records]
            meta: "dict[str, Any]" = {"name": name, "kind": kind}
            if kind == "str":
                uniques = sorted(set(values))
                codes = {value: index for index, value in enumerate(uniques)}
                meta["values"] = uniques
                payloads.append(
                    b"".join(
                        struct.pack("<i", codes[value]) for value in values
                    )
                )
            elif kind == "int":
                payloads.append(
                    b"".join(struct.pack("<q", value) for value in values)
                )
            else:
                payloads.append(
                    b"".join(struct.pack("<d", value) for value in values)
                )
            columns.append(meta)
        header = json.dumps(
            {
                "format": STORE_FORMAT_VERSION,
                "count": len(self.records),
                "columns": columns,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        return b"".join(
            [_MAGIC, struct.pack("<q", len(header)), header, *payloads]
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CellStore":
        if blob[: len(_MAGIC)] != _MAGIC:
            raise ValueError(
                "not a repro cell store (bad magic); expected a "
                f"{STORE_FILENAME} file"
            )
        offset = len(_MAGIC)
        (header_len,) = struct.unpack_from("<q", blob, offset)
        offset += 8
        header = json.loads(blob[offset : offset + header_len].decode("utf-8"))
        offset += header_len
        if header.get("format") != STORE_FORMAT_VERSION:
            raise ValueError(
                f"cell store format {header.get('format')!r} is not "
                f"readable by this code (format {STORE_FORMAT_VERSION})"
            )
        if [c["name"] for c in header["columns"]] != list(CELL_COLUMNS):
            raise ValueError(
                "cell store columns do not match the CELL_COLUMNS schema"
            )
        count = int(header["count"])
        data: "dict[str, list[Any]]" = {}
        for meta in header["columns"]:
            name, kind = meta["name"], meta["kind"]
            if kind != CELL_COLUMNS[name][0]:
                raise ValueError(
                    f"column {name!r} has kind {kind!r}, expected "
                    f"{CELL_COLUMNS[name][0]!r}"
                )
            if kind == "str":
                uniques = list(meta["values"])
                codes = struct.unpack_from(f"<{count}i", blob, offset)
                offset += 4 * count
                data[name] = [uniques[code] for code in codes]
            elif kind == "int":
                data[name] = list(struct.unpack_from(f"<{count}q", blob, offset))
                offset += 8 * count
            else:
                data[name] = list(struct.unpack_from(f"<{count}d", blob, offset))
                offset += 8 * count
        if offset != len(blob):
            raise ValueError(
                f"cell store has {len(blob) - offset} trailing byte(s); "
                "the file is corrupt"
            )
        return cls(
            CellRecord(
                **{name: data[name][row] for name in CELL_COLUMNS}
            )
            for row in range(count)
        )

    def write(self, path: "str | Path") -> Path:
        """Atomically write the container (tmp + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(self.to_bytes())
        os.replace(tmp, path)
        return path

    @classmethod
    def read(cls, path: "str | Path") -> "CellStore":
        return cls.from_bytes(Path(path).read_bytes())


def store_path(run_dir: "str | Path") -> Path:
    """The canonical store file of a run directory."""
    return Path(run_dir) / STORE_DIRNAME / STORE_FILENAME


def segment_path(run_dir: "str | Path") -> Path:
    """An unsharded run's append-only segment file."""
    return Path(run_dir) / STORE_DIRNAME / SEGMENT_FILENAME


def write_store(store: CellStore, run_dir: "str | Path") -> Path:
    """Canonicalize and write ``store`` into ``run_dir``; returns the path."""
    return store.canonical().write(store_path(run_dir))


def read_store(run_dir: "str | Path") -> CellStore:
    """Read a run directory's canonical store."""
    return CellStore.read(store_path(run_dir))


# --------------------------------------------------------------------- #
# record derivation (shared by the live recorder and result assembly)
# --------------------------------------------------------------------- #


def _spec_fields(spec: "CampaignSpec") -> dict[str, Any]:
    return {
        "scenario": spec.name,
        "campaign": spec.campaign,
        "variant": spec.variant,
        "fault_model": spec.fault_model.name,
        "mode": spec.mode,
        "seed": spec.seed,
        "batch_k": spec.batch_k,
    }


def records_from_value(
    spec: "CampaignSpec",
    rate_index: int,
    trial: int,
    value: "float | Sequence[float]",
) -> "list[CellRecord]":
    """Expand one executed executor cell into logical records.

    Exact-mode cells map one-to-one.  An adaptive cell is the whole
    trial *family* — its vector ``[estimate, executed, acc_0.., w_0..]``
    (see :func:`~repro.core.batched.adaptive_cell_width`) expands into
    one ``ok`` record per executed trial and one ``skipped`` record per
    early-stopped trial.
    """
    base = _spec_fields(spec)
    rate = float(spec.rates[rate_index])
    if spec.mode != "adaptive":
        return [
            CellRecord(
                rate_index=rate_index,
                fault_rate=rate,
                trial=trial,
                outcome="ok",
                accuracy=float(
                    value[0] if isinstance(value, (list, tuple)) else value
                ),
                weight=1.0,
                **base,
            )
        ]
    vector = [float(v) for v in value]
    total = int(spec.trials)
    weighted = spec.importance is not None
    executed = int(vector[1])
    records = []
    for family_trial in range(total):
        if family_trial < executed:
            outcome = "ok"
            accuracy = vector[2 + family_trial]
            weight = vector[2 + total + family_trial] if weighted else 1.0
        else:
            outcome, accuracy, weight = "skipped", float("nan"), float("nan")
        records.append(
            CellRecord(
                rate_index=rate_index,
                fault_rate=rate,
                trial=family_trial,
                outcome=outcome,
                accuracy=accuracy,
                weight=weight,
                **base,
            )
        )
    return records


def records_from_failure(
    spec: "CampaignSpec", failure: Mapping[str, Any]
) -> "list[CellRecord]":
    """Quarantined-cell records from one failed-cell mapping.

    ``failure`` carries the per-cell slice of
    :data:`~repro.core.executor.FAILED_CELL_FIELDS`
    (``rate_index``/``trial``/``reason``/``attempts``/``error``).  For
    adaptive scenarios the executor cell is the whole trial family, so
    every trial of the family is recorded as ``failed`` with the same
    reason — the store needs no side-channel to explain a NaN row.
    """
    base = _spec_fields(spec)
    rate_index = int(failure["rate_index"])
    trials = (
        range(int(spec.trials))
        if spec.mode == "adaptive"
        else (int(failure["trial"]),)
    )
    return [
        CellRecord(
            rate_index=rate_index,
            fault_rate=float(spec.rates[rate_index]),
            trial=trial,
            outcome="failed",
            accuracy=float("nan"),
            weight=float("nan"),
            reason=str(failure.get("reason", "")),
            attempts=int(failure.get("attempts", 0)),
            error=str(failure.get("error", "")),
            **base,
        )
        for trial in trials
    ]


def store_from_results(results: "Sequence[ScenarioResult]") -> CellStore:
    """The canonical store as a pure function of assembled results.

    The assembly-side twin of the live :class:`SegmentRecorder`: every
    logical cell of every scenario becomes exactly one record, derived
    from the result's curve/adaptive grids and its quarantined-cell
    list.  Because merged results are bit-identical to unsharded ones,
    so is the store this returns.
    """
    store = CellStore()
    for result in results:
        spec = result.spec
        failed = {
            (int(cell["rate_index"]), int(cell["trial"])): cell
            for cell in result.failed
        }
        if result.adaptive is not None:
            adaptive = result.adaptive
            for rate_index in range(len(spec.rates)):
                failure = failed.get((rate_index, 0))
                if failure is not None:
                    store.extend(records_from_failure(spec, failure))
                    continue
                executed = int(adaptive.executed[rate_index])
                vector = [float("nan")] * (
                    2 + spec.trials * (2 if adaptive.weights is not None else 1)
                )
                vector[0] = float(adaptive.estimates[rate_index])
                vector[1] = float(executed)
                for t in range(executed):
                    vector[2 + t] = float(adaptive.accuracies[rate_index, t])
                    if adaptive.weights is not None:
                        vector[2 + spec.trials + t] = float(
                            adaptive.weights[rate_index, t]
                        )
                store.extend(
                    records_from_value(spec, rate_index, 0, vector)
                )
        else:
            for rate_index in range(len(spec.rates)):
                for trial in range(spec.trials):
                    failure = failed.get((rate_index, trial))
                    if failure is not None:
                        store.extend(records_from_failure(spec, failure))
                    else:
                        store.extend(
                            records_from_value(
                                spec,
                                rate_index,
                                trial,
                                float(result.curve.accuracies[rate_index, trial]),
                            )
                        )
    return store.canonical()


# --------------------------------------------------------------------- #
# the live segment recorder (executor hook)
# --------------------------------------------------------------------- #


class SegmentRecorder:
    """Executor recorder streaming one JSONL line per logical cell.

    Plugged into :class:`~repro.core.executor.CampaignExecutor` via its
    ``recorder`` parameter: :meth:`cell` fires for every completed (or
    checkpoint-replayed) executor cell, :meth:`failure` for every
    quarantined one.  ``specs`` is parallel to the executor's task
    indices, so the recorder can expand adaptive family vectors and
    stamp spec provenance without side channels.  Lines are flushed per
    record — a killed run keeps every completed cell on disk.
    """

    def __init__(
        self, path: "str | Path", specs: "Sequence[CampaignSpec]"
    ):
        self.path = Path(path)
        self.specs = list(specs)
        self._handle = None

    def _open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _write(self, records: "Iterable[CellRecord]") -> None:
        handle = self._open()
        for record in records:
            handle.write(
                json.dumps(record.to_dict(), sort_keys=True) + "\n"
            )
        handle.flush()

    def cell(self, result: "CellResult") -> None:
        if result.failed:
            return  # the failure() callback carries the full record
        spec = self.specs[result.campaign_index]
        value: "float | tuple[float, ...]" = (
            result.values if result.values is not None else result.accuracy
        )
        self._write(
            records_from_value(spec, result.rate_index, result.trial, value)
        )

    def failure(self, record: Mapping[str, Any]) -> None:
        spec = self.specs[int(record["task_index"])]
        self._write(records_from_failure(spec, record))

    def close(self) -> None:
        if self._handle is not None:
            handle, self._handle = self._handle, None
            handle.close()

    def __enter__(self) -> "SegmentRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_segment(path: "str | Path") -> CellStore:
    """All records of one append-only segment file, in append order."""
    store = CellStore()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                store.append(CellRecord.from_dict(json.loads(line)))
            except (ValueError, TypeError) as error:
                raise ValueError(
                    f"{path}:{line_number}: bad cell record ({error})"
                ) from error
    return store


def read_segments(paths: "Iterable[str | Path]") -> CellStore:
    """Concatenate several segments (e.g. one per shard), uncanonicalized."""
    store = CellStore()
    for path in paths:
        store.extend(read_segment(path))
    return store
