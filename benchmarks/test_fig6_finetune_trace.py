"""Paper Fig. 6: the threshold fine-tuning algorithm iterating on CONV-4.

The paper illustrates Algorithm 1's interval search over four iterations:
each panel shows the current search interval split into three equal
sub-intervals, the AUC at the four boundaries, and the selected region.
We regenerate the same trace (on the scaled AlexNet) and check the
algorithm's contract: intervals nest and shrink, and the returned
threshold is the best boundary evaluated.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.campaign import CampaignConfig
from repro.core.finetune import FineTuneConfig, fine_tune_threshold, make_layer_auc_evaluator
from repro.core.swap import swap_activations
from repro.experiments import clone_model
from repro.hw.memory import WeightMemory

LAYER = "CONV-4"
ITERATIONS = 4  # the paper's Fig. 6 shows four


def test_fig6_interval_search_trace(
    benchmark, alexnet_bundle, alexnet_hardened, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    images, labels = images[:128], labels[:128]
    _, _, act_max = alexnet_hardened

    model = clone_model(alexnet_bundle)
    swap_activations(model, act_max)
    memory = WeightMemory.from_model(model, layers=[LAYER])
    config = CampaignConfig(
        fault_rates=tuple(np.logspace(-5, -3, 4)), trials=3, seed=6
    )
    evaluator = make_layer_auc_evaluator(
        model, LAYER, memory, images, labels, config
    )

    result = run_once(
        benchmark,
        lambda: fine_tune_threshold(
            evaluator,
            act_max=act_max[LAYER],
            config=FineTuneConfig(
                max_iterations=ITERATIONS, min_iterations=ITERATIONS, tolerance=0.0
            ),
            layer_name=LAYER,
        ),
    )

    rows = []
    for step in result.trace:
        rows.append(
            [
                step.iteration,
                "[" + ", ".join(f"{b:.3f}" for b in step.boundaries) + "]",
                "[" + ", ".join(f"{a:.4f}" for a in step.auc_values) + "]",
                f"T{step.best_index + 1}",
                f"[{step.interval[0]:.3f}, {step.interval[1]:.3f}]",
            ]
        )
    footer = (
        f"\nfinal threshold T = {result.threshold:.4f} "
        f"(ACT_max {result.act_max:.4f}), AUC = {result.auc:.4f}, "
        f"{result.evaluations} AUC evaluations"
    )
    record_result(
        "fig6_finetune_trace",
        format_table(
            ["iter", "boundaries T1..T4", "AUC(T1..T4)", "best", "next interval"],
            rows,
            title=f"Fig. 6 — Algorithm 1 interval search on {LAYER}",
        )
        + footer,
    )

    # Contract checks.
    assert result.iterations == ITERATIONS
    widths = [t.interval[1] - t.interval[0] for t in result.trace]
    assert all(b <= a * (2 / 3) + 1e-9 for a, b in zip(widths, widths[1:]))
    assert 0.0 < result.threshold <= result.act_max
    best_eval = max(max(t.auc_values) for t in result.trace)
    assert result.auc == best_eval
