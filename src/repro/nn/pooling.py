"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import conv_output_size, im2col, col2im
from repro.nn.module import Module
from repro.utils.validation import as_pair

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]


class _Pool2d(Module):
    """Shared bookkeeping for window-based pooling layers."""

    def __init__(
        self,
        kernel_size: "int | tuple[int, int]",
        stride: "int | tuple[int, int] | None" = None,
        padding: "int | tuple[int, int]" = 0,
    ):
        super().__init__()
        self.kernel_size = as_pair("kernel_size", kernel_size)
        self.stride = as_pair("stride", stride) if stride is not None else self.kernel_size
        self.padding = as_pair("padding", padding)
        if min(self.kernel_size) <= 0 or min(self.stride) <= 0:
            raise ValueError("kernel_size and stride must be positive")
        if min(self.padding) < 0:
            raise ValueError(f"padding must be non-negative, got {self.padding}")

    def _windows(self, x: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
        """Lower to per-channel patch rows: (N*C*out_h*out_w, kh*kw)."""
        n, c, h, w = x.shape
        # Treat channels as batch so pooling is per-channel.
        reshaped = x.reshape(n * c, 1, h, w)
        cols, out_hw = im2col(reshaped, self.kernel_size, self.stride, self.padding)
        return cols, out_hw

    def extra_repr(self) -> str:
        return (
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}"
        )


class MaxPool2d(_Pool2d):
    """Max pooling; backward routes gradients to the argmax positions."""

    def __init__(
        self,
        kernel_size: "int | tuple[int, int]",
        stride: "int | tuple[int, int] | None" = None,
        padding: "int | tuple[int, int]" = 0,
    ):
        super().__init__(kernel_size, stride, padding)
        self._argmax: "np.ndarray | None" = None
        self._input_shape: "tuple[int, int, int, int] | None" = None
        self._out_hw: "tuple[int, int] | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4:
            raise ValueError(f"MaxPool2d expects NCHW input, got shape {x.shape}")
        n, c = x.shape[:2]
        cols, (out_h, out_w) = self._windows(x)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        if self.training:
            self._argmax = argmax
            self._input_shape = x.shape  # type: ignore[assignment]
            self._out_hw = (out_h, out_w)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._input_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward in training mode")
        n, c, h, w = self._input_shape
        out_h, out_w = self._out_hw
        grad_flat = np.asarray(grad_output, dtype=np.float32).reshape(-1)
        grad_cols = np.zeros(
            (n * c * out_h * out_w, self.kernel_size[0] * self.kernel_size[1]),
            dtype=np.float32,
        )
        grad_cols[np.arange(grad_cols.shape[0]), self._argmax] = grad_flat
        grad_input = col2im(
            grad_cols, (n * c, 1, h, w), self.kernel_size, self.stride, self.padding
        )
        return grad_input.reshape(n, c, h, w)


class AvgPool2d(_Pool2d):
    """Average pooling; backward spreads gradients uniformly over the window."""

    def __init__(
        self,
        kernel_size: "int | tuple[int, int]",
        stride: "int | tuple[int, int] | None" = None,
        padding: "int | tuple[int, int]" = 0,
    ):
        super().__init__(kernel_size, stride, padding)
        self._input_shape: "tuple[int, int, int, int] | None" = None
        self._out_hw: "tuple[int, int] | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4:
            raise ValueError(f"AvgPool2d expects NCHW input, got shape {x.shape}")
        n, c = x.shape[:2]
        cols, (out_h, out_w) = self._windows(x)
        out = cols.mean(axis=1)
        if self.training:
            self._input_shape = x.shape  # type: ignore[assignment]
            self._out_hw = (out_h, out_w)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward in training mode")
        n, c, h, w = self._input_shape
        window = self.kernel_size[0] * self.kernel_size[1]
        grad_flat = np.asarray(grad_output, dtype=np.float32).reshape(-1, 1)
        grad_cols = np.repeat(grad_flat / window, window, axis=1).astype(np.float32)
        grad_input = col2im(
            grad_cols, (n * c, 1, h, w), self.kernel_size, self.stride, self.padding
        )
        return grad_input.reshape(n, c, h, w)


class GlobalAvgPool2d(Module):
    """Collapse each channel's spatial map to its mean: (N,C,H,W) -> (N,C)."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: "tuple[int, int, int, int] | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4:
            raise ValueError(f"GlobalAvgPool2d expects NCHW input, got shape {x.shape}")
        if self.training:
            self._input_shape = x.shape  # type: ignore[assignment]
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward in training mode")
        n, c, h, w = self._input_shape
        grad = np.asarray(grad_output, dtype=np.float32) / (h * w)
        return np.broadcast_to(grad[:, :, None, None], (n, c, h, w)).astype(np.float32)
