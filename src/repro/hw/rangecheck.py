"""Read-time weight range checking (Ranger-style mitigation baseline).

A complementary mitigation the fault-tolerance literature proposes:
profile each parameter tensor's value range offline, and have the
accelerator's load path *zero any weight outside that range* (a cheap
comparator per read).  Like the paper's clipped activations this needs no
ECC/redundancy — but it acts on weights instead of activations, so it
catches exponent-flip corruption directly at the source while missing
faults whose corrupted value stays within range.

The campaign-level model mirrors :class:`~repro.hw.ecc.ECCFilter`: given
a sampled flip set, weights whose *corrupted* value would leave the
profiled range are zeroed (expressed as stuck-at-0 over the whole word);
in-range corruptions pass through untouched.
"""

from __future__ import annotations

import numpy as np

from repro.hw.bits import WORD_BITS
from repro.hw.faultmodels import OP_FLIP, OP_STUCK0, FaultSet, RandomBitFlip
from repro.hw.memory import WeightMemory
from repro.utils.validation import check_positive

__all__ = ["WeightRangeCheck"]


class WeightRangeCheck:
    """Models a weight memory whose read path zeroes out-of-range values.

    ``margin`` scales the profiled per-region bound: 1.0 means "exactly
    the observed max magnitude"; a slightly larger margin tolerates
    benign drift.
    """

    def __init__(self, memory: WeightMemory, margin: float = 1.0):
        check_positive("margin", margin)
        self.memory = memory
        self.margin = float(margin)
        # Profile the per-region magnitude bound from the current weights.
        self._bounds = {
            region.name: self.margin
            * float(np.abs(region.parameter.data).max() or 1.0)
            for region in memory.regions
        }

    def bounds(self) -> dict[str, float]:
        """Per-region magnitude bounds (for reports)."""
        return dict(self._bounds)

    def filter(self, fault_set: FaultSet) -> FaultSet:
        """Transform raw flips into the effective post-range-check faults.

        Only OP_FLIP entries are range-checked (stuck-at entries model
        permanent cell defects below the read path and pass through).
        """
        if len(fault_set) == 0:
            return fault_set
        flips = fault_set.operations == OP_FLIP
        passthrough = fault_set.subset(~flips)
        flip_set = fault_set.subset(flips)

        surviving_bits: list[np.ndarray] = [passthrough.bit_indices]
        surviving_ops: list[np.ndarray] = [passthrough.operations]

        for region, words, bits in self.memory.locate(flip_set.bit_indices):
            flat = region.parameter.data.reshape(-1)
            # Apply the flips to a scratch copy to see the corrupted values.
            unique_words, inverse = np.unique(words, return_inverse=True)
            scratch = flat[unique_words].copy()
            view = scratch.view(np.uint32)
            for index, word in enumerate(unique_words):
                word_bits = bits[inverse == index]
                mask = np.uint32(0)
                for bit in word_bits:
                    mask |= np.uint32(1) << np.uint32(bit)
                view[index] ^= mask
            with np.errstate(invalid="ignore"):
                corrupted = scratch
                bound = self._bounds[region.name]
                out_of_range = ~np.isfinite(corrupted) | (np.abs(corrupted) > bound)

            # In-range flips pass through unchanged.
            in_range_words = set(unique_words[~out_of_range].tolist())
            keep = np.asarray(
                [word in in_range_words for word in words], dtype=bool
            )
            kept_bits = region.bit_offset + words[keep] * WORD_BITS + bits[keep]
            surviving_bits.append(kept_bits.astype(np.int64))
            surviving_ops.append(np.full(kept_bits.shape, OP_FLIP, dtype=np.uint8))

            # Out-of-range words are zeroed by the read path.
            zeroed_words = unique_words[out_of_range]
            if zeroed_words.size:
                zero_bits = (
                    region.bit_offset
                    + (zeroed_words[:, None] * WORD_BITS + np.arange(WORD_BITS)[None, :])
                ).reshape(-1)
                surviving_bits.append(zero_bits.astype(np.int64))
                surviving_ops.append(
                    np.full(zero_bits.shape, OP_STUCK0, dtype=np.uint8)
                )

        all_bits = np.concatenate(surviving_bits)
        all_ops = np.concatenate(surviving_ops)
        order = np.argsort(all_bits, kind="stable")
        return FaultSet(all_bits[order], all_ops[order])

    def sample_effective(
        self, memory: WeightMemory, fault_rate: float, rng: np.random.Generator
    ) -> FaultSet:
        """Campaign sampler: raw random flips filtered by the range check."""
        if memory is not self.memory:
            raise ValueError("range check is bound to a different memory")
        raw = RandomBitFlip(fault_rate).sample(memory, rng)
        return self.filter(raw)
