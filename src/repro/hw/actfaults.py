"""Transient bit flips in activation memory (feature-map buffers).

The paper injects faults into the *weight* memory; accelerators also
buffer intermediate feature maps in on-chip SRAM, and frameworks like
Ares study upsets there too.  This module adds that fault surface: while
armed, every computational layer's output tensor has random bits flipped
at a per-bit rate before it flows into the following activation function
— so the paper's clipped activations naturally bound this corruption as
well, which the activation-fault benchmark demonstrates.

Activation faults are transient by construction (each forward pass
allocates fresh output buffers), so no undo machinery is needed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro import nn
from repro.hw.bits import WORD_BITS, flip_bits_in_words
from repro.models.registry import computational_layers
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["ActivationFaultInjector", "flip_activation_bits"]


def flip_activation_bits(
    values: np.ndarray, fault_rate: float, rng: np.random.Generator
) -> int:
    """Flip random bits of a float32 activation tensor in place.

    Returns the number of flipped bits.  The tensor must be contiguous
    float32 (which all layer outputs in this framework are).
    """
    check_probability("fault_rate", fault_rate)
    if values.dtype != np.float32:
        raise ValueError(f"activations must be float32, got {values.dtype}")
    if not values.flags["C_CONTIGUOUS"]:
        # reshape(-1) would silently copy and the faults would be lost.
        raise ValueError("activations must be C-contiguous for in-place faults")
    flat = values.reshape(-1)
    total_bits = flat.size * WORD_BITS
    count = int(rng.binomial(total_bits, fault_rate))
    if count == 0:
        return 0
    if count >= total_bits:
        bits = np.arange(total_bits, dtype=np.int64)
    else:
        bits = rng.choice(total_bits, size=count, replace=False).astype(np.int64)
    flip_bits_in_words(flat, bits // WORD_BITS, bits % WORD_BITS)
    return count


class ActivationFaultInjector:
    """Arms forward hooks that corrupt computational-layer outputs.

    Hooks are installed on every CONV/FC layer (or a named subset) at
    construction but stay dormant; faults fire only inside an
    :meth:`armed` block, at the rate given there.
    """

    def __init__(self, model: nn.Module, layers: "list[str] | None" = None):
        self.model = model
        pairs = computational_layers(model)
        if layers is not None:
            known = {name for name, _ in pairs}
            unknown = set(layers) - known
            if unknown:
                raise ValueError(
                    f"unknown layer names {sorted(unknown)!r}; model has "
                    f"{sorted(known)!r}"
                )
            pairs = [(name, module) for name, module in pairs if name in layers]
        if not pairs:
            raise ValueError("no computational layers selected")
        self.layer_names = [name for name, _ in pairs]
        self._rate: "float | None" = None
        self._rng: "np.random.Generator | None" = None
        self._flips_this_session = 0
        self._handles = [
            module.register_forward_hook(self._hook) for _, module in pairs
        ]

    def _hook(self, module: nn.Module, inputs: np.ndarray, output: np.ndarray) -> None:
        if self._rate is None or self._rng is None:
            return
        self._flips_this_session += flip_activation_bits(output, self._rate, self._rng)

    @property
    def armed(self) -> bool:
        """Whether faults are currently firing."""
        return self._rate is not None

    @contextmanager
    def session(
        self, fault_rate: float, rng: "int | np.random.Generator"
    ) -> Iterator["ActivationFaultInjector"]:
        """Fire faults at ``fault_rate`` for every forward in the block."""
        check_probability("fault_rate", fault_rate)
        if self.armed:
            raise RuntimeError("activation fault session already active")
        self._rate = float(fault_rate)
        self._rng = as_generator(rng)
        self._flips_this_session = 0
        try:
            yield self
        finally:
            self._rate = None
            self._rng = None

    @property
    def flips_this_session(self) -> int:
        """Bits flipped since the current/most recent session started."""
        return self._flips_this_session

    def remove(self) -> None:
        """Detach all hooks (the injector becomes inert)."""
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    def __enter__(self) -> "ActivationFaultInjector":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.remove()
