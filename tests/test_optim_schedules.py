"""Tests for LR schedules."""

import numpy as np
import pytest

from repro import nn
from repro.optim import SGD, ConstantLR, CosineAnnealingLR, StepLR, WarmupWrapper


def _optimizer(lr=1.0):
    return SGD([nn.Parameter(np.zeros(1))], lr=lr)


class TestConstantLR:
    def test_never_changes(self):
        optimizer = _optimizer(0.3)
        schedule = ConstantLR(optimizer)
        for _ in range(5):
            schedule.step()
        assert optimizer.lr == 0.3


class TestStepLR:
    def test_decays_at_steps(self):
        optimizer = _optimizer(1.0)
        schedule = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [schedule.step() for _ in range(5)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(_optimizer(), step_size=1, gamma=0.0)


class TestCosineAnnealingLR:
    def test_endpoints(self):
        optimizer = _optimizer(1.0)
        schedule = CosineAnnealingLR(optimizer, total_epochs=10, min_lr=0.1)
        assert schedule.lr_at(0) == pytest.approx(1.0)
        assert schedule.lr_at(10) == pytest.approx(0.1)

    def test_monotone_decrease(self):
        schedule = CosineAnnealingLR(_optimizer(1.0), total_epochs=20)
        values = [schedule.lr_at(epoch) for epoch in range(21)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_clamps_beyond_total(self):
        schedule = CosineAnnealingLR(_optimizer(1.0), total_epochs=5, min_lr=0.2)
        assert schedule.lr_at(50) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(_optimizer(), total_epochs=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(_optimizer(), total_epochs=5, min_lr=-0.1)


class TestWarmupWrapper:
    def test_linear_ramp_then_inner(self):
        optimizer = _optimizer(1.0)
        inner = ConstantLR(optimizer)
        schedule = WarmupWrapper(inner, warmup_epochs=4)
        ramp = [schedule.lr_at(epoch) for epoch in range(4)]
        assert ramp == pytest.approx([0.25, 0.5, 0.75, 1.0])
        assert schedule.lr_at(10) == pytest.approx(1.0)

    def test_applies_to_optimizer(self):
        optimizer = _optimizer(1.0)
        schedule = WarmupWrapper(ConstantLR(optimizer), warmup_epochs=2)
        schedule.step()
        assert optimizer.lr == pytest.approx(1.0)  # epoch 1 -> (1+1)/2
