"""Tests for the canonical experiment setup module."""

import numpy as np
import pytest

from repro.core.clipped import ClippedReLU
from repro.experiments import (
    EXPERIMENT_CONFIGS,
    clone_model,
    default_harden_config,
    experiment_bundle,
    hardened_clone,
    paper_fault_rates,
)
from repro.models import ZooConfig
from repro.utils.cache import ArtifactCache

# A tiny override so experiment tests never train the full AlexNet.
FAST_OVERRIDES = dict(
    n_train=200, n_val=120, n_test=80, epochs=2, width_mult=0.0625
)


class TestConfigs:
    def test_canonical_networks_registered(self):
        assert set(EXPERIMENT_CONFIGS) == {"alexnet", "vgg16", "lenet5"}
        for config in EXPERIMENT_CONFIGS.values():
            assert isinstance(config, ZooConfig)

    def test_fault_rate_grid(self):
        rates = paper_fault_rates()
        assert rates[0] == pytest.approx(1e-7)
        assert rates[-1] == pytest.approx(1e-4)
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_default_harden_config_valid(self):
        config = default_harden_config()
        assert config.tune_scope == "layer"
        assert config.fine_tune

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment network"):
            experiment_bundle("resnet")


class TestBundlesAndClones:
    def test_overrides_reach_zoo(self, tmp_path):
        bundle = experiment_bundle(
            "alexnet", cache=ArtifactCache(tmp_path), **FAST_OVERRIDES
        )
        assert bundle.config.n_train == 200
        assert bundle.config.model == "alexnet"

    def test_clone_matches_original(self, tmp_path):
        bundle = experiment_bundle(
            "alexnet", cache=ArtifactCache(tmp_path), **FAST_OVERRIDES
        )
        clone = clone_model(bundle)
        assert clone is not bundle.model
        x = bundle.test_set.arrays()[0][:4]
        np.testing.assert_array_equal(clone(x), bundle.model(x))

    def test_clone_mutation_does_not_leak(self, tmp_path):
        bundle = experiment_bundle(
            "alexnet", cache=ArtifactCache(tmp_path), **FAST_OVERRIDES
        )
        clone = clone_model(bundle)
        next(clone.parameters()).data[:] = 0.0
        assert float(np.abs(next(bundle.model.parameters()).data).sum()) > 0


class TestHardenedClone:
    def _fast_harden_config(self):
        from repro.core.finetune import FineTuneConfig
        from repro.core.pipeline import FTClipActConfig

        return FTClipActConfig(
            profile_images=48,
            eval_images=48,
            trials=1,
            fault_rates=(1e-4,),
            seed=0,
            finetune=FineTuneConfig(max_iterations=1, min_iterations=1, tolerance=0.0),
        )

    def test_produces_clipped_model_and_caches(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        bundle = experiment_bundle("alexnet", cache=cache, **FAST_OVERRIDES)
        config = self._fast_harden_config()

        model_a, thresholds_a, act_max_a = hardened_clone(bundle, config, cache=cache)
        assert any(isinstance(m, ClippedReLU) for m in model_a.modules())
        assert set(thresholds_a) == set(act_max_a)

        # Second call must come from the threshold cache and agree exactly.
        model_b, thresholds_b, act_max_b = hardened_clone(bundle, config, cache=cache)
        assert thresholds_b == pytest.approx(thresholds_a)
        assert act_max_b == pytest.approx(act_max_a)
        x = bundle.test_set.arrays()[0][:4]
        np.testing.assert_array_equal(model_a(x), model_b(x))

    def test_thresholds_below_act_max(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        bundle = experiment_bundle("alexnet", cache=cache, **FAST_OVERRIDES)
        _, thresholds, act_max = hardened_clone(
            bundle, self._fast_harden_config(), cache=cache
        )
        for layer, threshold in thresholds.items():
            assert 0 < threshold <= act_max[layer] + 1e-6
