"""Property tests for shared-memory payload shipping (hypothesis).

The executor ships pickled campaign weights through one shared-memory
segment per host (see :mod:`repro.utils.shm`); the contract is that the
round-trip is the exact identity for arbitrary payloads — any dtype, any
shape — and that the inline fallback transports the same bytes when
shared memory is unavailable.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils import shm
from repro.utils.shm import ShippedBytes, ship_bytes, shared_memory_available

DTYPES = (
    np.float32,
    np.float64,
    np.int8,
    np.uint8,
    np.int16,
    np.int32,
    np.int64,
    np.uint32,
    np.complex64,
    np.bool_,
)


def _roundtrip(blob: bytes) -> bytes:
    """Parent ships the blob; a "worker" opens the address and reads it."""
    shipment = ship_bytes(blob)
    try:
        # The address must survive pickling: it travels to workers
        # through the pool initializer's arguments.
        ref = pickle.loads(pickle.dumps(shipment.ref))
        view = ref.open()
        try:
            return bytes(view.buffer)
        finally:
            view.close()
    finally:
        shipment.release()


class TestSharedMemoryRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        dtype_index=st.integers(0, len(DTYPES) - 1),
        shape=st.lists(st.integers(0, 7), min_size=0, max_size=4),
    )
    def test_arbitrary_arrays_survive_attach_detach(self, seed, dtype_index, shape):
        """Any dtype/shape pickles through the segment unchanged."""
        rng = np.random.default_rng(seed)
        dtype = DTYPES[dtype_index]
        array = (rng.standard_normal(shape) * 64).astype(dtype)
        blob = pickle.dumps(array)
        restored = pickle.loads(_roundtrip(blob))
        assert restored.dtype == array.dtype
        assert restored.shape == array.shape
        np.testing.assert_array_equal(restored, array)

    @settings(max_examples=25, deadline=None)
    @given(data=st.binary(min_size=0, max_size=4096))
    def test_raw_bytes_identity(self, data):
        assert _roundtrip(data) == data

    def test_sliced_reads_match_offsets(self):
        """The executor concatenates per-task blobs and reads by span."""
        blobs = [pickle.dumps(np.arange(n, dtype=np.int64)) for n in (3, 0, 17)]
        spans, offset = [], 0
        for blob in blobs:
            spans.append((offset, offset + len(blob)))
            offset += len(blob)
        shipment = ship_bytes(b"".join(blobs))
        try:
            view = shipment.ref.open()
            try:
                for (start, end), blob in zip(spans, blobs):
                    restored = pickle.loads(view.buffer[start:end])
                    np.testing.assert_array_equal(restored, pickle.loads(blob))
            finally:
                view.close()
        finally:
            shipment.release()

    def test_nonempty_payload_prefers_shared_memory(self):
        if not shared_memory_available():  # pragma: no cover - always true on Linux
            pytest.skip("platform without shared memory")
        shipment = ship_bytes(b"x" * 128)
        try:
            assert shipment.ref.via_shared_memory
            assert shipment.ref.inline is None
            assert shipment.ref.size == 128
        finally:
            shipment.release()

    def test_release_is_idempotent(self):
        shipment = ship_bytes(b"payload")
        shipment.release()
        shipment.release()  # second release must not raise

    def test_closed_buffer_rejects_reads(self):
        shipment = ship_bytes(b"payload")
        try:
            view = shipment.ref.open()
            view.close()
            with pytest.raises(ValueError):
                view.buffer
        finally:
            shipment.release()


class TestInlineFallback:
    @settings(max_examples=15, deadline=None)
    @given(data=st.binary(min_size=0, max_size=1024))
    def test_fallback_when_shared_memory_missing(self, data):
        """With shared memory patched away, bytes travel inline.

        Patched by hand (not the monkeypatch fixture): hypothesis runs
        many examples per test call and function-scoped fixtures would
        not reset between them.
        """
        original = shm._shared_memory
        shm._shared_memory = None
        try:
            shipment = ship_bytes(data)
            assert not shipment.ref.via_shared_memory
            assert shipment.ref.inline == data
            view = shipment.ref.open()
            assert bytes(view.buffer) == data
            view.close()
            shipment.release()
        finally:
            shm._shared_memory = original

    def test_fallback_when_segment_creation_fails(self, monkeypatch):
        class _FailingSharedMemory:
            def __init__(self, *args, **kwargs):
                raise OSError("no /dev/shm")

        class _Module:
            SharedMemory = _FailingSharedMemory

        monkeypatch.setattr(shm, "_shared_memory", _Module)
        shipment = ship_bytes(b"payload")
        assert not shipment.ref.via_shared_memory
        assert bytes(shipment.ref.open().buffer) == b"payload"

    def test_empty_payload_ships_inline(self):
        shipment = ship_bytes(b"")
        assert not shipment.ref.via_shared_memory
        assert bytes(shipment.ref.open().buffer) == b""

    def test_parallel_campaign_bit_identical_without_shared_memory(
        self, monkeypatch
    ):
        """The executor's fallback path: same curves, inline transport."""
        import repro.utils.shm as shm_module
        from repro.core.campaign import CampaignConfig, run_campaign
        from repro.hw.memory import WeightMemory
        from repro.models import MLP

        monkeypatch.setattr(shm_module, "_shared_memory", None)
        rng = np.random.default_rng(0)
        model = MLP(3 * 8 * 8, 10, hidden=(16,), seed=1)
        model.eval()
        images = rng.standard_normal((32, 3, 8, 8)).astype(np.float32)
        labels = rng.integers(0, 10, 32)
        memory = WeightMemory.from_model(model)
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=2, seed=9)
        serial = run_campaign(model, memory, images, labels, config)
        parallel = run_campaign(model, memory, images, labels, config, workers=2)
        np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)


class TestShippedBytesContract:
    def test_inline_ref_roundtrips_through_pickle(self):
        ref = ShippedBytes(segment=None, size=3, inline=b"abc")
        clone = pickle.loads(pickle.dumps(ref))
        assert clone == ref
        assert bytes(clone.open().buffer) == b"abc"
