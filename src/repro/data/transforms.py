"""Per-image transforms (normalization and light augmentation)."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "compute_channel_stats",
]


class Compose:
    """Chain transforms left to right."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray], np.ndarray]]):
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image)
        return image


class Normalize:
    """Per-channel standardization: ``(x - mean) / std`` on CHW images."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]):
        self.mean = np.asarray(mean, dtype=np.float32).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(-1, 1, 1)
        if np.any(self.std <= 0):
            raise ValueError("std entries must be positive")

    def __call__(self, image: np.ndarray) -> np.ndarray:
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 3 or image.shape[0] != self.mean.shape[0]:
            raise ValueError(
                f"expected CHW image with {self.mean.shape[0]} channels, "
                f"got shape {image.shape}"
            )
        return (image - self.mean) / self.std


class RandomHorizontalFlip:
    """Flip the image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, seed: "int | np.random.Generator | None" = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must lie in [0, 1], got {p}")
        self.p = float(p)
        self._rng = as_generator(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.p:
            return np.ascontiguousarray(image[:, :, ::-1])
        return image


class RandomCrop:
    """Zero-pad by ``padding`` then crop back to the original size."""

    def __init__(self, padding: int = 2, seed: "int | np.random.Generator | None" = None):
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        self._rng = as_generator(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return image
        _, h, w = image.shape
        padded = np.pad(
            image,
            ((0, 0), (self.padding, self.padding), (self.padding, self.padding)),
        )
        top = int(self._rng.integers(0, 2 * self.padding + 1))
        left = int(self._rng.integers(0, 2 * self.padding + 1))
        return np.ascontiguousarray(padded[:, top : top + h, left : left + w])


def compute_channel_stats(images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-channel (mean, std) over an (N, C, H, W) image batch."""
    images = np.asarray(images, dtype=np.float32)
    if images.ndim != 4:
        raise ValueError(f"expected NCHW batch, got shape {images.shape}")
    mean = images.mean(axis=(0, 2, 3))
    std = images.std(axis=(0, 2, 3))
    std = np.where(std > 1e-6, std, 1.0).astype(np.float32)
    return mean.astype(np.float32), std
