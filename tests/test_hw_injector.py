"""Tests for the reversible fault injector."""

import numpy as np
import pytest

from repro import nn
from repro.hw.faultmodels import (
    OP_STUCK0,
    FaultSet,
    RandomBitFlip,
    StuckAt,
)
from repro.hw.injector import FaultInjector
from repro.hw.memory import WeightMemory
from repro.models import LeNet5


def _setup(words=100, seed=0):
    rng = np.random.default_rng(seed)
    param = nn.Parameter(rng.standard_normal(words).astype(np.float32))
    memory = WeightMemory.from_parameters([("p", param)])
    return param, memory, FaultInjector(memory)


class TestInjectRestore:
    def test_flip_changes_then_restore_exact(self):
        param, memory, injector = _setup()
        original = param.data.copy()
        fault_set = RandomBitFlip(0.01).sample(memory, np.random.default_rng(1))
        assert len(fault_set) > 0
        record = injector.inject(fault_set)
        assert not np.array_equal(param.data, original)
        injector.restore(record)
        np.testing.assert_array_equal(param.data, original)

    def test_stuck_at_restore_exact(self):
        param, memory, injector = _setup()
        original = param.data.copy()
        fault_set = StuckAt(0.02, value=1).sample(memory, np.random.default_rng(2))
        record = injector.inject(fault_set)
        injector.restore(record)
        np.testing.assert_array_equal(param.data, original)

    def test_mixed_operations(self):
        param, memory, injector = _setup()
        original = param.data.copy()
        bits = np.asarray([0, 40, 70])
        ops = np.asarray([0, 1, 2], dtype=np.uint8)  # flip, stuck0, stuck1
        record = injector.inject(FaultSet(bits, ops))
        injector.restore(record)
        np.testing.assert_array_equal(param.data, original)

    def test_nested_injections_restore_lifo(self):
        param, memory, injector = _setup()
        original = param.data.copy()
        first = injector.inject(RandomBitFlip(0.01).sample(memory, np.random.default_rng(3)))
        second = injector.inject(RandomBitFlip(0.01).sample(memory, np.random.default_rng(4)))
        injector.restore(second)
        injector.restore(first)
        np.testing.assert_array_equal(param.data, original)

    def test_restore_all(self):
        param, memory, injector = _setup()
        original = param.data.copy()
        for seed in range(3):
            injector.inject(RandomBitFlip(0.01).sample(memory, np.random.default_rng(seed)))
        injector.restore_all()
        np.testing.assert_array_equal(param.data, original)
        assert injector.active_records == ()

    def test_out_of_order_restore_disjoint_sets(self):
        param, memory, injector = _setup()
        original = param.data.copy()
        first = injector.inject(FaultSet.flips(np.asarray([0, 33])))
        second = injector.inject(FaultSet.flips(np.asarray([64, 97])))
        injector.restore(first)  # older record first
        injector.restore(second)
        np.testing.assert_array_equal(param.data, original)

    def test_out_of_order_restore_overlapping_words(self):
        """Restoring the older of two records that fault the *same words*
        must not resurrect its faults through the newer record's undo
        state (the newer record snapshotted words already faulted by the
        older one)."""
        param, memory, injector = _setup()
        original = param.data.copy()
        # Same word (bits 0-31 live in word 0), overlapping and distinct bits.
        first = injector.inject(FaultSet.flips(np.asarray([3, 40])))
        second = injector.inject(FaultSet.flips(np.asarray([3, 17])))
        injector.restore(first)
        # Only the second record's faults remain now.
        expected = param.data.copy()
        injector.inject(FaultSet.flips(np.asarray([3, 17])))  # idempotence probe
        injector.restore()
        np.testing.assert_array_equal(param.data, expected)
        injector.restore(second)
        np.testing.assert_array_equal(param.data, original)

    def test_out_of_order_restore_with_stuck_at(self):
        """Stuck-at ops are not self-inverse, so out-of-order restore must
        go through undo/re-apply rather than re-applying operations."""
        param, memory, injector = _setup()
        original = param.data.copy()
        bits = np.asarray([5, 36])
        first = injector.inject(
            FaultSet(bits, np.full(2, OP_STUCK0, dtype=np.uint8))
        )
        second = injector.inject(FaultSet.flips(np.asarray([5, 68])))
        injector.restore(first)
        injector.restore(second)
        np.testing.assert_array_equal(param.data, original)

    def test_out_of_order_restore_middle_of_three(self):
        param, memory, injector = _setup()
        original = param.data.copy()
        records = [
            injector.inject(FaultSet.flips(np.asarray([bit, bit + 32])))
            for bit in (1, 2, 3)
        ]
        injector.restore(records[1])
        assert injector.active_records == (records[0], records[2])
        injector.restore(records[2])
        injector.restore(records[0])
        np.testing.assert_array_equal(param.data, original)

    def test_restore_all_after_stacked_apply_contexts(self):
        """restore_all inside stacked apply() blocks returns the weights
        bit-exactly; the unwinding context managers then see their records
        as already restored and do nothing."""
        param, memory, injector = _setup()
        original = param.data.copy()
        with injector.apply(FaultSet.flips(np.asarray([3, 40]))):
            with injector.apply(FaultSet.flips(np.asarray([3, 17, 70]))):
                assert len(injector.active_records) == 2
                injector.restore_all()
                np.testing.assert_array_equal(param.data, original)
        np.testing.assert_array_equal(param.data, original)
        assert injector.active_records == ()

    def test_restore_without_inject_raises(self):
        _, _, injector = _setup()
        with pytest.raises(RuntimeError):
            injector.restore()

    def test_restore_foreign_record_raises(self):
        param, memory, injector = _setup()
        other_injector = FaultInjector(memory)
        record = injector.inject(FaultSet.flips(np.asarray([0])))
        with pytest.raises(RuntimeError):
            other_injector.restore(record)
        injector.restore(record)

    def test_empty_fault_set_noop(self):
        param, memory, injector = _setup()
        original = param.data.copy()
        record = injector.inject(FaultSet.empty())
        np.testing.assert_array_equal(param.data, original)
        assert record.num_faults == 0
        injector.restore(record)


class TestSessions:
    def test_session_restores_on_exit(self):
        param, memory, injector = _setup()
        original = param.data.copy()
        with injector.session(RandomBitFlip(0.05), rng=7) as record:
            assert record.num_faults > 0
            assert not np.array_equal(param.data, original)
        np.testing.assert_array_equal(param.data, original)

    def test_session_restores_on_exception(self):
        param, memory, injector = _setup()
        original = param.data.copy()
        with pytest.raises(RuntimeError):
            with injector.session(RandomBitFlip(0.05), rng=7):
                raise RuntimeError("boom")
        np.testing.assert_array_equal(param.data, original)

    def test_apply_context_manager(self):
        param, memory, injector = _setup()
        original = param.data.copy()
        with injector.apply(FaultSet.flips(np.asarray([31]))):
            assert param.data[0] == -original[0]  # bit 31 = sign of word 0
        np.testing.assert_array_equal(param.data, original)

    def test_session_tolerates_inner_restore(self):
        param, memory, injector = _setup()
        with injector.session(RandomBitFlip(0.05), rng=7) as record:
            injector.restore(record)
        assert injector.active_records == ()


class TestRecordMetadata:
    def test_affected_layers(self):
        model = LeNet5(seed=0)
        memory = WeightMemory.from_model(model, layers=["CONV-1", "FC-3"])
        injector = FaultInjector(memory)
        # Put one fault in each layer's region.
        conv1_bits = memory.regions[0].bit_offset
        fc3_region = memory.region_for_layer("FC-3")[0]
        record = injector.inject(
            FaultSet.flips(np.asarray([conv1_bits, fc3_region.bit_offset + 5]))
        )
        assert record.affected_layers() == ["CONV-1", "FC-3"]
        injector.restore(record)

    def test_num_affected_words(self):
        param, memory, injector = _setup()
        # Two bits in word 0, one in word 3.
        record = injector.inject(FaultSet.flips(np.asarray([0, 5, 3 * 32])))
        assert record.num_affected_words == 2
        assert record.num_faults == 3
        injector.restore(record)


class TestModelLevelInjection:
    def test_exponent_flip_makes_huge_weight(self):
        """End-to-end check of the paper's mechanism through the injector."""
        model = LeNet5(seed=0)
        memory = WeightMemory.from_model(model, layers=["CONV-1"])
        injector = FaultInjector(memory)
        conv1 = dict(model.named_modules())["0"]
        flat = conv1.weight.data.reshape(-1)
        target_word = 10
        # Bit 30 (exponent MSB) of the chosen weight word.
        bit_index = target_word * 32 + 30
        before = float(flat[target_word])
        with injector.apply(FaultSet.flips(np.asarray([bit_index]))):
            after = float(conv1.weight.data.reshape(-1)[target_word])
            assert abs(after) > 1e30 or abs(after) < 1e-30  # 2^±128 scaling
        assert float(conv1.weight.data.reshape(-1)[target_word]) == before
