"""Adaptive early stopping vs the exact grid on a paper-figure spec.

Runs the bundled Fig. 1b scenario (unprotected AlexNet weight campaign)
twice under the smoke-sized context — once as the exact ``rates x
trials`` grid, once in adaptive mode with a CI-half-width tolerance —
and records wall clock, cells executed/skipped and the achieved
interval widths in ``benchmarks/results/BENCH_batched.json`` (append-only
per-SHA history, like BENCH_campaign.json).

Asserted, not just reported:

* adaptive executes at least 3x fewer cells than the exact grid while
  every family's final CI half-width meets the tolerance;
* the executed trials are bit-identical to the exact sweep's prefix
  (common random numbers survive the stopping layer);
* on a multi-core host (the ROADMAP multi-core gate) the sweep re-runs
  with two workers and must reproduce the stopping decisions exactly.
"""

import dataclasses
import json
import os
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR
from benchmarks.test_campaign_executor import _git_sha
from repro.scenarios import load_bundled
from repro.scenarios.compile import run_scenarios, smoke_context

TRIALS_CEILING = 32
TOLERANCE = 0.06
BATCH_K = 4
MIN_SAVINGS = 3.0


def _append_history(path, entry: dict) -> dict:
    """Merge ``entry`` into the per-SHA history (replacing same-SHA runs)."""
    history: list[dict] = []
    if path.exists():
        stored = json.loads(path.read_text())
        history = list(stored.get("history", []))
    history = [item for item in history if item.get("sha") != entry["sha"]]
    history.append(entry)
    return {"benchmark": "batched_adaptive", "history": history}


def test_bench_adaptive_vs_exact_grid(record_result):
    context = smoke_context()
    suite = load_bundled("fig1b_unprotected")
    [base] = suite.specs
    # The smoke context's test split holds 64 images; size the spec to it.
    exact_spec = dataclasses.replace(
        base,
        trials=TRIALS_CEILING,
        mode="exact",
        batch_k=BATCH_K,
        eval_images=64,
        batch_size=64,
    )
    adaptive_spec = dataclasses.replace(
        base,
        name=f"{base.name}-adaptive",
        trials=TRIALS_CEILING,
        mode="adaptive",
        ci_halfwidth=TOLERANCE,
        batch_k=BATCH_K,
        eval_images=64,
        batch_size=64,
    )

    start = time.perf_counter()
    [exact] = run_scenarios([exact_spec], context=context)
    exact_seconds = time.perf_counter() - start

    start = time.perf_counter()
    [adaptive] = run_scenarios([adaptive_spec], context=context)
    adaptive_seconds = time.perf_counter() - start

    result = adaptive.adaptive
    assert result is not None, "adaptive spec must produce an AdaptiveResult"

    # --- the acceptance criteria -------------------------------------- #
    assert result.cells_total == len(base.rates) * TRIALS_CEILING
    savings = result.cells_total / result.cells_executed
    assert savings >= MIN_SAVINGS, (
        f"adaptive executed {result.cells_executed}/{result.cells_total} "
        f"cells ({savings:.2f}x saving, need >= {MIN_SAVINGS}x)"
    )
    max_halfwidth = float(result.halfwidths.max())
    assert max_halfwidth <= TOLERANCE, (
        f"achieved CI half-widths {result.halfwidths} exceed {TOLERANCE}"
    )
    # Executed trials are the exact sweep's prefix, bit for bit.
    for index in range(result.fault_rates.size):
        executed = int(result.executed[index])
        np.testing.assert_array_equal(
            result.accuracies[index, :executed],
            exact.curve.accuracies[index, :executed],
        )

    # --- the ROADMAP multi-core gate ----------------------------------- #
    cpus = os.cpu_count() or 1
    parallel_checked = False
    if cpus >= 2:
        assert cpus >= 2  # explicit: this entry was produced multi-core
        [parallel] = run_scenarios([adaptive_spec], workers=2, context=context)
        assert parallel.adaptive.to_dict() == result.to_dict()
        parallel_checked = True

    entry = {
        "sha": _git_sha(),
        "cpus": cpus,
        "spec": base.name,
        "rates": [float(r) for r in base.rates],
        "trials_ceiling": TRIALS_CEILING,
        "tolerance": TOLERANCE,
        "batch_k": BATCH_K,
        "exact_seconds": round(exact_seconds, 3),
        "adaptive_seconds": round(adaptive_seconds, 3),
        "speedup": round(exact_seconds / adaptive_seconds, 2),
        "cells_total": result.cells_total,
        "cells_executed": result.cells_executed,
        "cells_skipped": result.cells_skipped,
        "savings_ratio": round(savings, 2),
        "max_ci_halfwidth": round(max_halfwidth, 4),
        "executed_per_rate": [int(n) for n in result.executed],
        "two_worker_identity_checked": parallel_checked,
        "context": "smoke",
    }
    path = RESULTS_DIR / "BENCH_batched.json"
    payload = _append_history(path, entry)
    RESULTS_DIR.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "Batched adaptive stopping vs exact grid (bundled fig1b spec, smoke context)",
        f"  grid: {len(base.rates)} rates x {TRIALS_CEILING} trials ceiling, "
        f"tolerance {TOLERANCE}, batch_k {BATCH_K}",
        f"  exact    : {result.cells_total:4d} cells in {exact_seconds:6.2f}s",
        f"  adaptive : {result.cells_executed:4d} cells in {adaptive_seconds:6.2f}s "
        f"({savings:.1f}x fewer cells, {exact_seconds / adaptive_seconds:.1f}x wall clock)",
        f"  max CI half-width achieved: {max_halfwidth:.4f}",
        f"  executed per rate: {[int(n) for n in result.executed]}",
        f"  cpus={cpus} two_worker_identity_checked={parallel_checked}",
    ]
    record_result("BENCH_batched", "\n".join(lines))
