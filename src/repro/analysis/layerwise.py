"""Per-layer error-resilience analysis (paper Section III, Fig. 3a/e/i).

Runs one fault-injection campaign per computational layer with faults
scoped to that layer's weight memory, revealing which layers are most
sensitive and where each layer's accuracy cliff sits.

With ``workers > 1`` every layer's cells share one pool, one
shared-memory tensor plane (each per-layer task's weights mapped as
zero-copy read-only views; see ``docs/MEMORY_MODEL.md``) and one
published clean pass per task — and because each campaign scopes its
memory to a single layer, copy-on-write privatizes exactly that layer's
regions per worker, the best case for the plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import nn
from repro.core.campaign import CampaignConfig, FaultSampler
from repro.core.executor import CampaignExecutor, WeightFaultCellTask
from repro.core.metrics import ResilienceCurve
from repro.hw.memory import WeightMemory
from repro.models.registry import layer_names

__all__ = ["LayerwiseResult", "run_layerwise_analysis", "cliff_fault_rate"]


@dataclass
class LayerwiseResult:
    """Per-layer resilience curves plus the layers' memory sizes."""

    curves: dict[str, ResilienceCurve]
    bits_per_layer: dict[str, int]

    def ordered_layers(self) -> list[str]:
        """Layer names in network order."""
        return list(self.curves)

    def cliff_rates(self, drop: float = 0.1) -> dict[str, float]:
        """Per-layer fault rate where mean accuracy first drops by ``drop``
        below clean accuracy (∞ if it never does within the sweep)."""
        return {
            name: cliff_fault_rate(curve, drop)
            for name, curve in self.curves.items()
        }


def cliff_fault_rate(curve: ResilienceCurve, drop: float = 0.1) -> float:
    """First fault rate whose mean accuracy is ``drop`` below clean."""
    threshold = curve.clean_accuracy - drop
    means = curve.mean_accuracies()
    below = np.nonzero(means < threshold)[0]
    if below.size == 0:
        return float("inf")
    return float(curve.fault_rates[below[0]])


def run_layerwise_analysis(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    config: "CampaignConfig | None" = None,
    layers: "Iterable[str] | None" = None,
    sampler: "FaultSampler | None" = None,
    workers: int = 1,
    progress: "Callable | None" = None,
    checkpoint: "str | None" = None,
    suffix: bool = True,
) -> LayerwiseResult:
    """Per-layer fault injection: one scoped campaign per CONV/FC layer.

    ``layers`` restricts the analysis (e.g. the paper's CONV-1 / CONV-5 /
    FC-1 selection); default is every computational layer.  ``workers``
    schedules the cells of *all* layers' campaigns into one shared
    process pool (0 = cpu_count) — cross-campaign fan-out — without
    changing any curve: results are bit-identical to running the layers'
    campaigns back-to-back serially.  ``progress`` streams per-cell
    :class:`~repro.core.executor.CellResult`\\ s (``campaign_label`` names
    the layer) and ``checkpoint`` enables resume of the whole
    multi-layer sweep from one JSON file.

    Each layer's campaign is the suffix engine's best case: faults are
    scoped to one known layer, so every cell re-executes only from that
    layer's cached input (``suffix=False`` restores the full-forward
    path on the serial loop; workers always run with the engine on, and
    ``REPRO_NO_SUFFIX=1`` disables it everywhere — curves are
    bit-identical in every combination).
    """
    available = layer_names(model)
    selected: Sequence[str] = list(layers) if layers is not None else available
    unknown = set(selected) - set(available)
    if unknown:
        raise ValueError(
            f"unknown layers {sorted(unknown)!r}; model has {available!r}"
        )

    bits: dict[str, int] = {}
    tasks: list[WeightFaultCellTask] = []
    for layer in selected:
        memory = WeightMemory.from_model(model, layers=[layer])
        bits[layer] = memory.total_bits
        tasks.append(
            WeightFaultCellTask(
                model, memory, images, labels,
                config=config, sampler=sampler, label=layer, suffix=suffix,
            )
        )
    executor = CampaignExecutor(
        workers=workers, progress=progress, checkpoint=checkpoint
    )
    curves = dict(zip(selected, executor.run_tasks(tasks)))
    return LayerwiseResult(curves=curves, bits_per_layer=bits)
