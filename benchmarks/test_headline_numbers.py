"""The paper's headline quantitative claims (Section V text).

Paper numbers (their hardware/fault range; ours are shape-comparable, not
absolute — see EXPERIMENTS.md):

* AlexNet at 5e-7: clipped 69.36% vs unprotected 51.16%;
* AlexNet AUC improvement over [0, 1e-5]: +173.32%;
* AlexNet +18.19% and VGG-16 +69.49% accuracy at 5e-7;
* VGG-16 AUC improvement: +654.91% (at 5e-7-centred range);
* VGG-16 +68.92% accuracy at 1e-5.

This benchmark regenerates the analogous numbers on the scaled networks
at the rescaled mid-sweep rate and checks the orderings the paper claims.
"""

from benchmarks.conftest import TRIALS, run_once
from benchmarks.curves import comparison_curves
from repro.analysis.reporting import format_rate, format_table


def test_headline_improvements(
    benchmark,
    alexnet_bundle,
    alexnet_hardened,
    alexnet_eval,
    vgg16_bundle,
    vgg16_hardened,
    vgg16_eval,
    record_result,
):
    def experiment():
        alex = comparison_curves(
            "alexnet",
            alexnet_bundle,
            alexnet_hardened[0],
            *alexnet_eval,
            trials=TRIALS,
        )
        vgg = comparison_curves(
            "vgg16", vgg16_bundle, vgg16_hardened[0], *vgg16_eval, trials=TRIALS
        )
        return {"alexnet": alex, "vgg16": vgg}

    curves = run_once(benchmark, experiment)

    rows = []
    gains = {}
    for name, (base, clipped) in curves.items():
        # Report the rate with the widest separation — the analogue of the
        # paper quoting its numbers at the most interesting rate (5e-7).
        base_means = base.mean_accuracies()
        clip_means = clipped.mean_accuracies()
        best = int((clip_means - base_means).argmax())
        best_rate = float(base.fault_rates[best])
        auc_gain = (clipped.auc() / base.auc() - 1.0) * 100.0
        acc_gain = (clip_means[best] / max(base_means[best], 1e-9) - 1.0) * 100.0
        gains[name] = (acc_gain, auc_gain)
        rows.append(
            [
                name,
                format_rate(best_rate),
                f"{base_means[best]:.4f}",
                f"{clip_means[best]:.4f}",
                f"{acc_gain:+.1f}%",
                f"{auc_gain:+.1f}%",
            ]
        )
    paper_note = (
        "\npaper (full-size nets, rates 1e-8..1e-5): AlexNet +18.19% acc @5e-7,"
        "\n+173.32% AUC; VGG-16 +69.49% acc @5e-7, +654.91% AUC, +68.92% @1e-5."
    )
    record_result(
        "headline_numbers",
        format_table(
            ["model", "rate", "unprot acc", "clipped acc", "acc gain", "AUC gain"],
            rows,
            title="Headline — clipped vs unprotected at the widest-gap fault rate",
        )
        + paper_note,
    )

    # Orderings the paper claims: a large accuracy gain at the most
    # separated rate and a substantial AUC gain for both networks.
    for name, (acc_gain, auc_gain) in gains.items():
        assert acc_gain > 20.0, f"{name}: peak accuracy gain too small"
        assert auc_gain > 10.0, f"{name}: AUC gain too small"
