"""Campaign executor throughput: serial vs 2-worker wall clock, per PR.

Not a paper figure — an infrastructure benchmark.  It runs the *same*
fixed campaigns (float32 weight-fault and int8 quantized — the two
curve-producing executor paths) once serially and once across two
worker processes, asserts each pair of curves is bit-identical (the
executor's determinism contract), and appends the wall-clock times to
``benchmarks/results/BENCH_campaign.json``.

The JSON is an **append-only history**: one entry per git SHA (re-runs
on the same SHA replace that SHA's entry), so the speedup trajectory is
tracked *across PRs*, as the ROADMAP asks.  Reporting is honest about
the hardware: every entry records ``cpus`` up front, and on a
single-CPU runner — where process parallelism cannot win anything —
the entry reports ``parallel_overhead_pct`` (how much the pool costs)
instead of advertising a meaningless sub-1.0 "speedup"; multi-core
runners get the usual ``speedup`` ratios.  Raw seconds are always
recorded either way.

Each entry also carries a ``zero_copy`` block measuring the tensor
plane (``docs/MEMORY_MODEL.md``): the per-worker cost of attaching the
shared-memory segment and materializing a task as read-only views
versus deserializing a private copy, plus the peak-RSS delta between
the two modes.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.executor import WeightFaultCellTask
from repro.core.quantized import run_quantized_campaign
from repro.data import SyntheticCIFAR10
from repro.hw.memory import WeightMemory
from repro.models import LeNet5
from repro.utils.shm import pack_object, ship_units, shared_memory_available

from .conftest import RESULTS_DIR

# Fixed workload: a full-size LeNet-5 on 32x32 images, heavy enough that
# per-cell evaluation dominates pool overhead on a multi-core box, small
# enough to stay in CPU-seconds.  Weight training is irrelevant to
# throughput, so the model keeps its freshly initialised weights.
RATES = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3)
TRIALS = 8
EVAL_IMAGES = 256
SEED = 2020


def _model_and_eval_set():
    model = LeNet5(seed=0)
    model.eval()
    images, labels = SyntheticCIFAR10(seed=3).generate(EVAL_IMAGES, "test")
    return model, images, labels


def _git_sha() -> str:
    """Short SHA keying this run's history entry ('unknown' outside git)."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _append_history(path, entry: dict) -> dict:
    """Merge ``entry`` into the append-only per-SHA history file.

    Pre-history flat files (a single run's dict) are migrated into a
    one-entry history keyed ``"pre-history"`` so nothing is lost.
    """
    history: list[dict] = []
    if path.exists():
        stored = json.loads(path.read_text())
        if "history" in stored:
            history = list(stored["history"])
        elif "serial_seconds" in stored:  # pre-history flat layout
            stored.pop("benchmark", None)
            stored.setdefault("sha", "pre-history")
            history = [stored]
    history = [item for item in history if item.get("sha") != entry["sha"]]
    history.append(entry)
    return {"benchmark": "campaign_executor", "history": history}


def _rss_kb() -> int:
    """This process's current resident set, in kB (Linux /proc)."""
    import resource

    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _attach_probe(ref, copy: bool) -> dict:
    """Runs in a fresh child: attach the plane and materialize the task.

    ``copy=False`` is the zero-copy path (read-only views over the
    mapped segment); ``copy=True`` is the historical deserializing path
    (private writable copies).  The recorded residency is the child's
    RSS *growth* across attach + touch-every-weight — fork-inherited
    ``ru_maxrss`` floors at the parent's peak and would hide the
    difference — and the checksum proves both modes materialized
    identical bytes.
    """
    rss_before = _rss_kb()
    start = time.perf_counter()
    view = ref.open()
    task = view.load("task/0", copy=copy)
    checksum = float(
        sum(float(np.sum(r.parameter.data)) for r in task.memory.regions)
    )
    seconds = time.perf_counter() - start
    rss_delta = _rss_kb() - rss_before
    del task
    view.close()
    return {"seconds": seconds, "rss_delta_kb": rss_delta, "checksum": checksum}


def _zero_copy_entry(model, memory, images, labels, config) -> "dict | None":
    """Per-worker attach cost and peak RSS, views vs private copies.

    Ships one real campaign task through the tensor plane and measures,
    in one fresh process per mode, the cost of materializing it — the
    ISSUE-4 `BENCH_campaign.json` fields tracking what zero-copy buys
    per worker on this host.
    """
    if not shared_memory_available():  # pragma: no cover - Linux runners
        return None
    task = WeightFaultCellTask(model, memory, images, labels, config=config)
    shipment = ship_units([("task/0", pack_object(task))])
    try:
        probes = {}
        for mode, copy in (("attach", False), ("deserialize", True)):
            with ProcessPoolExecutor(max_workers=1) as pool:
                probes[mode] = pool.submit(
                    _attach_probe, shipment.ref, copy
                ).result()
    finally:
        shipment.release()
    assert probes["attach"]["checksum"] == probes["deserialize"]["checksum"]
    return {
        "attach_seconds": round(probes["attach"]["seconds"], 4),
        "attach_rss_delta_kb": probes["attach"]["rss_delta_kb"],
        "deserialize_seconds": round(probes["deserialize"]["seconds"], 4),
        "deserialize_rss_delta_kb": probes["deserialize"]["rss_delta_kb"],
        "peak_rss_delta_kb": (
            probes["attach"]["rss_delta_kb"]
            - probes["deserialize"]["rss_delta_kb"]
        ),
    }


def test_bench_campaign_serial_vs_two_workers(record_result, bench_workers):
    model, images, labels = _model_and_eval_set()
    memory = WeightMemory.from_model(model)
    config = CampaignConfig(fault_rates=RATES, trials=TRIALS, seed=SEED)
    # Fixed 2-worker comparison by default so the JSON stays comparable
    # across PRs; REPRO_WORKERS>1 swaps in a wider pool to explore.
    workers = bench_workers if bench_workers > 1 else 2

    start = time.perf_counter()
    serial = run_campaign(model, memory, images, labels, config, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_campaign(model, memory, images, labels, config, workers=workers)
    parallel_seconds = time.perf_counter() - start

    # The headline guarantee: parallelism never changes the science.
    np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)
    assert serial.clean_accuracy == parallel.clean_accuracy

    # Same comparison for the int8 campaign, now that it shares the
    # executor substrate: the speedup trend should cover both paths.
    start = time.perf_counter()
    int8_serial = run_quantized_campaign(model, memory, images, labels, config)
    int8_serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    int8_parallel = run_quantized_campaign(
        model, memory, images, labels, config, workers=workers
    )
    int8_parallel_seconds = time.perf_counter() - start

    np.testing.assert_array_equal(int8_serial.accuracies, int8_parallel.accuracies)
    assert int8_serial.clean_accuracy == int8_parallel.clean_accuracy

    cpus = os.cpu_count() or 1
    entry = {
        "sha": _git_sha(),
        "cpus": cpus,
        "workers": workers,
        "cells": len(RATES) * TRIALS,
        "eval_images": EVAL_IMAGES,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "quantized_serial_seconds": round(int8_serial_seconds, 3),
        "quantized_parallel_seconds": round(int8_parallel_seconds, 3),
        "bit_identical": True,
    }
    zero_copy = _zero_copy_entry(model, memory, images, labels, config)
    if zero_copy is not None:
        entry["zero_copy"] = zero_copy
    if cpus == 1:
        # A "speedup" below 1.0 on one CPU is just pool overhead wearing
        # a misleading name; report it as what it is.
        entry["parallel_overhead_pct"] = round(
            (parallel_seconds / serial_seconds - 1.0) * 100.0, 1
        )
        entry["quantized_parallel_overhead_pct"] = round(
            (int8_parallel_seconds / int8_serial_seconds - 1.0) * 100.0, 1
        )
        ratios = (
            "parallel overhead {parallel_overhead_pct}% "
            "(quantized {quantized_parallel_overhead_pct}%) — single-CPU "
            "runner, parallelism cannot win".format(**entry)
        )
    else:
        entry["speedup"] = round(serial_seconds / parallel_seconds, 3)
        entry["quantized_speedup"] = round(
            int8_serial_seconds / int8_parallel_seconds, 3
        )
        ratios = "speedup {speedup}x (quantized {quantized_speedup}x)".format(
            **entry
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_campaign.json"
    payload = _append_history(path, entry)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    zc_note = ""
    if zero_copy is not None:
        zc_note = (
            "; zero-copy attach {attach_seconds}s/+{attach_rss_delta_kb}kB "
            "vs deserialize {deserialize_seconds}s/"
            "+{deserialize_rss_delta_kb}kB (peak-RSS delta "
            "{peak_rss_delta_kb}kB)".format(**zero_copy)
        )
    record_result(
        "BENCH_campaign",
        "campaign executor [{sha}, {cpus} CPUs]: serial {serial_seconds}s "
        "vs {workers}-worker {parallel_seconds}s; quantized serial "
        "{quantized_serial_seconds}s vs {quantized_parallel_seconds}s; "
        .format(**entry)
        + ratios
        + zc_note
        + f"; bit-identical curves; history entries: {len(payload['history'])}",
    )
