"""Shape adapters between convolutional and fully-connected stages."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["Flatten"]


class Flatten(Module):
    """Collapse all non-batch dimensions: (N, ...) -> (N, prod(...))."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: "tuple[int, ...] | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim < 2:
            raise ValueError(f"Flatten expects at least 2-D input, got shape {x.shape}")
        if self.training:
            self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward in training mode")
        return np.asarray(grad_output, dtype=np.float32).reshape(self._input_shape)
