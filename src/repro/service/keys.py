"""Content-addressed identity of a campaign submission.

A submission's run id is a sha256 over everything that determines its
result bytes: the expanded suite (the existing
:func:`~repro.scenarios.shard.suite_fingerprint`), the resolved
model-bundle configurations (the same
:func:`~repro.utils.cache.config_fingerprint` keys the
:class:`~repro.utils.cache.ArtifactCache` stores trained weights under),
the hardening configuration, the source tree, and the on-disk layout
version.  Two submissions with equal keys are guaranteed equal outputs
— campaigns are bit-deterministic (``docs/MEMORY_MODEL.md``) — which is
what licenses the service to coalesce them onto one execution and serve
every later submission from the result cache.

``CACHE_KEY_FIELDS`` is the authoritative field list;
``docs/SERVICE.md`` mirrors it in a table that
``tests/test_docs_consistency.py`` enforces in both directions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.scenarios.shard import suite_fingerprint
from repro.utils.cache import config_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.compile import ScenarioContext
    from repro.scenarios.spec import ScenarioSuite

__all__ = [
    "CACHE_KEY_FIELDS",
    "SERVICE_FORMAT",
    "campaign_key",
    "code_identity",
    "key_components",
]

# Bumped when the run-directory layout the service caches (or the store
# schema inside it) changes shape: old cache entries must miss rather
# than serve bytes a new reader cannot trust.
SERVICE_FORMAT = 1

# field -> what it hashes.  The run id is sha256 over the canonical JSON
# of exactly these components (see key_components); docs/SERVICE.md
# documents each row and docs-check keeps the two in sync.
CACHE_KEY_FIELDS: dict[str, str] = {
    "suite": "suite_fingerprint of the fully expanded suite (name + every spec)",
    "bundles": "config_fingerprint of each model's resolved ZooConfig, overrides applied",
    "harden": "config_fingerprint of the FT-ClipAct hardening config (or 'default')",
    "code": "sha256 over every src/repro/**/*.py path and content",
    "format": "SERVICE_FORMAT, the cached run-directory layout version",
}

_code_identity_cache: "dict[Path, str]" = {}


def code_identity() -> str:
    """A sha256 over the installed ``repro`` source tree.

    Hashes every ``*.py`` file's package-relative path and content, in
    sorted order, so any code change — which may change result bytes —
    invalidates every cached run.  Computed once per process: the tree
    is assumed immutable while a daemon is serving (redeploys restart
    the process).
    """
    root = Path(__file__).resolve().parent.parent
    cached = _code_identity_cache.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    identity = digest.hexdigest()
    _code_identity_cache[root] = identity
    return identity


def _bundle_fingerprints(
    suite: "ScenarioSuite", context: "ScenarioContext"
) -> dict[str, str]:
    """One fingerprint per distinct model, matching the zoo's cache key."""
    from repro.experiments import EXPERIMENT_CONFIGS

    overrides = dict(context.bundle_overrides)
    fingerprints: dict[str, str] = {}
    for model in sorted({spec.model for spec in suite.specs}):
        config = EXPERIMENT_CONFIGS[model]
        if overrides:
            config = replace(config, **overrides)
        fingerprints[model] = config_fingerprint(config.to_dict())
    return fingerprints


def _harden_fingerprint(context: "ScenarioContext") -> str:
    if context.harden_config is None:
        return "default"
    return config_fingerprint(dataclasses.asdict(context.harden_config))


def key_components(
    suite: "ScenarioSuite", context: "ScenarioContext"
) -> dict[str, Any]:
    """The CACHE_KEY_FIELDS payload for one submission (pre-hash)."""
    return {
        "suite": suite_fingerprint(suite.name, suite.specs),
        "bundles": _bundle_fingerprints(suite, context),
        "harden": _harden_fingerprint(context),
        "code": code_identity(),
        "format": SERVICE_FORMAT,
    }


def campaign_key(suite: "ScenarioSuite", context: "ScenarioContext") -> str:
    """The content-addressed run id for one submission."""
    components = key_components(suite, context)
    blob = json.dumps(components, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
