"""Lower campaign specs onto the executor substrate and run them.

:func:`compile_spec` turns one :class:`~repro.scenarios.spec.CampaignSpec`
into the matching executor cell task
(:class:`~repro.core.executor.WeightFaultCellTask`,
:class:`~repro.core.quantized.QuantizedCellTask` or
:class:`~repro.hw.actfaults.ActivationFaultCellTask`);
:func:`run_scenarios` compiles a whole suite and submits **every**
expanded scenario's (rate x trial) cells into **one**
:class:`~repro.core.executor.CampaignExecutor` scheduling pass
(``run_tasks``) — cross-scenario fan-out over a single worker pool, one
shared tensor plane per generation, the published per-task suffix
caches, and one resumable multi-campaign checkpoint file.  Results are
bit-identical to calling each scenario's direct API
(``run_campaign`` / ``run_quantized_campaign`` /
``run_activation_campaign``) back-to-back at any worker count, which
``tests/test_scenarios.py`` asserts.

A :class:`ScenarioContext` owns the expensive shared artifacts: trained
bundles are produced once per model and prepared mitigation clones once
per ``(model, variant)`` pair, so a 20-scenario matrix over three
variants of one model trains and hardens exactly once each.  The
context also carries the override knobs (zoo config overrides, a small
FT-ClipAct config) that :func:`smoke_context` uses to run every bundled
spec on tiny synthetic data inside the fast test tier.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.core.campaign import CampaignConfig
from repro.scenarios.faults import SpecFaultSampler
from repro.utils.serialization import write_json_atomic
from repro.scenarios.spec import (
    REDUNDANCY_VARIANTS,
    CampaignSpec,
    ScenarioSuite,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics import ResilienceCurve
    from repro.core.pipeline import FTClipActConfig
    from repro.models.zoo import PretrainedBundle
    from repro.utils.cache import ArtifactCache

__all__ = [
    "ScenarioContext",
    "ScenarioResult",
    "assemble_scenario_result",
    "compile_spec",
    "run_scenarios",
    "scenario_file_stems",
    "smoke_context",
    "write_json_atomic",
    "write_results",
]


@dataclass
class ScenarioContext:
    """Shared model/mitigation artifacts for one batch of scenarios.

    ``bundle_overrides`` are applied to every model's
    :class:`~repro.models.zoo.ZooConfig` (the smoke context shrinks
    training there); ``harden_config`` overrides the FT-ClipAct pipeline
    for ``ftclipact`` scenarios; ``harden_workers`` threads into the
    hardening campaigns when no explicit config is given (hardening is
    bit-identical at any worker count).  Bundles and prepared variant
    clones are memoised, so every scenario sharing a ``(model,
    variant)`` pair reuses one artifact.
    """

    cache: "ArtifactCache | None" = None
    bundle_overrides: Mapping[str, Any] = field(default_factory=dict)
    harden_config: "FTClipActConfig | None" = None
    harden_workers: int = 1

    def __post_init__(self) -> None:
        self._bundles: dict[str, "PretrainedBundle"] = {}
        self._prepared: dict[tuple[str, str], tuple[Any, Any]] = {}

    def bundle(self, model: str) -> "PretrainedBundle":
        """The (cached) pre-trained bundle for ``model``."""
        if model not in self._bundles:
            from repro.experiments import experiment_bundle

            self._bundles[model] = experiment_bundle(
                model, cache=self.cache, **dict(self.bundle_overrides)
            )
        return self._bundles[model]

    def prepared(self, model: str, variant: str) -> tuple[Any, Any]:
        """The (cached) ``(model, sampler)`` pair for one mitigation variant."""
        key = (model, variant)
        if key not in self._prepared:
            from repro.experiments import prepare_campaign_variant

            self._prepared[key] = prepare_campaign_variant(
                self.bundle(model),
                variant,
                workers=self.harden_workers,
                harden_config=self.harden_config,
                cache=self.cache,
            )
        return self._prepared[key]


def smoke_context() -> ScenarioContext:
    """A context sized for the fast test tier (seconds, not minutes).

    Tiny synthetic splits, one training epoch per model, and a minimal
    FT-ClipAct pipeline (network-scope tuning, one Algorithm-1
    iteration) — enough to drive every bundled spec end-to-end through
    the real compiler and executor without paying full-fidelity
    training or hardening.
    """
    from repro.core.campaign import default_fault_rates
    from repro.core.finetune import FineTuneConfig
    from repro.core.pipeline import FTClipActConfig

    return ScenarioContext(
        bundle_overrides={"n_train": 96, "n_val": 48, "n_test": 64, "epochs": 1},
        harden_config=FTClipActConfig(
            profile_images=16,
            eval_images=16,
            batch_size=16,
            trials=1,
            fault_rates=tuple(default_fault_rates(1e-5, 1e-4, 1)),
            tune_scope="network",
            finetune=FineTuneConfig(
                max_iterations=1, min_iterations=1, tolerance=0.1
            ),
        ),
    )


def compile_spec(
    spec: CampaignSpec, context: "ScenarioContext | None" = None
):
    """Lower one spec to its executor cell task.

    The task's ``label`` is the scenario name, so progress callbacks,
    checkpoints and result tables stay addressable per scenario inside
    a cross-scenario sweep.
    """
    from repro.hw.memory import WeightMemory

    context = context if context is not None else ScenarioContext()
    bundle = context.bundle(spec.model)
    split = bundle.test_set if spec.split == "test" else bundle.val_set
    images, labels = split.arrays()
    if spec.eval_images > images.shape[0]:
        raise ValueError(
            f"scenario {spec.name!r} wants {spec.eval_images} eval images "
            f"but the {spec.split} split holds {images.shape[0]}"
        )
    images = images[: spec.eval_images]
    labels = labels[: spec.eval_images]
    config = CampaignConfig(
        fault_rates=spec.rates,
        trials=spec.trials,
        seed=spec.seed,
        batch_size=spec.batch_size,
    )
    model, variant_sampler = context.prepared(spec.model, spec.variant)

    # random_bitflip compiles to sampler=None so a spec-driven run is the
    # *same object shape* as the direct API call (bit-identical is then
    # trivially preserved); every other model compiles to a picklable
    # SpecFaultSampler over the target bit space.
    spec_sampler = None
    if spec.fault_model.name != "random_bitflip":
        spec_sampler = SpecFaultSampler(
            spec.fault_model.name, spec.fault_model.params
        )

    if spec.campaign == "weight":
        from repro.core.executor import WeightFaultCellTask

        sampler = spec_sampler
        if spec.variant in REDUNDANCY_VARIANTS:
            sampler = variant_sampler  # protection filter over raw flips
        task = WeightFaultCellTask(
            model,
            WeightMemory.from_model(model),
            images,
            labels,
            config=config,
            sampler=sampler,
            label=spec.name,
            batch_k=spec.batch_k,
        )
    elif spec.campaign == "quantized":
        from repro.core.quantized import QuantizedCellTask

        task = QuantizedCellTask(
            model,
            WeightMemory.from_model(model),
            images,
            labels,
            config=config,
            label=spec.name,
            sampler=spec_sampler,
            batch_k=spec.batch_k,
        )
    else:
        # activation (spec validation admits nothing else)
        from repro.hw.actfaults import ActivationFaultCellTask

        task = ActivationFaultCellTask(
            model,
            images,
            labels,
            config=config,
            layers=list(spec.layers) if spec.layers is not None else None,
            label=spec.name,
            batch_k=spec.batch_k,
        )
    if spec.mode == "adaptive":
        from repro.core.batched import AdaptiveCampaignTask

        # Spec validation already restricted adaptive mode to the scalar
        # accuracy campaigns, so the wrap below cannot fail on shape.
        task = AdaptiveCampaignTask(
            task,
            ci_halfwidth=spec.ci_halfwidth,
            max_trials=spec.trials,
            batch_k=spec.batch_k,
            importance=spec.importance,
            label=spec.name,
        )
    return task


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's spec together with its resilience curve.

    Adaptive-mode scenarios additionally carry the raw
    :class:`~repro.core.batched.AdaptiveResult` (interval widths, cells
    executed/skipped, importance weights); their ``curve`` fills the
    skipped trials with the family's interval estimate.

    ``failed`` lists the scenario's quarantined cells (supervised
    executor, ``on_cell_error != "abort"``): per-cell dicts of
    ``rate_index``/``trial``/``reason``/``attempts``/``error`` (the
    scenario-level slice of
    :data:`~repro.core.executor.FAILED_CELL_FIELDS` — the owning task is
    this spec).  Failed cells stay NaN in the curve and are surfaced in
    the JSON payloads as ``failed_cells``; the key is present only when
    the tuple is non-empty, so fault-free runs keep their historical
    byte-identical files.
    """

    spec: CampaignSpec
    curve: "ResilienceCurve"
    adaptive: "Any | None" = None
    failed: "tuple[dict, ...]" = ()

    @property
    def name(self) -> str:
        return self.spec.name

    def file_stem(self) -> str:
        """A filesystem-safe stem for this scenario's result file."""
        return re.sub(r"[^A-Za-z0-9._+=-]+", "-", self.spec.name)

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "spec": self.spec.to_dict(),
            "clean_accuracy": float(self.curve.clean_accuracy),
            "fault_rates": [float(r) for r in self.curve.fault_rates],
            "accuracies": self.curve.accuracies.tolist(),
            "mean_accuracies": self.curve.mean_accuracies().tolist(),
            "auc": float(self.curve.auc()),
        }
        if self.adaptive is not None:
            payload["adaptive"] = self.adaptive.to_dict()
        if self.failed:
            payload["failed_cells"] = [dict(cell) for cell in self.failed]
        return payload


def run_scenarios(
    scenarios: "ScenarioSuite | Sequence[CampaignSpec]",
    workers: "int | None" = None,
    progress: "Callable | None" = None,
    checkpoint: "str | Path | None" = None,
    out_dir: "str | Path | None" = None,
    context: "ScenarioContext | None" = None,
    max_retries: "int | None" = None,
    cell_timeout: "float | None" = None,
    on_cell_error: "str | None" = None,
    store: bool = True,
    executor: "Any | None" = None,
) -> list[ScenarioResult]:
    """Run a whole scenario matrix through one shared executor pool.

    ``workers=None`` uses the suite's ``workers:`` key (default 1);
    ``checkpoint`` names one JSON file covering *every* scenario's cells
    (the multi-campaign fingerprint of
    :class:`~repro.core.executor.CampaignExecutor` guards resume);
    ``out_dir`` writes one ``<scenario>.json`` per result plus a
    consolidated ``summary.json``.  Results are returned in spec order.

    With ``out_dir`` set and ``store`` left on, the run also feeds the
    per-cell result store (``docs/RESULTS.md``): every completed cell
    is appended to ``out_dir/store/segment.jsonl`` as it finishes, and
    the canonical columnar ``store/cells.rcs`` is written with the
    results — the input to ``repro report``.

    ``max_retries``/``cell_timeout``/``on_cell_error`` feed the
    executor's :class:`~repro.core.executor.SupervisionPolicy` (see
    ``docs/FAULT_TOLERANCE.md``); with ``on_cell_error != "abort"``,
    cells that exhaust their retry budget land on each result's
    ``failed`` tuple instead of aborting the suite.

    ``executor`` hands in a caller-owned (usually persistent)
    :class:`~repro.core.executor.CampaignExecutor` instead of building a
    fresh one — the service reuses one warm pool per slot this way.  Its
    worker count and supervision policy are fixed at construction, so
    combining it with ``workers``/``max_retries``/``cell_timeout``/
    ``on_cell_error`` is an error; its per-run hooks are repointed via
    ``reconfigure`` and the caller keeps responsibility for ``close()``.
    """
    from repro.core.executor import CampaignExecutor

    if executor is not None and (
        workers is not None
        or max_retries is not None
        or cell_timeout is not None
        or on_cell_error is not None
    ):
        raise ValueError(
            "pass either a caller-owned executor or the "
            "workers/max_retries/cell_timeout/on_cell_error knobs, not both"
        )
    if isinstance(scenarios, ScenarioSuite):
        specs: Sequence[CampaignSpec] = scenarios.specs
        if workers is None:
            workers = scenarios.workers
        suite_name = scenarios.name
    else:
        specs = list(scenarios)
        suite_name = "scenarios"
    # Both input shapes fail fast on duplicate names: ScenarioSuite
    # normally rejects them at construction, but suites arriving through
    # other channels (unpickling, object.__new__) bypass __post_init__,
    # and dying here beats dying late in write_results.
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError("scenario names must be unique within a run")
    if not specs:
        return []
    workers = 1 if workers is None else workers
    context = context if context is not None else ScenarioContext()
    tasks = [compile_spec(spec, context) for spec in specs]
    recorder = None
    if store and out_dir is not None:
        from repro.results.store import SegmentRecorder, segment_path

        recorder = SegmentRecorder(segment_path(out_dir), specs)
    if executor is None:
        executor = CampaignExecutor(
            workers=workers, progress=progress, checkpoint=checkpoint,
            max_retries=max_retries, cell_timeout=cell_timeout,
            on_cell_error=on_cell_error, recorder=recorder,
        )
    else:
        executor.reconfigure(
            progress=progress, checkpoint=checkpoint, recorder=recorder
        )
    from repro.core.batched import AdaptiveResult

    try:
        curves = executor.run_tasks(tasks)
    finally:
        if recorder is not None:
            recorder.close()
    failed_by_task: dict[int, list[dict]] = {}
    for record in executor.quarantined:
        failed_by_task.setdefault(int(record["task_index"]), []).append(
            {
                key: record[key]
                for key in ("rate_index", "trial", "reason", "attempts", "error")
            }
        )
    for cells in failed_by_task.values():
        cells.sort(key=lambda cell: (cell["rate_index"], cell["trial"]))
    results = [
        ScenarioResult(
            spec=spec,
            curve=value.curve,
            adaptive=value,
            failed=tuple(failed_by_task.get(index, ())),
        )
        if isinstance(value, AdaptiveResult)
        else ScenarioResult(
            spec=spec,
            curve=value,
            failed=tuple(failed_by_task.get(index, ())),
        )
        for index, (spec, value) in enumerate(zip(specs, curves))
    ]
    if out_dir is not None:
        write_results(results, out_dir, suite=suite_name, store=store)
    return results




def scenario_file_stems(names: Sequence[str]) -> list[str]:
    """Filesystem-safe, collision-free stems for scenario result files.

    Sanitizing distinct names can collide (``a/b=1`` and ``a-b-1`` both
    sanitize to ``a-b-1``); every member of a colliding group gets a
    deterministic suffix derived from its *original* name, so the stems
    are stable across runs, hosts and shard/merge boundaries.
    """
    base = [re.sub(r"[^A-Za-z0-9._+=-]+", "-", name) for name in names]
    counts: dict[str, int] = {}
    for stem in base:
        counts[stem] = counts.get(stem, 0) + 1
    stems = [
        stem
        if counts[stem] == 1
        else f"{stem}-{hashlib.sha256(name.encode('utf-8')).hexdigest()[:10]}"
        for name, stem in zip(names, base)
    ]
    if len(set(stems)) != len(stems):  # pragma: no cover - defensive
        raise ValueError("scenario names collide after filename sanitizing")
    return stems


def assemble_scenario_result(
    spec: CampaignSpec,
    rates: Any,
    values: Any,
    clean_accuracy: float,
    failed: "Sequence[dict]" = (),
) -> ScenarioResult:
    """Rebuild one scenario's result from its raw value grid.

    The merge-side twin of the executor's ``build_result`` path: given
    the spec, the ``(n_rates, n_trials[, cell_width])`` grid and the
    recorded clean accuracy, produce the same
    :class:`~repro.core.metrics.ResilienceCurve` /
    :class:`~repro.core.batched.AdaptiveResult` a live task would have
    built — without models, bundles or training.  ``failed`` carries the
    quarantined-cell records a sharded run collected (their grid entries
    are NaN in ``values``).
    """
    import numpy as np

    from repro.core.batched import AdaptiveResult
    from repro.core.metrics import ResilienceCurve

    rates = np.asarray(rates, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if spec.mode == "adaptive":
        adaptive = AdaptiveResult.assemble(
            label=spec.name,
            rates=rates,
            values=values,
            max_trials=spec.trials,
            weighted=spec.importance is not None,
            n_images=spec.eval_images,
            tolerance=spec.ci_halfwidth,
            clean_accuracy=clean_accuracy,
        )
        return ScenarioResult(
            spec=spec, curve=adaptive.curve, adaptive=adaptive,
            failed=tuple(dict(cell) for cell in failed),
        )
    curve = ResilienceCurve(
        fault_rates=rates,
        accuracies=values,
        clean_accuracy=float(clean_accuracy),
        label=spec.name,
    )
    return ScenarioResult(
        spec=spec, curve=curve, failed=tuple(dict(cell) for cell in failed)
    )


def write_results(
    results: Sequence[ScenarioResult],
    out_dir: "str | Path",
    suite: str = "scenarios",
    store: bool = True,
) -> Path:
    """Write per-scenario JSON files plus ``summary.json``; returns it.

    Every file lands atomically (:func:`write_json_atomic`), and the
    payload is a pure function of the results — an unsharded run and a
    ``repro merge`` of the same cells produce byte-identical files.
    With ``store`` left on, the canonical per-cell columnar store
    (``store/cells.rcs``, see ``docs/RESULTS.md``) is written alongside
    them; being itself a pure function of the results, its bytes obey
    the same shard/merge identity.
    """
    target = Path(out_dir)
    target.mkdir(parents=True, exist_ok=True)
    if store:
        from repro.results.store import store_from_results, write_store

        write_store(store_from_results(results), target)
    stems = scenario_file_stems([result.name for result in results])
    rows = []
    for result, stem in zip(results, stems):
        path = write_json_atomic(target / f"{stem}.json", result.to_dict())
        row = {
            "name": result.name,
            "file": path.name,
            "model": result.spec.model,
            "campaign": result.spec.campaign,
            "variant": result.spec.variant,
            "fault_model": result.spec.fault_model.to_dict(),
            "clean_accuracy": float(result.curve.clean_accuracy),
            "auc": float(result.curve.auc()),
            "mean_accuracies": result.curve.mean_accuracies().tolist(),
        }
        if result.adaptive is not None:
            row["cells_executed"] = int(result.adaptive.cells_executed)
            row["cells_skipped"] = int(result.adaptive.cells_skipped)
        if result.failed:
            row["failed_cells"] = [dict(cell) for cell in result.failed]
        rows.append(row)
    return write_json_atomic(
        target / "summary.json",
        {"suite": suite, "count": len(rows), "scenarios": rows},
    )
