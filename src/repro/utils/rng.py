"""Deterministic random-number management for experiments.

Every stochastic component in this library (data generation, weight
initialization, fault injection, campaign trials) receives an explicit seed.
This module provides a small tree-structured seed facility built on
:class:`numpy.random.SeedSequence` so that:

* the same top-level seed always reproduces the same experiment end to end;
* independent components (e.g. two fault-injection trials) get
  statistically independent streams;
* *common random numbers* are easy to express: two campaigns that should
  share randomness (e.g. the same fault locations evaluated under two
  different clipping thresholds) simply reuse the same child seed.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["SeedTree", "as_generator", "spawn_seeds"]


def as_generator(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an ``int`` seed, an existing generator (returned unchanged so
    callers can share streams), or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Derive ``count`` independent 63-bit child seeds from ``seed``.

    The derivation is deterministic: ``spawn_seeds(s, n)[:k]`` equals
    ``spawn_seeds(s, k)`` for ``k <= n``, which lets experiments grow their
    trial count without disturbing earlier trials.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0] >> 1) for child in children]


class SeedTree:
    """A named, hierarchical seed dispenser.

    A :class:`SeedTree` maps string paths to deterministic seeds.  The same
    ``(root_seed, path)`` pair always yields the same seed, regardless of
    the order in which paths are requested — so adding a new consumer of
    randomness to an experiment does not perturb existing consumers.

    Example::

        tree = SeedTree(1234)
        data_rng = tree.generator("data")
        trial_seeds = [tree.seed(f"trial/{i}") for i in range(50)]
    """

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The seed this tree was constructed with."""
        return self._root_seed

    def seed(self, path: str) -> int:
        """Return the deterministic 63-bit seed for ``path``."""
        if not path:
            raise ValueError("path must be a non-empty string")
        # Hash the path into spawn keys so ordering of requests is irrelevant.
        key = tuple(_stable_hash(part) for part in path.split("/"))
        seq = np.random.SeedSequence(self._root_seed, spawn_key=key)
        return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)

    def generator(self, path: str) -> np.random.Generator:
        """Return a fresh generator seeded for ``path``."""
        return np.random.default_rng(self.seed(path))

    def child(self, path: str) -> "SeedTree":
        """Return a sub-tree rooted at ``path``."""
        return SeedTree(self.seed(path))

    def seeds(self, path: str, count: int) -> list[int]:
        """Return ``count`` deterministic seeds under ``path``."""
        return [self.seed(f"{path}/{index}") for index in range(count)]

    def generators(self, path: str, count: int) -> Iterator[np.random.Generator]:
        """Yield ``count`` independent generators under ``path``."""
        for child_seed in self.seeds(path, count):
            yield np.random.default_rng(child_seed)

    def __repr__(self) -> str:
        return f"SeedTree(root_seed={self._root_seed})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeedTree):
            return NotImplemented
        return self._root_seed == other._root_seed

    def __hash__(self) -> int:
        return hash(("SeedTree", self._root_seed))


def _stable_hash(text: str) -> int:
    """A process-independent 32-bit FNV-1a hash of ``text``.

    Python's builtin ``hash`` is salted per process, so it cannot be used to
    derive reproducible seeds.
    """
    value = 2166136261
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 16777619) & 0xFFFFFFFF
    return value
