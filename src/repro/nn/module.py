"""Module and parameter base classes for the pure-numpy NN framework.

The framework mirrors the small subset of the PyTorch module API that the
FT-ClipAct methodology needs:

* named parameter trees (``state_dict`` / ``load_state_dict``) — the fault
  injector maps these parameters into a linear weight memory;
* train/eval modes (dropout, batch-norm);
* forward hooks — the activation profiler observes per-layer outputs
  without modifying model code;
* explicit ``backward`` methods per layer, chained by containers, so models
  can be *trained* from scratch (the paper starts from pre-trained networks,
  and with no network access we must produce those ourselves).

All computation is float32: the fault model flips bits of IEEE-754 float32
words, so parameters must be stored exactly as such.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

import numpy as np

__all__ = ["Parameter", "Module", "HookHandle"]


class Parameter:
    """A trainable tensor: float32 data plus an accumulated gradient."""

    def __init__(self, data: np.ndarray, requires_grad: bool = True):
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.grad: "np.ndarray | None" = None
        self.requires_grad = bool(requires_grad)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to None (lazy re-allocation)."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad``, allocating on first use."""
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape}, requires_grad={self.requires_grad})"


class HookHandle:
    """Removal handle returned by :meth:`Module.register_forward_hook`."""

    def __init__(self, hooks: "dict[int, Callable]", hook_id: int):
        self._hooks = hooks
        self._hook_id = hook_id

    def remove(self) -> None:
        """Detach the hook; safe to call more than once."""
        self._hooks.pop(self._hook_id, None)


class Module:
    """Base class for all layers and models.

    Subclasses implement :meth:`forward` and, if trainable, :meth:`backward`.
    Assigning a :class:`Parameter` or :class:`Module` to an attribute
    registers it automatically, which makes ``state_dict`` and parameter
    iteration work without boilerplate.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_forward_hooks", {})
        object.__setattr__(self, "_next_hook_id", 0)
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BN running mean)."""
        array = np.ascontiguousarray(value, dtype=np.float32)
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a registered buffer, keeping registration consistent."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r} on {type(self).__name__}")
        self.register_buffer(name, value)

    # ------------------------------------------------------------------ #
    # forward / backward
    # ------------------------------------------------------------------ #

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output; subclasses must override."""
        raise NotImplementedError(f"{type(self).__name__} does not implement forward")

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output``; returns the gradient w.r.t. input.

        Only needed for training; inference-only wrappers may omit it.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement backward")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        output = self.forward(x)
        for hook in list(self._forward_hooks.values()):
            hook(self, x, output)
        return output

    def register_forward_hook(
        self, hook: Callable[["Module", np.ndarray, np.ndarray], None]
    ) -> HookHandle:
        """Call ``hook(module, input, output)`` after every forward pass."""
        hook_id = self._next_hook_id
        object.__setattr__(self, "_next_hook_id", hook_id + 1)
        self._forward_hooks[hook_id] = hook
        return HookHandle(self._forward_hooks, hook_id)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs, self first."""
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        """Yield all modules in the tree, self first."""
        for _, module in self.named_modules():
            yield module

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        """Yield direct child ``(name, module)`` pairs."""
        yield from self._modules.items()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs over the whole tree."""
        for module_name, module in self.named_modules(prefix):
            for param_name, param in module._parameters.items():
                full = f"{module_name}.{param_name}" if module_name else param_name
                yield full, param

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters in the tree."""
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, buffer)`` pairs over the whole tree."""
        for module_name, module in self.named_modules(prefix):
            for buffer_name, buffer in module._buffers.items():
                full = f"{module_name}.{buffer_name}" if module_name else buffer_name
                yield full, buffer

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the tree."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients of every parameter in the tree."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # train / eval
    # ------------------------------------------------------------------ #

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively; returns self for chaining."""
        object.__setattr__(self, "training", bool(mode))
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively; returns self for chaining."""
        return self.train(False)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name→array mapping of all parameters and buffers (copies)."""
        state: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy()
        return state

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        """Load parameters and buffers from ``state`` (strict name/shape match)."""
        own_params = dict(self.named_parameters())
        own_buffer_owners: dict[str, tuple[Module, str]] = {}
        for module_name, module in self.named_modules():
            for buffer_name in module._buffers:
                full = f"{module_name}.{buffer_name}" if module_name else buffer_name
                own_buffer_owners[full] = (module, buffer_name)

        expected = set(own_params) | set(own_buffer_owners)
        provided = set(state)
        if expected != provided:
            missing = sorted(expected - provided)
            unexpected = sorted(provided - expected)
            raise KeyError(
                f"state dict mismatch: missing={missing!r} unexpected={unexpected!r}"
            )
        for name, param in own_params.items():
            array = np.ascontiguousarray(state[name], dtype=np.float32)
            if array.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.data.shape}, "
                    f"got {array.shape}"
                )
            param.data = array.copy()
        for name, (module, buffer_name) in own_buffer_owners.items():
            array = np.ascontiguousarray(state[name], dtype=np.float32)
            current = module._buffers[buffer_name]
            if array.shape != current.shape:
                raise ValueError(
                    f"shape mismatch for buffer {name!r}: expected {current.shape}, "
                    f"got {array.shape}"
                )
            module.register_buffer(buffer_name, array)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def extra_repr(self) -> str:
        """Layer-specific description appended inside ``repr``."""
        return ""

    def __repr__(self) -> str:
        header = f"{type(self).__name__}({self.extra_repr()})"
        children = [
            f"  ({name}): " + repr(child).replace("\n", "\n  ")
            for name, child in self._modules.items()
        ]
        if not children:
            return header
        return header[:-1] + "\n" + "\n".join(children) + "\n)"
