"""Tests for Conv2d: forward against a naive reference, backward against
numerical gradients."""

import numpy as np
import pytest

from repro import nn
from tests.conftest import numerical_gradient


def naive_conv2d(x, weight, bias, stride, padding):
    """Direct-loop cross-correlation reference."""
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    sh, sw = stride
    ph, pw = padding
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    out = np.zeros((n, c_out, out_h, out_w), dtype=np.float64)
    for b in range(n):
        for o in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    patch = padded[b, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
                    out[b, o, i, j] = float((patch * weight[o]).sum())
            if bias is not None:
                out[b, o] += bias[o]
    return out.astype(np.float32)


class TestConvForward:
    @pytest.mark.parametrize(
        "stride,padding", [((1, 1), (0, 0)), ((1, 1), (1, 1)), ((2, 2), (1, 1)), ((2, 1), (0, 1))]
    )
    def test_matches_naive(self, stride, padding):
        rng = np.random.default_rng(0)
        conv = nn.Conv2d(3, 4, 3, stride=stride, padding=padding, seed=1)
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        want = naive_conv2d(
            x, conv.weight.data, conv.bias.data, conv.stride, conv.padding
        )
        np.testing.assert_allclose(conv(x), want, rtol=1e-4, atol=1e-5)

    def test_no_bias(self):
        conv = nn.Conv2d(2, 3, 3, bias=False, seed=0)
        assert conv.bias is None
        x = np.random.default_rng(0).standard_normal((1, 2, 5, 5)).astype(np.float32)
        want = naive_conv2d(x, conv.weight.data, None, conv.stride, conv.padding)
        np.testing.assert_allclose(conv(x), want, rtol=1e-4, atol=1e-5)

    def test_wrong_channels_rejected(self):
        conv = nn.Conv2d(3, 4, 3, seed=0)
        with pytest.raises(ValueError, match="input channels"):
            conv(np.zeros((1, 2, 8, 8), dtype=np.float32))

    def test_wrong_ndim_rejected(self):
        conv = nn.Conv2d(3, 4, 3, seed=0)
        with pytest.raises(ValueError, match="NCHW"):
            conv(np.zeros((3, 8, 8), dtype=np.float32))

    def test_output_shape(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, seed=0)
        out = conv(np.zeros((4, 3, 32, 32), dtype=np.float32))
        assert out.shape == (4, 8, 16, 16)

    def test_deterministic_init(self):
        a = nn.Conv2d(3, 4, 3, seed=7)
        b = nn.Conv2d(3, 4, 3, seed=7)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestConvBackward:
    def _setup(self):
        conv = nn.Conv2d(2, 3, 3, stride=1, padding=1, seed=0)
        conv.train()
        x = np.random.default_rng(3).standard_normal((2, 2, 5, 5)).astype(np.float32) * 0.5
        return conv, x

    def test_input_gradient_numerical(self):
        conv, x = self._setup()

        def loss(x_in):
            conv_eval = nn.Conv2d(2, 3, 3, stride=1, padding=1, seed=0)
            conv_eval.eval()
            return float((conv_eval(x_in) ** 2).sum() / 2.0)

        out = conv(x)
        grad_in = conv.backward(out)  # d/dx of sum(out^2)/2 is backward(out)
        numeric = numerical_gradient(loss, x, eps=1e-2)
        np.testing.assert_allclose(grad_in, numeric, rtol=5e-2, atol=5e-2)

    def test_weight_gradient_numerical(self):
        conv, x = self._setup()
        out = conv(x)
        conv.backward(out)
        analytic = conv.weight.grad.copy()

        base_weight = conv.weight.data.copy()

        def loss(weight):
            probe = nn.Conv2d(2, 3, 3, stride=1, padding=1, seed=0)
            probe.weight.data = weight.astype(np.float32)
            probe.bias.data = conv.bias.data
            probe.eval()
            return float((probe(x) ** 2).sum() / 2.0)

        numeric = numerical_gradient(loss, base_weight, eps=1e-2)
        np.testing.assert_allclose(analytic, numeric, rtol=5e-2, atol=5e-2)

    def test_bias_gradient_is_output_sum(self):
        conv, x = self._setup()
        out = conv(x)
        grad_out = np.ones_like(out)
        conv.backward(grad_out)
        np.testing.assert_allclose(
            conv.bias.grad, grad_out.sum(axis=(0, 2, 3)), rtol=1e-5
        )

    def test_backward_before_forward_raises(self):
        conv = nn.Conv2d(2, 3, 3, seed=0)
        conv.train()
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 3, 3, 3), dtype=np.float32))

    def test_eval_mode_does_not_cache(self):
        conv = nn.Conv2d(2, 3, 3, seed=0)
        conv.eval()
        conv(np.zeros((1, 2, 5, 5), dtype=np.float32))
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 3, 3, 3), dtype=np.float32))


class TestConvValidation:
    def test_bad_padding_rejected(self):
        with pytest.raises(ValueError):
            nn.Conv2d(1, 1, 3, padding=-1)

    def test_bad_channels_rejected(self):
        with pytest.raises(ValueError):
            nn.Conv2d(0, 1, 3)

    def test_extra_repr(self):
        text = repr(nn.Conv2d(3, 8, 3, stride=2, seed=0))
        assert "stride=(2, 2)" in text
