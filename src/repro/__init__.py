"""FT-ClipAct reproduction (DATE 2020).

A pure-numpy reproduction of *"FT-ClipAct: Resilience Analysis of Deep
Neural Networks and Improving their Fault Tolerance using Clipped
Activation"* (Hoang, Hanif, Shafique - DATE 2020), including every
substrate the paper depends on:

* :mod:`repro.nn` / :mod:`repro.optim` - a numpy DNN framework with
  training (the PyTorch substitute);
* :mod:`repro.data` - datasets and the synthetic CIFAR-10 replacement;
* :mod:`repro.models` - AlexNet / VGG-16 topologies and a cached zoo;
* :mod:`repro.hw` - bit-addressable weight memory, IEEE-754 bit-flip
  fault models, a reversible injector, ECC and TMR protection models;
* :mod:`repro.core` - the paper's contribution: clipped activations,
  activation profiling, the AUC resilience metric, fault-injection
  campaigns, threshold fine-tuning (Algorithm 1) and the end-to-end
  hardening pipeline;
* :mod:`repro.analysis` - per-layer sensitivity, activation
  distributions under fault, and bit-position studies.

Quickstart::

    from repro.models import get_pretrained
    from repro.core import harden_model, run_campaign, CampaignConfig
    from repro.hw import WeightMemory

    bundle = get_pretrained(model="alexnet", width_mult=0.25)
    hardened = harden_model(bundle.model, bundle.val_set)
    memory = WeightMemory.from_model(bundle.model)
    images, labels = bundle.test_set.arrays()
    curve = run_campaign(bundle.model, memory, images, labels)
    print(curve.mean_accuracies(), curve.auc())
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "data",
    "hw",
    "models",
    "nn",
    "optim",
    "utils",
]
