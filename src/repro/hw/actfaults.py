"""Transient bit flips in activation memory (feature-map buffers).

The paper injects faults into the *weight* memory; accelerators also
buffer intermediate feature maps in on-chip SRAM, and frameworks like
Ares study upsets there too.  This module adds that fault surface: while
armed, every computational layer's output tensor has random bits flipped
at a per-bit rate before it flows into the following activation function
— so the paper's clipped activations naturally bound this corruption as
well, which the activation-fault benchmark demonstrates.

Activation faults are transient by construction (each forward pass
allocates fresh output buffers), so no undo machinery is needed.

:func:`run_activation_campaign` sweeps activation-fault rates through the
shared :class:`~repro.core.executor.CampaignExecutor` substrate — the
same ``rate/<i>/trial/<j>`` seed derivation, ``workers=`` fan-out
(bit-identical to serial), progress streaming and checkpoint resume as
the weight-fault campaigns; declarative scenarios reach it via
``campaign: activation`` (only the ``random_bitflip`` fault model —
corruption is sampled per layer output inside the forward pass, so
position-addressed models have no meaning on this surface).  Activation faults never write to weight
arrays, so under the zero-copy tensor plane (``docs/MEMORY_MODEL.md``)
this campaign's workers keep the *entire* network mapped read-only —
no copy-on-write ever fires — and share the parent's published clean
pass for the suffix cut at the first hooked layer.  Imports from
:mod:`repro.core` stay inside functions: the hw layer otherwise does
not depend on core.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from repro import nn
from repro.hw.bits import WORD_BITS, flip_bits_in_words
from repro.models.registry import computational_layers
from repro.utils.rng import SeedTree, as_generator
from repro.utils.validation import check_probability

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hw->core cycle
    from repro.core.campaign import CampaignConfig
    from repro.core.metrics import ResilienceCurve

__all__ = [
    "ActivationFaultInjector",
    "ActivationFaultCellTask",
    "flip_activation_bits",
    "run_activation_campaign",
]


def flip_activation_bits(
    values: np.ndarray, fault_rate: float, rng: np.random.Generator
) -> int:
    """Flip random bits of a float32 activation tensor in place.

    Returns the number of flipped bits.  The tensor must be contiguous
    float32 (which all layer outputs in this framework are).
    """
    check_probability("fault_rate", fault_rate)
    if values.dtype != np.float32:
        raise ValueError(f"activations must be float32, got {values.dtype}")
    if not values.flags["C_CONTIGUOUS"]:
        # reshape(-1) would silently copy and the faults would be lost.
        raise ValueError("activations must be C-contiguous for in-place faults")
    flat = values.reshape(-1)
    total_bits = flat.size * WORD_BITS
    count = int(rng.binomial(total_bits, fault_rate))
    if count == 0:
        return 0
    if count >= total_bits:
        bits = np.arange(total_bits, dtype=np.int64)
    else:
        bits = rng.choice(total_bits, size=count, replace=False).astype(np.int64)
    flip_bits_in_words(flat, bits // WORD_BITS, bits % WORD_BITS)
    return count


class ActivationFaultInjector:
    """Arms forward hooks that corrupt computational-layer outputs.

    Hooks are installed on every CONV/FC layer (or a named subset) at
    construction but stay dormant; faults fire only inside an
    :meth:`armed` block, at the rate given there.
    """

    def __init__(self, model: nn.Module, layers: "list[str] | None" = None):
        self.model = model
        pairs = computational_layers(model)
        if layers is not None:
            known = {name for name, _ in pairs}
            unknown = set(layers) - known
            if unknown:
                raise ValueError(
                    f"unknown layer names {sorted(unknown)!r}; model has "
                    f"{sorted(known)!r}"
                )
            pairs = [(name, module) for name, module in pairs if name in layers]
        if not pairs:
            raise ValueError("no computational layers selected")
        self.layer_names = [name for name, _ in pairs]
        self._rate: "float | None" = None
        self._rng: "np.random.Generator | None" = None
        self._flips_this_session = 0
        self._handles = [
            module.register_forward_hook(self._hook) for _, module in pairs
        ]

    def _hook(self, module: nn.Module, inputs: np.ndarray, output: np.ndarray) -> None:
        if self._rate is None or self._rng is None:
            return
        self._flips_this_session += flip_activation_bits(output, self._rate, self._rng)

    @property
    def armed(self) -> bool:
        """Whether faults are currently firing."""
        return self._rate is not None

    @contextmanager
    def session(
        self, fault_rate: float, rng: "int | np.random.Generator"
    ) -> Iterator["ActivationFaultInjector"]:
        """Fire faults at ``fault_rate`` for every forward in the block."""
        check_probability("fault_rate", fault_rate)
        if self.armed:
            raise RuntimeError("activation fault session already active")
        self._rate = float(fault_rate)
        self._rng = as_generator(rng)
        self._flips_this_session = 0
        try:
            yield self
        finally:
            self._rate = None
            self._rng = None

    @property
    def flips_this_session(self) -> int:
        """Bits flipped since the current/most recent session started."""
        return self._flips_this_session

    def remove(self) -> None:
        """Detach all hooks (the injector becomes inert)."""
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    def __enter__(self) -> "ActivationFaultInjector":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.remove()


class ActivationFaultCellTask:
    """Cell protocol for the activation-fault campaign.

    Picklable by construction: the task carries only the (hook-free)
    model and arrays; the :class:`ActivationFaultInjector` — whose hook
    handles do not survive pickling — is built per process by
    :meth:`make_runner`.
    """

    kind = "activation-fault"
    cell_width = 1

    def __init__(
        self,
        model: nn.Module,
        images: np.ndarray,
        labels: np.ndarray,
        config: "CampaignConfig | None" = None,
        layers: "list[str] | None" = None,
        label: str = "actfault",
        suffix: bool = True,
        batch_k: int = 0,
    ):
        from repro.core.campaign import CampaignConfig

        self.model = model
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.config = config if config is not None else CampaignConfig()
        self.layers = list(layers) if layers is not None else None
        self.label = label
        self._clean: "float | None" = None
        self.suffix = bool(suffix)
        # Accepted for schema uniformity; activation faults are sampled
        # *inside* the forward hooks, so variants cannot share a tail
        # and the runner always dispatches per cell.
        self.batch_k = int(batch_k)

    def __getstate__(self) -> dict:
        from repro.core.executor import payload_state

        return payload_state(self)

    def clean_accuracy(self) -> float:
        """Fault-free accuracy (hooks dormant or absent; computed lazily)."""
        if self._clean is None:
            from repro.core.metrics import evaluate_accuracy_arrays

            self._clean = evaluate_accuracy_arrays(
                self.model, self.images, self.labels, self.config.batch_size
            )
        return self._clean

    def absorb_clean_logits(self, logits_batches) -> None:
        """Seed the lazy clean accuracy from an engine's clean pass.

        The runner's engine runs its clean forward while the hooks are
        dormant, so its logits match :meth:`clean_accuracy` exactly.
        """
        from repro.core.executor import _accuracy_from_logits

        self._clean = _accuracy_from_logits(
            self._clean, logits_batches, self.labels
        )

    def make_runner(self) -> "_ActivationCellRunner":
        return _ActivationCellRunner(self)

    def build_result(
        self, rates: np.ndarray, values: np.ndarray
    ) -> "ResilienceCurve":
        from repro.core.metrics import ResilienceCurve

        return ResilienceCurve(
            fault_rates=rates,
            accuracies=values,
            clean_accuracy=self.clean_accuracy(),
            label=self.label,
        )


class _ActivationCellRunner:
    """Armed hooks + seed tree over one (possibly worker-local) model copy.

    :meth:`close` detaches the hooks — essential on the serial path,
    where the runner instruments the *caller's* model.

    The suffix cut point is *static* here: faults fire in the hooked
    layers' outputs during the forward itself, so every cell re-executes
    from the first hooked layer (its input is untouched by construction —
    upstream layers carry no hooks and clean weights).  The engine's
    clean pass runs while the hooks are dormant.  No empty-fault-set
    shortcut exists (corruption is sampled per layer inside the forward),
    so the engine is skipped entirely when the first hooked layer has no
    usable prefix.
    """

    def __init__(self, task: ActivationFaultCellTask):
        from repro.core.suffix import SuffixForwardEngine

        self.task = task
        self.injector = ActivationFaultInjector(task.model, layers=task.layers)
        self.engine = None
        self._forward = None
        try:
            self.tree = SeedTree(task.config.seed)
            # layer_names is in forward order; every cell cuts at the
            # first hooked layer, so only that boundary is worth caching.
            self.engine = SuffixForwardEngine.build(
                task.model,
                task.images,
                task.config.batch_size,
                scope_layers=self.injector.layer_names[:1],
                clean_shortcut=False,
                enabled=getattr(task, "suffix", True),
            )
            self._forward = (
                None
                if self.engine is None
                else self.engine.forward_fn(self.injector.layer_names)
            )
        except BaseException:
            # Construction must not leave hooks on the caller's model.
            self.close()
            raise

    def run_cell(self, rate_index: int, trial: int) -> float:
        from repro.core.executor import cell_seed_path
        from repro.core.metrics import evaluate_accuracy_arrays

        task = self.task
        rate = float(task.config.fault_rates[rate_index])
        rng = self.tree.generator(cell_seed_path(rate_index, trial))
        with self.injector.session(rate, rng):
            return evaluate_accuracy_arrays(
                task.model, task.images, task.labels, task.config.batch_size,
                forward=self._forward,
            )

    def close(self) -> None:
        if self.engine is not None:
            self.engine.close()
            self.engine = None
            self._forward = None
        self.injector.remove()


def run_activation_campaign(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    config: "CampaignConfig | None" = None,
    layers: "list[str] | None" = None,
    label: str = "actfault",
    workers: int = 1,
    progress: "Callable | None" = None,
    checkpoint: "str | None" = None,
    suffix: bool = True,
) -> "ResilienceCurve":
    """Rate sweep x trials with transient faults in activation memory.

    ``layers`` restricts the corrupted layer outputs (default: every
    CONV/FC layer).  ``workers`` fans the grid across a process pool
    (``0`` = one per CPU core) with curves bit-identical to serial;
    ``progress``/``checkpoint`` behave exactly as on the weight-fault
    campaigns.  The model's hooks are removed before returning.
    ``suffix`` toggles suffix re-execution from the first corrupted
    layer on the serial path (bit-identical either way; workers always
    run with the engine on — ``REPRO_NO_SUFFIX=1`` disables it
    everywhere).
    """
    from repro.core.executor import CampaignExecutor

    task = ActivationFaultCellTask(
        model, images, labels, config=config, layers=layers, label=label,
        suffix=suffix,
    )
    executor = CampaignExecutor(
        workers=workers, progress=progress, checkpoint=checkpoint
    )
    return executor.run_tasks([task])[0]
