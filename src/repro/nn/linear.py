"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W.T + b``.

    Weight shape is ``(out_features, in_features)``; bias is optional.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: "int | np.random.Generator | None" = None,
    ):
        super().__init__()
        check_positive("in_features", in_features)
        check_positive("out_features", out_features)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = as_generator(seed)
        self.weight = Parameter(
            init.kaiming_uniform((self.out_features, self.in_features), rng)
        )
        if bias:
            self.bias: "Parameter | None" = Parameter(init.zeros((self.out_features,)))
        else:
            self.bias = None
        self._input: "np.ndarray | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise ValueError(f"Linear expects (N, in_features), got shape {x.shape}")
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} input features, got {x.shape[1]}"
            )
        if self.training:
            self._input = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward in training mode")
        grad_output = np.asarray(grad_output, dtype=np.float32)
        self.weight.accumulate_grad(grad_output.T @ self._input)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        return grad_output @ self.weight.data

    def extra_repr(self) -> str:
        return (
            f"in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None}"
        )
