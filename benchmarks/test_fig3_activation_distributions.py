"""Paper Fig. 3 (b-d, f-h, j-l): activation distributions under faults.

For each analysed layer the paper shows the distribution of the layer's
output activations at increasing fault rates, annotated with ACT_max.
The expected shape: the clean distribution is compact (ACT_max of a few
units), and at damaging rates ACT_max explodes to ~1e36-1e38 because
exponent-MSB flips inflate weights — the observation that motivates
clipping.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.activations import capture_activation_distribution
from repro.analysis.reporting import format_rate, format_table
from repro.experiments import clone_model
from repro.hw.memory import WeightMemory

LAYERS = ["CONV-1", "CONV-5", "FC-1"]


def test_fig3_activation_distributions_explode(
    benchmark, alexnet_bundle, alexnet_eval, record_result
):
    images, _ = alexnet_eval
    model = clone_model(alexnet_bundle)

    def experiment():
        results = {}
        for layer in LAYERS:
            bits = WeightMemory.from_model(model, layers=[layer]).total_bits
            # Match the paper's panels: from a handful to hundreds of
            # expected faulty bits in the layer.
            rates = [0.0] + [flips / bits for flips in (4, 32, 256)]
            results[layer] = capture_activation_distribution(
                model, layer, images[:64], fault_rates=rates, seed=9
            )
        return results

    results = run_once(benchmark, experiment)

    lines = []
    for layer in LAYERS:
        rows = []
        for record in results[layer]:
            rows.append(
                [
                    format_rate(record.fault_rate),
                    f"{record.act_max:.4g}",
                    f"{record.mean:.4g}",
                    f"{100 * record.fraction_extreme:.4f}%",
                ]
            )
        lines.append(
            format_table(
                ["fault_rate", "ACT_max", "mean", "> 1e3"],
                rows,
                title=f"Fig. 3 distributions — {layer}",
            )
        )
        lines.append("")
    record_result("fig3_activation_distributions", "\n".join(lines))

    # Shape check: every layer's ACT_max explodes by many orders of
    # magnitude between the clean and the heaviest-fault panel.
    for layer in LAYERS:
        clean = results[layer][0]
        heavy = results[layer][-1]
        assert np.isfinite(clean.act_max) and clean.act_max < 1e3
        assert heavy.act_max > clean.act_max * 1e10
        # And high-intensity activations appear where there were none.
        assert heavy.fraction_extreme > clean.fraction_extreme
