"""Tests for the parallel campaign executor.

The load-bearing guarantee is *bit-identical* results at any worker
count: per-cell seeds depend only on (campaign seed, rate index, trial
index), worker models are exact copies of the parent's weights, and the
accuracy grid is assembled by cell index, never by completion order.
"""

import json

import numpy as np
import pytest

from repro.core.campaign import (
    CampaignConfig,
    FaultInjectionCampaign,
    RandomBitFlipSampler,
    run_campaign,
)
from repro.core.chaos import CHAOS_ENV_VAR, ChaosError
from repro.core.executor import (
    CampaignExecutor,
    CellResult,
    SupervisionPolicy,
    WeightFaultCellTask,
    cell_seed_path,
    resolve_workers,
)
from repro.hw.faultmodels import FaultSet
from repro.hw.memory import WeightMemory

RATES = (1e-5, 1e-4, 1e-3)


@pytest.fixture
def campaign_parts(trained_mlp, mlp_eval_arrays):
    images, labels = mlp_eval_arrays
    memory = WeightMemory.from_model(trained_mlp)
    config = CampaignConfig(fault_rates=RATES, trials=4, seed=11, batch_size=96)
    return trained_mlp, memory, images, labels, config


class TestResolveWorkers:
    def test_positive_passthrough(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            resolve_workers(2.5)


class TestSeedPathContract:
    def test_matches_campaign_derivation(self):
        """The documented common-random-numbers path must never change:
        existing curves and checkpoints depend on it."""
        assert cell_seed_path(0, 0) == "rate/0/trial/0"
        assert cell_seed_path(3, 17) == "rate/3/trial/17"


class TestParallelDeterminism:
    def test_two_workers_bit_identical_to_serial(self, campaign_parts):
        """The ISSUE's acceptance criterion: workers=2 == workers=1, bitwise."""
        model, memory, images, labels, config = campaign_parts
        serial = run_campaign(model, memory, images, labels, config)
        parallel = run_campaign(model, memory, images, labels, config, workers=2)
        np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)
        assert serial.clean_accuracy == parallel.clean_accuracy
        np.testing.assert_array_equal(serial.fault_rates, parallel.fault_rates)

    def test_three_workers_and_chunk_size_one(self, campaign_parts):
        """Extreme chunking (one cell per task) must not change anything."""
        model, memory, images, labels, config = campaign_parts
        campaign = FaultInjectionCampaign(model, memory, images, labels, config)
        serial = campaign.run()
        executor = CampaignExecutor(workers=3, chunk_size=1)
        parallel = executor.run(campaign)
        np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)

    def test_parallel_leaves_parent_weights_untouched(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        before = memory.snapshot()
        run_campaign(model, memory, images, labels, config, workers=2)
        for old, new in zip(before, memory.snapshot()):
            np.testing.assert_array_equal(old, new)

    def test_picklable_protection_sampler(self, campaign_parts):
        """Baseline samplers (ECC here) must survive the worker round-trip."""
        from repro.core.baselines import ecc_sampler

        model, memory, images, labels, _ = campaign_parts
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=3, seed=5)
        serial = run_campaign(
            model, memory, images, labels, config, sampler=ecc_sampler()
        )
        parallel = run_campaign(
            model, memory, images, labels, config, sampler=ecc_sampler(), workers=2
        )
        np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)

    def test_unpicklable_sampler_reports_clearly(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        local_state = []

        def closure_sampler(mem, rate, rng):  # closures cannot pickle
            local_state.append(rate)
            return FaultSet.empty()

        with pytest.raises(ValueError, match="picklable"):
            run_campaign(
                model, memory, images, labels, config,
                sampler=closure_sampler, workers=2,
            )

    def test_workers_zero_resolves_and_runs(self, campaign_parts):
        model, memory, images, labels, _ = campaign_parts
        config = CampaignConfig(fault_rates=(1e-4,), trials=2, seed=1)
        serial = run_campaign(model, memory, images, labels, config)
        auto = run_campaign(model, memory, images, labels, config, workers=0)
        np.testing.assert_array_equal(serial.accuracies, auto.accuracies)


class TestProgressStreaming:
    def test_serial_progress_covers_grid_in_order(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        seen: list[CellResult] = []
        run_campaign(
            model, memory, images, labels, config, progress=seen.append
        )
        total = len(RATES) * config.trials
        assert len(seen) == total
        assert [c.completed for c in seen] == list(range(1, total + 1))
        assert all(c.total == total for c in seen)
        # Serial order is rate-major, matching the historical loop.
        assert [(c.rate_index, c.trial) for c in seen] == [
            (i, j) for i in range(len(RATES)) for j in range(config.trials)
        ]
        assert not any(c.from_checkpoint for c in seen)

    def test_parallel_progress_covers_grid(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        seen: list[CellResult] = []
        curve = run_campaign(
            model, memory, images, labels, config, workers=2, progress=seen.append
        )
        total = len(RATES) * config.trials
        assert len(seen) == total
        assert sorted((c.rate_index, c.trial) for c in seen) == [
            (i, j) for i in range(len(RATES)) for j in range(config.trials)
        ]
        # Streamed accuracies agree with the assembled grid.
        for cell in seen:
            assert curve.accuracies[cell.rate_index, cell.trial] == cell.accuracy


class TestCheckpointResume:
    def test_checkpoint_written_and_complete(self, campaign_parts, tmp_path):
        model, memory, images, labels, config = campaign_parts
        path = tmp_path / "sweep.json"
        curve = run_campaign(
            model, memory, images, labels, config, checkpoint=str(path)
        )
        payload = json.loads(path.read_text())
        assert payload["seed"] == config.seed
        assert len(payload["cells"]) == len(RATES) * config.trials
        for key, accuracy in payload["cells"].items():
            rate_index, trial = map(int, key.split("/"))
            assert curve.accuracies[rate_index, trial] == accuracy

    def test_resume_skips_completed_cells(self, campaign_parts, tmp_path):
        model, memory, images, labels, config = campaign_parts
        path = tmp_path / "sweep.json"
        full = run_campaign(
            model, memory, images, labels, config, checkpoint=str(path)
        )
        # Drop some cells from the checkpoint to simulate an interrupt.
        payload = json.loads(path.read_text())
        keys = sorted(payload["cells"])
        removed = keys[::3]
        for key in removed:
            del payload["cells"][key]
        path.write_text(json.dumps(payload))

        recomputed: list[CellResult] = []

        def progress(cell):
            if not cell.from_checkpoint:
                recomputed.append(cell)

        resumed = run_campaign(
            model, memory, images, labels, config,
            checkpoint=str(path), progress=progress,
        )
        assert {(c.rate_index, c.trial) for c in recomputed} == {
            tuple(map(int, key.split("/"))) for key in removed
        }
        np.testing.assert_array_equal(full.accuracies, resumed.accuracies)

    def test_fully_checkpointed_run_recomputes_nothing(
        self, campaign_parts, tmp_path
    ):
        model, memory, images, labels, config = campaign_parts
        path = tmp_path / "sweep.json"
        first = run_campaign(
            model, memory, images, labels, config, checkpoint=str(path)
        )
        recomputed = []
        second = run_campaign(
            model, memory, images, labels, config, checkpoint=str(path),
            progress=lambda cell: recomputed.append(cell)
            if not cell.from_checkpoint else None,
        )
        assert recomputed == []
        np.testing.assert_array_equal(first.accuracies, second.accuracies)

    def test_parallel_resume_of_serial_checkpoint(self, campaign_parts, tmp_path):
        """A sweep checkpointed serially can be finished by a worker pool."""
        model, memory, images, labels, config = campaign_parts
        serial = run_campaign(model, memory, images, labels, config)
        path = tmp_path / "sweep.json"
        run_campaign(model, memory, images, labels, config, checkpoint=str(path))
        # Prune the checkpoint down to one completed cell.
        payload = json.loads(path.read_text())
        payload["cells"] = {"0/0": payload["cells"]["0/0"]}
        path.write_text(json.dumps(payload))
        resumed = run_campaign(
            model, memory, images, labels, config,
            workers=2, checkpoint=str(path),
        )
        np.testing.assert_array_equal(serial.accuracies, resumed.accuracies)

    def test_mismatched_checkpoint_rejected(self, campaign_parts, tmp_path):
        model, memory, images, labels, config = campaign_parts
        path = tmp_path / "sweep.json"
        run_campaign(model, memory, images, labels, config, checkpoint=str(path))
        other = CampaignConfig(
            fault_rates=RATES, trials=config.trials, seed=config.seed + 1
        )
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(model, memory, images, labels, other, checkpoint=str(path))

    def test_checkpoint_rejects_different_model_same_config(
        self, campaign_parts, tmp_path
    ):
        """The fingerprint covers campaign *content*, not just the grid:
        the same config on different weights must not resume."""
        model, memory, images, labels, config = campaign_parts
        path = tmp_path / "sweep.json"
        run_campaign(model, memory, images, labels, config, checkpoint=str(path))

        from repro.models import MLP

        other_model = MLP(3 * 8 * 8, 10, hidden=(64, 32), seed=99)
        other_model.eval()
        other_memory = WeightMemory.from_model(other_model)
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(
                other_model, other_memory, images, labels, config,
                checkpoint=str(path),
            )

    def test_checkpoint_rejects_different_sampler_same_config(
        self, campaign_parts, tmp_path
    ):
        from repro.core.baselines import ecc_sampler

        model, memory, images, labels, config = campaign_parts
        path = tmp_path / "sweep.json"
        run_campaign(model, memory, images, labels, config, checkpoint=str(path))
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(
                model, memory, images, labels, config,
                sampler=ecc_sampler(), checkpoint=str(path),
            )


class TestMidGridKillResume:
    def test_serial_kill_then_serial_resume(self, campaign_parts, tmp_path):
        """An exception mid-grid leaves a valid checkpoint; resuming
        recomputes only the missing cells and matches the full run."""
        model, memory, images, labels, config = campaign_parts
        full = run_campaign(model, memory, images, labels, config)
        path = tmp_path / "sweep.json"
        kill_at = 5

        class _Kill(RuntimeError):
            pass

        def killer(cell):
            if cell.completed == kill_at:
                raise _Kill("simulated crash")

        with pytest.raises(_Kill):
            run_campaign(
                model, memory, images, labels, config,
                progress=killer, checkpoint=str(path),
            )
        saved = len(json.loads(path.read_text())["cells"])
        assert 0 < saved < len(RATES) * config.trials

        recomputed = []
        resumed = run_campaign(
            model, memory, images, labels, config, checkpoint=str(path),
            progress=lambda cell: recomputed.append(cell)
            if not cell.from_checkpoint else None,
        )
        assert len(recomputed) == len(RATES) * config.trials - saved
        np.testing.assert_array_equal(full.accuracies, resumed.accuracies)

    def test_serial_kill_then_parallel_resume(self, campaign_parts, tmp_path):
        model, memory, images, labels, config = campaign_parts
        full = run_campaign(model, memory, images, labels, config)
        path = tmp_path / "sweep.json"

        class _Kill(RuntimeError):
            pass

        def killer(cell):
            if cell.completed == 4:
                raise _Kill

        with pytest.raises(_Kill):
            run_campaign(
                model, memory, images, labels, config,
                progress=killer, checkpoint=str(path),
            )
        resumed = run_campaign(
            model, memory, images, labels, config,
            workers=2, checkpoint=str(path),
        )
        np.testing.assert_array_equal(full.accuracies, resumed.accuracies)

    def test_weights_intact_after_kill(self, campaign_parts, tmp_path):
        model, memory, images, labels, config = campaign_parts
        before = memory.snapshot()

        class _Kill(RuntimeError):
            pass

        def killer(cell):
            raise _Kill

        with pytest.raises(_Kill):
            run_campaign(
                model, memory, images, labels, config,
                progress=killer, checkpoint=str(tmp_path / "s.json"),
            )
        for old, new in zip(before, memory.snapshot()):
            np.testing.assert_array_equal(old, new)


class TestCrossCampaignScheduling:
    """run_tasks: cells from several campaigns through one scheduling pass."""

    def _tasks(self, campaign_parts):
        """Two campaigns over the same model: full memory and a layer slice."""
        from repro.core.baselines import ecc_sampler

        model, memory, images, labels, config = campaign_parts
        scoped = WeightMemory.from_model(model, layers=["FC-1"])
        return [
            WeightFaultCellTask(
                model, memory, images, labels, config=config, label="full"
            ),
            WeightFaultCellTask(
                model, scoped, images, labels, config=config,
                sampler=ecc_sampler(), label="fc1-ecc",
            ),
        ]

    def test_serial_matches_back_to_back_campaigns(self, campaign_parts):
        """run_tasks with workers=1 is exactly the historical sequential
        per-campaign loops."""
        from repro.core.baselines import ecc_sampler

        model, memory, images, labels, config = campaign_parts
        scoped = WeightMemory.from_model(model, layers=["FC-1"])
        baseline_full = run_campaign(model, memory, images, labels, config)
        baseline_scoped = run_campaign(
            model, scoped, images, labels, config, sampler=ecc_sampler()
        )

        curves = CampaignExecutor(workers=1).run_tasks(self._tasks(campaign_parts))
        np.testing.assert_array_equal(curves[0].accuracies, baseline_full.accuracies)
        np.testing.assert_array_equal(
            curves[1].accuracies, baseline_scoped.accuracies
        )
        assert curves[0].label == "full" and curves[1].label == "fc1-ecc"

    def test_shared_pool_bit_identical_to_serial(self, campaign_parts):
        serial = CampaignExecutor(workers=1).run_tasks(self._tasks(campaign_parts))
        pooled = CampaignExecutor(workers=2, chunk_size=2).run_tasks(
            self._tasks(campaign_parts)
        )
        for a, b in zip(serial, pooled):
            np.testing.assert_array_equal(a.accuracies, b.accuracies)
            assert a.clean_accuracy == b.clean_accuracy

    def test_mixed_campaign_kinds_share_one_sweep(self, campaign_parts):
        """Weight-fault and quantized tasks can interleave in one pool."""
        from repro.core.quantized import QuantizedCellTask, run_quantized_campaign

        model, memory, images, labels, config = campaign_parts
        tasks = [
            WeightFaultCellTask(
                model, memory, images, labels, config=config, label="float32"
            ),
            QuantizedCellTask(model, memory, images, labels, config, label="int8"),
        ]
        float_baseline = run_campaign(model, memory, images, labels, config)
        int8_baseline = run_quantized_campaign(model, memory, images, labels, config)
        curves = CampaignExecutor(workers=2).run_tasks(tasks)
        np.testing.assert_array_equal(
            curves[0].accuracies, float_baseline.accuracies
        )
        np.testing.assert_array_equal(curves[1].accuracies, int8_baseline.accuracies)

    def test_single_pool_for_all_tasks(self, campaign_parts, monkeypatch):
        """The whole point of run_tasks: one pool, not one per campaign."""
        import repro.core.executor as executor_module

        created = []
        real_pool = executor_module.ProcessPoolExecutor

        def counting_pool(*args, **kwargs):
            created.append(1)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", counting_pool)
        CampaignExecutor(workers=2).run_tasks(self._tasks(campaign_parts))
        assert len(created) == 1

    def test_progress_labels_cells_by_campaign(self, campaign_parts):
        seen: list[CellResult] = []
        CampaignExecutor(workers=1, progress=seen.append).run_tasks(
            self._tasks(campaign_parts)
        )
        per_task = len(RATES) * campaign_parts[4].trials
        assert len(seen) == 2 * per_task
        assert all(c.total == 2 * per_task for c in seen)
        assert [c.completed for c in seen] == list(range(1, 2 * per_task + 1))
        assert {c.campaign_label for c in seen} == {"full", "fc1-ecc"}
        assert {c.campaign_index for c in seen} == {0, 1}

    def test_cross_campaign_checkpoint_resume(self, campaign_parts, tmp_path):
        """Kill a multi-campaign sweep mid-way through the *second*
        campaign; the resume recomputes only what is missing."""
        full = CampaignExecutor(workers=1).run_tasks(self._tasks(campaign_parts))
        path = tmp_path / "multi.json"
        per_task = len(RATES) * campaign_parts[4].trials

        class _Kill(RuntimeError):
            pass

        def killer(cell):
            if cell.completed == per_task + 3:  # inside campaign #2
                raise _Kill

        with pytest.raises(_Kill):
            CampaignExecutor(
                workers=1, progress=killer, checkpoint=str(path)
            ).run_tasks(self._tasks(campaign_parts))
        saved = len(json.loads(path.read_text())["cells"])
        assert per_task < saved < 2 * per_task

        recomputed = []
        resumed = CampaignExecutor(
            workers=1, checkpoint=str(path),
            progress=lambda cell: recomputed.append(cell)
            if not cell.from_checkpoint else None,
        ).run_tasks(self._tasks(campaign_parts))
        assert len(recomputed) == 2 * per_task - saved
        # Everything recomputed belongs to the killed second campaign.
        assert {c.campaign_index for c in recomputed} == {1}
        for a, b in zip(full, resumed):
            np.testing.assert_array_equal(a.accuracies, b.accuracies)

    def test_cross_campaign_checkpoint_resumes_in_parallel(
        self, campaign_parts, tmp_path
    ):
        full = CampaignExecutor(workers=1).run_tasks(self._tasks(campaign_parts))
        path = tmp_path / "multi.json"

        class _Kill(RuntimeError):
            pass

        def killer(cell):
            if cell.completed == 3:
                raise _Kill

        with pytest.raises(_Kill):
            CampaignExecutor(
                workers=1, progress=killer, checkpoint=str(path)
            ).run_tasks(self._tasks(campaign_parts))
        resumed = CampaignExecutor(workers=2, checkpoint=str(path)).run_tasks(
            self._tasks(campaign_parts)
        )
        for a, b in zip(full, resumed):
            np.testing.assert_array_equal(a.accuracies, b.accuracies)

    def test_multi_checkpoint_rejects_single_campaign(
        self, campaign_parts, tmp_path
    ):
        """A cross-campaign checkpoint can't resume a single-campaign
        sweep (and vice versa): the fingerprint layouts differ."""
        path = tmp_path / "multi.json"
        CampaignExecutor(workers=1, checkpoint=str(path)).run_tasks(
            self._tasks(campaign_parts)
        )
        model, memory, images, labels, config = campaign_parts
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(model, memory, images, labels, config, checkpoint=str(path))

    def test_multi_checkpoint_rejects_reordered_tasks(
        self, campaign_parts, tmp_path
    ):
        path = tmp_path / "multi.json"
        CampaignExecutor(workers=1, checkpoint=str(path)).run_tasks(
            self._tasks(campaign_parts)
        )
        reordered = list(reversed(self._tasks(campaign_parts)))
        with pytest.raises(ValueError, match="different campaign"):
            CampaignExecutor(workers=1, checkpoint=str(path)).run_tasks(reordered)

    def test_empty_task_list(self):
        assert CampaignExecutor(workers=2).run_tasks([]) == []


class TestWarmPool:
    def test_persistent_executor_reuses_one_pool(self, campaign_parts, monkeypatch):
        """Back-to-back run_tasks calls on a persistent executor share one
        warm pool; results stay bit-identical to one-shot executors."""
        import repro.core.executor as executor_module

        created = []
        real_pool = executor_module.ProcessPoolExecutor

        def counting_pool(*args, **kwargs):
            created.append(1)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", counting_pool)
        model, memory, images, labels, config = campaign_parts
        baseline = run_campaign(model, memory, images, labels, config)
        with CampaignExecutor(workers=2, persistent=True) as executor:
            for _ in range(3):
                curve = executor.run(
                    FaultInjectionCampaign(model, memory, images, labels, config)
                )
                np.testing.assert_array_equal(curve.accuracies, baseline.accuracies)
        assert len(created) == 1

    def test_close_is_idempotent_and_allows_reuse(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        executor = CampaignExecutor(workers=2, persistent=True)
        first = executor.run(
            FaultInjectionCampaign(model, memory, images, labels, config)
        )
        executor.close()
        executor.close()
        # A fresh pool is built transparently after close.
        second = executor.run(
            FaultInjectionCampaign(model, memory, images, labels, config)
        )
        executor.close()
        np.testing.assert_array_equal(first.accuracies, second.accuracies)

    def test_prepickled_payloads_skip_reserialization(
        self, campaign_parts, monkeypatch
    ):
        """run_tasks(payloads=...) must use the given payloads verbatim —
        both the legacy raw-bytes form and the packed-unit form."""
        import pickle

        import repro.core.executor as executor_module
        from repro.utils.shm import pack_object

        model, memory, images, labels, config = campaign_parts
        task = WeightFaultCellTask(model, memory, images, labels, config=config)
        blob = pickle.dumps(task)
        unit = pack_object(task)
        monkeypatch.setattr(
            executor_module,
            "_pack_task",
            lambda task: pytest.fail("pre-packed task was re-serialized"),
        )
        baseline = run_campaign(model, memory, images, labels, config)
        curve = CampaignExecutor(workers=2).run_tasks([task], payloads=[blob])[0]
        np.testing.assert_array_equal(curve.accuracies, baseline.accuracies)
        curve = CampaignExecutor(workers=2).run_tasks([task], payloads=[unit])[0]
        np.testing.assert_array_equal(curve.accuracies, baseline.accuracies)

    def test_payloads_length_mismatch_rejected(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        task = WeightFaultCellTask(model, memory, images, labels, config=config)
        with pytest.raises(ValueError, match="payloads"):
            CampaignExecutor(workers=2).run_tasks([task], payloads=[])


class TestExecutorValidation:
    def test_negative_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            CampaignExecutor(chunk_size=-1)

    def test_sampler_classes_are_picklable(self):
        import pickle

        from repro.core.baselines import dmr_sampler, ecc_sampler, tmr_sampler
        from repro.core.campaign import fault_model_sampler, random_bitflip_sampler
        from repro.hw.faultmodels import RandomBitFlip

        for sampler in (
            random_bitflip_sampler(),
            fault_model_sampler(RandomBitFlip),
            ecc_sampler(),
            tmr_sampler(),
            dmr_sampler(),
        ):
            assert isinstance(pickle.loads(pickle.dumps(sampler)), type(sampler))

    def test_default_sampler_is_random_bitflip(self):
        from repro.core.campaign import random_bitflip_sampler

        assert isinstance(random_bitflip_sampler(), RandomBitFlipSampler)


class _ExplodingSampler:
    """Picklable sampler that blows up inside a worker's run_cell."""

    def __call__(self, memory, rate, rng):
        raise RuntimeError("boom in worker")


def _tracking_shm(monkeypatch):
    """Wrap SharedMemory so every create/unlink is recorded parent-side."""
    import repro.utils.shm as shm_module

    real = shm_module._shared_memory
    created, unlinked = [], []

    class TrackingSharedMemory(real.SharedMemory):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            if kwargs.get("create"):
                created.append(self.name)

        def unlink(self):
            unlinked.append(self.name)
            super().unlink()

    class TrackingModule:
        SharedMemory = TrackingSharedMemory

    monkeypatch.setattr(shm_module, "_shared_memory", TrackingModule)
    return created, unlinked


class TestSegmentCleanup:
    """Shm segments must be unlinked no matter how the sweep ends."""

    def test_normal_run_releases_every_segment(self, campaign_parts, monkeypatch):
        from repro.utils.shm import shared_memory_available

        if not shared_memory_available():  # pragma: no cover
            pytest.skip("platform without shared memory")
        created, unlinked = _tracking_shm(monkeypatch)
        model, memory, images, labels, config = campaign_parts
        run_campaign(model, memory, images, labels, config, workers=2)
        assert created, "parallel run did not use shared memory"
        assert sorted(created) == sorted(unlinked)

    def test_worker_exception_still_unlinks(self, campaign_parts, monkeypatch):
        created, unlinked = _tracking_shm(monkeypatch)
        model, memory, images, labels, config = campaign_parts
        task = WeightFaultCellTask(
            model, memory, images, labels, config=config,
            sampler=_ExplodingSampler(),
        )
        with pytest.raises(RuntimeError, match="boom in worker"):
            CampaignExecutor(workers=2).run_tasks([task])
        assert created, "parallel run did not use shared memory"
        assert sorted(created) == sorted(unlinked)

    def test_parent_interrupt_still_unlinks(self, campaign_parts, monkeypatch):
        """A KeyboardInterrupt mid-sweep must not leak the segment."""
        created, unlinked = _tracking_shm(monkeypatch)
        model, memory, images, labels, config = campaign_parts

        def interrupt(result):
            raise KeyboardInterrupt

        executor = CampaignExecutor(workers=2, progress=interrupt)
        task = WeightFaultCellTask(model, memory, images, labels, config=config)
        with pytest.raises(KeyboardInterrupt):
            executor.run_tasks([task])
        assert created, "parallel run did not use shared memory"
        assert sorted(created) == sorted(unlinked)


class TestZeroCopyFallbackMatrix:
    """ISSUE 4: shm unavailable, suffix budget exceeded and
    REPRO_NO_SHM_VIEWS=1 must all be bit-identical to the mapped path."""

    def _parallel(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        return run_campaign(model, memory, images, labels, config, workers=2)

    @pytest.fixture
    def baseline(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        return run_campaign(model, memory, images, labels, config)

    def test_zero_copy_views_bit_identical(self, campaign_parts, baseline):
        curve = self._parallel(campaign_parts)
        np.testing.assert_array_equal(curve.accuracies, baseline.accuracies)

    def test_no_shm_views_bit_identical(self, campaign_parts, baseline, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM_VIEWS", "1")
        curve = self._parallel(campaign_parts)
        np.testing.assert_array_equal(curve.accuracies, baseline.accuracies)

    def test_shm_unavailable_bit_identical(self, campaign_parts, baseline, monkeypatch):
        import repro.utils.shm as shm_module

        monkeypatch.setattr(shm_module, "_shared_memory", None)
        curve = self._parallel(campaign_parts)
        np.testing.assert_array_equal(curve.accuracies, baseline.accuracies)

    def test_suffix_budget_exhausted_bit_identical(
        self, campaign_parts, baseline, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SUFFIX_BUDGET_MB", "0")
        curve = self._parallel(campaign_parts)
        np.testing.assert_array_equal(curve.accuracies, baseline.accuracies)

    def test_no_suffix_and_no_views_combined(self, campaign_parts, baseline, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SUFFIX", "1")
        monkeypatch.setenv("REPRO_NO_SHM_VIEWS", "1")
        curve = self._parallel(campaign_parts)
        np.testing.assert_array_equal(curve.accuracies, baseline.accuracies)


class TestWorkerPlaneWiring:
    """In-process exercise of the worker-side plane machinery."""

    def test_worker_runner_maps_views_and_shared_cache(self, campaign_parts):
        import repro.core.executor as executor_module
        from repro.core.executor import (
            _export_suffix_caches,
            _init_worker,
            _run_task_cells,
        )
        from repro.utils.shm import pack_object, ship_units, shared_memory_available

        if not shared_memory_available():  # pragma: no cover
            pytest.skip("platform without shared memory")
        model, memory, images, labels, config = campaign_parts
        task = WeightFaultCellTask(model, memory, images, labels, config=config)
        unit = pack_object(task)
        pending = [[(0, 0)]]
        caches = _export_suffix_caches([task], pending)
        shipment = ship_units(
            [("task/0", unit)]
            + [(f"suffix/{i}", u) for i, u in caches.items()]
        )
        baseline = task.make_runner()
        try:
            expected = baseline.run_cell(0, 0)
        finally:
            baseline.close()
        saved_state = executor_module._WORKER_STATE
        try:
            _init_worker()
            results = _run_task_cells(shipment.ref, (0, 1), 0, [(0, 0)])
            assert results == [(0, 0, 0, expected)]
            state = executor_module._WORKER_STATE
            runner = state["runner"]
            # The worker's engine attached the published clean pass...
            assert runner.engine is not None
            assert runner.engine.stats["from_shared_cache"] is True
            # ...and its model is mapped, not copied: exactly the
            # regions the cell's fault set wrote were privatized.
            from repro.hw.injector import FaultInjector
            from repro.utils.rng import SeedTree

            rng = SeedTree(config.seed).generator(cell_seed_path(0, 0))
            fault_set = task.sampler(memory, float(config.fault_rates[0]), rng)
            affected = set(FaultInjector(memory).affected_layers(fault_set))
            writable = {
                r.layer_name
                for r in runner.task.memory.regions
                if r.parameter.data.flags.writeable
            }
            assert writable == affected
            assert not runner.task.images.flags.writeable
            runner.close()
            state["runner"] = None
            # Drop every view-holding reference before the detach, as
            # the worker loop does (runner first, then the old plane).
            del runner
            state["view"].close()
        finally:
            executor_module._WORKER_STATE = saved_state
            shipment.release()

class TestSupervisionPolicy:
    def test_defaults(self):
        policy = SupervisionPolicy()
        assert policy.max_retries == 2
        assert policy.cell_timeout is None
        assert policy.on_cell_error == "abort"

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            SupervisionPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="cell_timeout"):
            SupervisionPolicy(cell_timeout=0)
        with pytest.raises(ValueError, match="on_cell_error"):
            SupervisionPolicy(on_cell_error="explode")
        with pytest.raises(ValueError, match="retry_backoff"):
            SupervisionPolicy(retry_backoff=-0.1)
        with pytest.raises(ValueError, match="max_pool_rebuilds"):
            SupervisionPolicy(max_pool_rebuilds=-1)

    def test_from_env_and_explicit_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_ON_CELL_ERROR", "quarantine")
        policy = SupervisionPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.cell_timeout == 1.5
        assert policy.on_cell_error == "quarantine"
        # Explicit arguments beat the environment, knob by knob.
        mixed = SupervisionPolicy.from_env(max_retries=1, on_cell_error="retry")
        assert mixed.max_retries == 1
        assert mixed.cell_timeout == 1.5
        assert mixed.on_cell_error == "retry"

    def test_backoff_is_deterministic_and_capped(self):
        policy = SupervisionPolicy(retry_backoff=0.1)
        assert policy.backoff_seconds(0) == 0.0
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)
        assert policy.backoff_seconds(7) == policy.backoff_seconds(50)
        assert SupervisionPolicy(retry_backoff=0.0).backoff_seconds(3) == 0.0

    def test_policy_and_shorthand_knobs_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            CampaignExecutor(supervision=SupervisionPolicy(), max_retries=1)

    def test_executor_shorthand_resolves_policy(self):
        executor = CampaignExecutor(
            max_retries=7, cell_timeout=2.0, on_cell_error="quarantine"
        )
        assert executor.supervision.max_retries == 7
        assert executor.supervision.cell_timeout == 2.0
        assert executor.supervision.on_cell_error == "quarantine"


class TestChaosSupervision:
    """The tentpole guarantee under deterministic fault injection:
    disturbed runs either *recover bit-identically* (retry succeeds) or
    *quarantine* the failing cell as a ``failed`` outcome — never hang,
    never silently corrupt the grid."""

    @pytest.fixture
    def baseline(self, campaign_parts):
        model, memory, images, labels, config = campaign_parts
        return run_campaign(model, memory, images, labels, config)

    def _run(self, campaign_parts, workers, **executor_kwargs):
        model, memory, images, labels, config = campaign_parts
        task = WeightFaultCellTask(model, memory, images, labels, config=config)
        executor = CampaignExecutor(workers=workers, **executor_kwargs)
        result = executor.run_tasks([task])[0]
        return result, executor

    @pytest.mark.parametrize("workers", [1, 2])
    def test_injected_exceptions_retry_bit_identical(
        self, campaign_parts, baseline, monkeypatch, workers
    ):
        """Every cell's first dispatch raises; the retry succeeds and the
        recovered grid is bit-identical to the undisturbed run."""
        monkeypatch.setenv(CHAOS_ENV_VAR, "raise=1,attempts=1")
        result, executor = self._run(
            campaign_parts, workers, on_cell_error="retry"
        )
        np.testing.assert_array_equal(result.accuracies, baseline.accuracies)
        assert executor.quarantined == []

    def test_worker_kill_recovers_bit_identical_without_leaks(
        self, campaign_parts, baseline, monkeypatch
    ):
        """Satellite 2: a worker SIGKILLed mid-cell breaks the whole pool;
        the executor rebuilds it, re-dispatches only the in-flight cells,
        reproduces the exact grid, and unlinks every shm segment."""
        from repro.utils.shm import shared_memory_available

        if not shared_memory_available():  # pragma: no cover
            pytest.skip("platform without shared memory")
        created, unlinked = _tracking_shm(monkeypatch)
        monkeypatch.setenv(CHAOS_ENV_VAR, "kill=1,attempts=1,cell=0:1")
        result, executor = self._run(
            campaign_parts, 2, on_cell_error="retry"
        )
        np.testing.assert_array_equal(result.accuracies, baseline.accuracies)
        assert executor.quarantined == []
        assert created, "parallel run did not use shared memory"
        assert sorted(created) == sorted(unlinked)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_default_policy_aborts_on_injected_exception(
        self, campaign_parts, monkeypatch, workers
    ):
        monkeypatch.setenv(CHAOS_ENV_VAR, "raise=1,attempts=99,cell=0:1")
        with pytest.raises(ChaosError, match="injected failure"):
            self._run(campaign_parts, workers)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_persistent_exception_quarantines_cell(
        self, campaign_parts, baseline, monkeypatch, workers
    ):
        """A cell that fails on every attempt is quarantined as a
        ``failed`` outcome after max_retries; the rest of the grid
        completes bit-identically."""
        monkeypatch.setenv(CHAOS_ENV_VAR, "raise=1,attempts=99,cell=0:1")
        result, executor = self._run(
            campaign_parts, workers, on_cell_error="retry", max_retries=1
        )
        assert len(executor.quarantined) == 1
        record = executor.quarantined[0]
        assert record["reason"] == "exception"
        assert (record["rate_index"], record["trial"]) == (0, 1)
        assert record["attempts"] == 2  # initial dispatch + one retry
        assert "injected failure" in record["error"]
        assert np.isnan(result.accuracies[0, 1])
        mask = np.ones_like(result.accuracies, dtype=bool)
        mask[0, 1] = False
        np.testing.assert_array_equal(
            result.accuracies[mask], baseline.accuracies[mask]
        )

    def test_timeout_quarantines_stalled_cell(
        self, campaign_parts, baseline, monkeypatch
    ):
        """A cell exceeding --cell-timeout is quarantined as a failed
        outcome instead of hanging or crashing the campaign."""
        monkeypatch.setenv(
            CHAOS_ENV_VAR, "delay=1,delay_seconds=30,attempts=99,cell=0:1"
        )
        result, executor = self._run(
            campaign_parts, 2,
            supervision=SupervisionPolicy(
                max_retries=0, cell_timeout=0.75, on_cell_error="retry"
            ),
        )
        assert [
            (r["reason"], r["rate_index"], r["trial"])
            for r in executor.quarantined
        ] == [("timeout", 0, 1)]
        assert np.isnan(result.accuracies[0, 1])
        mask = np.ones_like(result.accuracies, dtype=bool)
        mask[0, 1] = False
        np.testing.assert_array_equal(
            result.accuracies[mask], baseline.accuracies[mask]
        )

    def test_repeated_pool_loss_degrades_to_serial(
        self, campaign_parts, baseline, monkeypatch
    ):
        """Past max_pool_rebuilds the executor stops thrashing and runs
        the remaining cells serially in-process — still bit-identical."""
        monkeypatch.setenv(CHAOS_ENV_VAR, "kill=1,attempts=1")
        policy = SupervisionPolicy(max_pool_rebuilds=0, on_cell_error="retry")
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            result, executor = self._run(
                campaign_parts, 2, supervision=policy
            )
        np.testing.assert_array_equal(result.accuracies, baseline.accuracies)
        assert executor.quarantined == []


class TestInterruptFlush:
    """Satellite 1: Ctrl-C mid-run must flush the checkpoint atomically
    before the KeyboardInterrupt propagates, so every completed cell
    survives into the resume."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_keyboard_interrupt_flushes_checkpoint(
        self, campaign_parts, tmp_path, workers
    ):
        model, memory, images, labels, config = campaign_parts
        path = tmp_path / "sweep.json"
        stop_at = 3

        def interrupt(cell):
            if cell.completed >= stop_at and not cell.from_checkpoint:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                model, memory, images, labels, config,
                workers=workers, progress=interrupt, checkpoint=str(path),
            )
        saved = json.loads(path.read_text())["cells"]
        assert len(saved) >= stop_at
        full = run_campaign(model, memory, images, labels, config)
        resumed = run_campaign(
            model, memory, images, labels, config, checkpoint=str(path)
        )
        np.testing.assert_array_equal(full.accuracies, resumed.accuracies)


class TestChaosCheckpointResume:
    """Satellite 3: interrupt a chaos-disturbed, checkpointed run, then
    resume it (chaos still active) — the final grid and the adaptive
    stopping decisions are identical to an undisturbed run."""

    def test_exact_grid_resumes_bit_identical(
        self, campaign_parts, tmp_path, monkeypatch
    ):
        model, memory, images, labels, config = campaign_parts
        undisturbed = run_campaign(model, memory, images, labels, config)
        path = tmp_path / "sweep.json"
        monkeypatch.setenv(CHAOS_ENV_VAR, "raise=1,attempts=1")
        task = WeightFaultCellTask(model, memory, images, labels, config=config)

        def interrupt(cell):
            if cell.completed == 5 and not cell.from_checkpoint:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            CampaignExecutor(
                workers=2, progress=interrupt, checkpoint=str(path),
                on_cell_error="retry",
            ).run_tasks([task])
        assert json.loads(path.read_text())["cells"]
        resumed = CampaignExecutor(
            workers=2, checkpoint=str(path), on_cell_error="retry"
        ).run_tasks([task])[0]
        np.testing.assert_array_equal(
            resumed.accuracies, undisturbed.accuracies
        )

    def test_adaptive_stopping_decisions_survive_chaos_resume(
        self, campaign_parts, tmp_path, monkeypatch
    ):
        from repro.core.batched import AdaptiveCampaignTask

        model, memory, images, labels, config = campaign_parts

        def adaptive_task():
            base = WeightFaultCellTask(
                model, memory, images, labels, config=config, batch_k=2
            )
            return AdaptiveCampaignTask(base, ci_halfwidth=0.08, batch_k=2)

        undisturbed = CampaignExecutor().run_tasks([adaptive_task()])[0]
        path = tmp_path / "adaptive.json"
        monkeypatch.setenv(CHAOS_ENV_VAR, "raise=1,attempts=1")

        def interrupt(cell):
            if cell.completed == 1 and not cell.from_checkpoint:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            CampaignExecutor(
                workers=2, progress=interrupt, checkpoint=str(path),
                on_cell_error="retry",
            ).run_tasks([adaptive_task()])
        assert json.loads(path.read_text())["cells"]
        resumed = CampaignExecutor(
            workers=2, checkpoint=str(path), on_cell_error="retry"
        ).run_tasks([adaptive_task()])[0]
        np.testing.assert_array_equal(resumed.executed, undisturbed.executed)
        np.testing.assert_array_equal(
            resumed.accuracies, undisturbed.accuracies
        )
        np.testing.assert_array_equal(
            resumed.estimates, undisturbed.estimates
        )
