"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.nn.module import Parameter
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["Optimizer"]


class Optimizer:
    """Holds a parameter list and applies per-parameter update rules."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: Sequence[Parameter] = tuple(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        for param in self.parameters:
            if not isinstance(param, Parameter):
                raise TypeError(
                    f"expected Parameter instances, got {type(param).__name__}"
                )
        check_positive("lr", lr)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        raise NotImplementedError

    @staticmethod
    def _check_hyper(name: str, value: float) -> float:
        """Validate a non-negative hyper-parameter."""
        check_non_negative(name, value)
        return float(value)
