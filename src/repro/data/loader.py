"""Deterministic mini-batch loader."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["DataLoader"]


class DataLoader:
    """Yields (images, labels) batches from a :class:`Dataset`.

    Shuffling is seeded and *epoch-indexed*: iteration ``k`` over the same
    loader always produces the same order, independent of how many batches
    earlier iterations consumed.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: int = 0,
    ):
        check_positive("batch_size", batch_size)
        if len(dataset) == 0:
            raise ValueError("dataset is empty")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.seed = int(seed)
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            rng = as_generator(self.seed + self._epoch)
            rng.shuffle(order)
        self._epoch += 1

        for start in range(0, n, self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and indices.shape[0] < self.batch_size:
                break
            images = []
            labels = []
            for index in indices:
                image, label = self.dataset[int(index)]
                images.append(image)
                labels.append(label)
            yield np.stack(images).astype(np.float32), np.asarray(labels, dtype=np.int64)
