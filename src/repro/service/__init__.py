"""Campaign-as-a-service: the ``repro serve`` daemon and its client.

See ``docs/SERVICE.md`` for the endpoint table, the memoization-key
definition and the lifecycle/queueing model.
"""

from repro.service.client import (
    DEFAULT_URL,
    URL_ENV_VAR,
    ServiceClient,
    ServiceClientError,
    service_url,
)
from repro.service.daemon import (
    MARKER_FILENAME,
    ROUTES,
    RUNS_DIRNAME,
    CampaignService,
    ServiceError,
    serve,
)
from repro.service.keys import (
    CACHE_KEY_FIELDS,
    SERVICE_FORMAT,
    campaign_key,
    code_identity,
    key_components,
)

__all__ = [
    "CACHE_KEY_FIELDS",
    "DEFAULT_URL",
    "MARKER_FILENAME",
    "ROUTES",
    "RUNS_DIRNAME",
    "SERVICE_FORMAT",
    "URL_ENV_VAR",
    "CampaignService",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "campaign_key",
    "code_identity",
    "key_components",
    "serve",
    "service_url",
]
