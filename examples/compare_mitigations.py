#!/usr/bin/env python
"""Compare FT-ClipAct against the mitigation landscape.

The paper motivates clipped activations as a *zero-hardware-cost*
alternative to redundancy (DMR/TMR) and coding (ECC).  This example puts
them all on one table:

* unprotected          — the raw network;
* relu6                — fixed clipping at 6;
* actmax-clip          — Steps 1+2 only (clip at profiled ACT_max);
* ftclipact            — the full pipeline (tuned thresholds);
* clamp                — ablation: saturate at T instead of zeroing;
* rangecheck           — Ranger-style weight range check on the read path;
* ecc / dmr / tmr      — memory protection (with their honest 1.22x / 2x /
                         3x fault-exposure overhead).

Run:  python examples/compare_mitigations.py [--model lenet5]
"""

import argparse

from repro.analysis.reporting import format_comparison_table
from repro.core.baselines import (
    apply_relu6,
    dmr_sampler,
    ecc_sampler,
    range_check_sampler,
    tmr_sampler,
)
from repro.core.campaign import CampaignConfig, run_campaign  # noqa: F401
from repro.core.swap import swap_activations
from repro.experiments import (
    clone_model,
    default_harden_config,
    experiment_bundle,
    hardened_clone,
    paper_fault_rates,
)
from repro.hw.memory import WeightMemory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default="lenet5", choices=["lenet5", "alexnet", "vgg16"]
    )
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--eval-images", type=int, default=160)
    args = parser.parse_args()

    bundle = experiment_bundle(args.model)
    images, labels = bundle.test_set.arrays()
    images, labels = images[: args.eval_images], labels[: args.eval_images]
    config = CampaignConfig(
        fault_rates=paper_fault_rates(), trials=args.trials, seed=77
    )

    hardened, thresholds, act_max = hardened_clone(bundle, default_harden_config())

    def campaign(model, sampler=None, label=""):
        memory = WeightMemory.from_model(model)
        return run_campaign(model, memory, images, labels, config, sampler, label)

    print(f"model: {args.model}  clean accuracy: {bundle.clean_accuracy:.3f}")
    print("running campaigns (identical fault randomness across variants)...\n")

    curves = []
    labels_list = []

    curves.append(campaign(clone_model(bundle), label="unprotected"))
    labels_list.append("unprotected")

    relu6_model = clone_model(bundle)
    apply_relu6(relu6_model)
    curves.append(campaign(relu6_model, label="relu6"))
    labels_list.append("relu6")

    actmax_model = clone_model(bundle)
    swap_activations(actmax_model, act_max)
    curves.append(campaign(actmax_model, label="actmax-clip"))
    labels_list.append("actmax-clip")

    curves.append(campaign(hardened, label="ftclipact"))
    labels_list.append("ftclipact")

    clamp_model = clone_model(bundle)
    swap_activations(clamp_model, thresholds, variant="clamp")
    curves.append(campaign(clamp_model, label="clamp"))
    labels_list.append("clamp@T")

    range_model = clone_model(bundle)
    range_memory = WeightMemory.from_model(range_model)
    curves.append(
        run_campaign(
            range_model, range_memory, images, labels, config,
            sampler=range_check_sampler(range_memory), label="rangecheck",
        )
    )
    labels_list.append("rangecheck")

    for name, sampler in [
        ("ecc", ecc_sampler()),
        ("dmr", dmr_sampler()),
        ("tmr", tmr_sampler()),
    ]:
        curves.append(campaign(clone_model(bundle), sampler=sampler, label=name))
        labels_list.append(name)

    print(
        format_comparison_table(
            curves,
            labels=labels_list,
            title=f"{args.model}: mean accuracy per mitigation (last row = AUC)",
        )
    )
    print(
        "\nReading guide: ECC/TMR suppress essentially all sparse faults but "
        "cost 22%-200% extra memory; FT-ClipAct costs nothing in hardware "
        "and closes most of the gap. The clamp ablation shows why mapping "
        "out-of-range activations to zero beats saturating at T."
    )


if __name__ == "__main__":
    main()
