"""Shared utilities: seeding, serialization, validation, caching."""

from repro.utils.cache import ArtifactCache, config_fingerprint, default_cache_dir
from repro.utils.rng import SeedTree, as_generator, spawn_seeds
from repro.utils.serialization import (
    atomic_write,
    load_model_state,
    load_state_dict,
    save_model,
    save_state_dict,
    write_json_atomic,
)
from repro.utils.validation import (
    as_pair,
    check_dtype,
    check_in_choices,
    check_ndim,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "ArtifactCache",
    "SeedTree",
    "as_generator",
    "as_pair",
    "atomic_write",
    "check_dtype",
    "check_in_choices",
    "check_ndim",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "config_fingerprint",
    "default_cache_dir",
    "load_model_state",
    "load_state_dict",
    "save_model",
    "save_state_dict",
    "spawn_seeds",
    "write_json_atomic",
]
