"""Mini-batch training loop.

The paper evaluates *pre-trained* AlexNet/VGG-16 models.  With no network
access, this trainer is how the model zoo produces those pre-trained
weights on the synthetic dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.loader import DataLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.optim.optimizer import Optimizer
from repro.optim.schedules import LRSchedule

__all__ = ["EpochStats", "TrainingHistory", "Trainer", "evaluate_accuracy"]


@dataclass
class EpochStats:
    """Metrics recorded at the end of one epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    val_accuracy: "float | None"
    lr: float


@dataclass
class TrainingHistory:
    """Sequence of per-epoch stats plus the best validation accuracy seen."""

    epochs: list[EpochStats] = field(default_factory=list)

    @property
    def best_val_accuracy(self) -> "float | None":
        """Highest validation accuracy, or None if never evaluated."""
        values = [e.val_accuracy for e in self.epochs if e.val_accuracy is not None]
        return max(values) if values else None

    @property
    def final_train_accuracy(self) -> "float | None":
        """Training accuracy of the last epoch."""
        return self.epochs[-1].train_accuracy if self.epochs else None


def evaluate_accuracy(model: Module, loader: DataLoader) -> float:
    """Top-1 accuracy of ``model`` over every batch of ``loader`` (eval mode)."""
    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    try:
        for images, labels in loader:
            logits = model(images)
            predictions = np.argmax(logits, axis=1)
            correct += int((predictions == labels).sum())
            total += labels.shape[0]
    finally:
        model.train(was_training)
    if total == 0:
        raise ValueError("loader produced no samples")
    return correct / total


class Trainer:
    """Drives epochs of forward/backward/update over a :class:`DataLoader`."""

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: "Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]] | None" = None,
        schedule: "LRSchedule | None" = None,
        grad_clip: "float | None" = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn if loss_fn is not None else CrossEntropyLoss()
        self.schedule = schedule
        if grad_clip is not None and grad_clip <= 0:
            raise ValueError(f"grad_clip must be positive, got {grad_clip}")
        self.grad_clip = grad_clip

    def _clip_gradients(self) -> None:
        """Scale all gradients so their global L2 norm is at most grad_clip."""
        if self.grad_clip is None:
            return
        total = 0.0
        grads = [p.grad for p in self.optimizer.parameters if p.grad is not None]
        for grad in grads:
            total += float(np.sum(grad.astype(np.float64) ** 2))
        norm = float(np.sqrt(total))
        if norm > self.grad_clip and norm > 0:
            scale = np.float32(self.grad_clip / norm)
            for grad in grads:
                grad *= scale

    def train_epoch(self, loader: DataLoader) -> tuple[float, float]:
        """One pass over ``loader``; returns (mean_loss, accuracy)."""
        self.model.train()
        total_loss = 0.0
        correct = 0
        total = 0
        for images, labels in loader:
            self.optimizer.zero_grad()
            logits = self.model(images)
            loss, grad = self.loss_fn(logits, labels)
            self.model.backward(grad)
            self._clip_gradients()
            self.optimizer.step()

            batch = labels.shape[0]
            total_loss += loss * batch
            correct += int((np.argmax(logits, axis=1) == labels).sum())
            total += batch
        if total == 0:
            raise ValueError("loader produced no samples")
        return total_loss / total, correct / total

    def fit(
        self,
        train_loader: DataLoader,
        epochs: int,
        val_loader: "DataLoader | None" = None,
        patience: "int | None" = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs.

        If ``patience`` is given alongside ``val_loader``, training stops
        early once validation accuracy fails to improve for ``patience``
        consecutive epochs (the best-so-far weights are restored).
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        history = TrainingHistory()
        best_acc = -1.0
        best_state: "dict[str, np.ndarray] | None" = None
        stale = 0

        for epoch in range(1, epochs + 1):
            train_loss, train_acc = self.train_epoch(train_loader)
            val_acc = (
                evaluate_accuracy(self.model, val_loader)
                if val_loader is not None
                else None
            )
            history.epochs.append(
                EpochStats(epoch, train_loss, train_acc, val_acc, self.optimizer.lr)
            )
            if verbose:
                val_text = f" val_acc={val_acc:.3f}" if val_acc is not None else ""
                print(
                    f"epoch {epoch:3d}: loss={train_loss:.4f} "
                    f"train_acc={train_acc:.3f}{val_text} lr={self.optimizer.lr:.2e}"
                )

            if val_acc is not None:
                if val_acc > best_acc:
                    best_acc = val_acc
                    best_state = self.model.state_dict()
                    stale = 0
                else:
                    stale += 1
                    if patience is not None and stale >= patience:
                        break
            if self.schedule is not None:
                self.schedule.step()

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return history
