"""Shared computation of the Fig. 7 / Fig. 8 comparison curves.

Both figure benchmarks and the headline-numbers benchmark need the same
pair of (unprotected, clipped) whole-network campaigns per model; this
module computes each pair once per pytest session.
"""

from __future__ import annotations

from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.metrics import ResilienceCurve
from repro.experiments import clone_model, paper_fault_rates
from repro.hw.memory import WeightMemory

_STORE: dict[str, tuple[ResilienceCurve, ResilienceCurve]] = {}


def comparison_curves(
    name: str,
    bundle,
    hardened_model,
    images,
    labels,
    trials: int,
    seed: int = 2020,
) -> tuple[ResilienceCurve, ResilienceCurve]:
    """(unprotected, clipped) curves for one model, computed once."""
    if name in _STORE:
        return _STORE[name]
    config = CampaignConfig(
        fault_rates=paper_fault_rates(), trials=trials, seed=seed
    )
    unprotected = clone_model(bundle)
    base = run_campaign(
        unprotected,
        WeightMemory.from_model(unprotected),
        images,
        labels,
        config,
        label=f"{name} unprotected",
    )
    clipped = run_campaign(
        hardened_model,
        WeightMemory.from_model(hardened_model),
        images,
        labels,
        config,
        label=f"{name} clipped",
    )
    _STORE[name] = (base, clipped)
    return _STORE[name]
