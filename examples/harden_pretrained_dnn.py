#!/usr/bin/env python
"""Full FT-ClipAct hardening walkthrough (paper Fig. 4 methodology).

Runs the three-step pipeline verbatim on a pre-trained network and shows
every intermediate product: the profiled activation statistics, the
ACT_max initialisation, each layer's Algorithm-1 search trace, and the
final accuracy comparison under whole-network fault injection.

Run:  python examples/harden_pretrained_dnn.py [--model alexnet]
"""

import argparse

from repro.analysis.reporting import format_comparison_table, format_table
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.pipeline import harden_model
from repro.experiments import (
    clone_model,
    default_harden_config,
    experiment_bundle,
    paper_fault_rates,
)
from repro.hw.memory import WeightMemory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default="alexnet", choices=["lenet5", "alexnet", "vgg16"]
    )
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--eval-images", type=int, default=200)
    args = parser.parse_args()

    bundle = experiment_bundle(args.model)
    print(f"pre-trained {args.model}: clean accuracy {bundle.clean_accuracy:.3f}")

    # ----------------------------------------------------------------- #
    # Steps 1-3 (run explicitly here so the traces are visible; the
    # cached path is repro.experiments.hardened_clone).
    # ----------------------------------------------------------------- #
    model = clone_model(bundle)
    config = default_harden_config()
    report = harden_model(model, bundle.val_set, config)

    print("\nStep 1 — profiled activation statistics:")
    rows = [
        [
            layer,
            f"{stat.mean:.4f}",
            f"{stat.std:.4f}",
            f"{stat.percentile(99):.4f}",
            f"{stat.act_max:.4f}",
        ]
        for layer, stat in report.profile.stats.items()
    ]
    print(format_table(["layer", "mean", "std", "p99", "ACT_max"], rows))

    print("\nStep 2+3 — clipped activations and fine-tuned thresholds:")
    rows = [
        [layer, f"{act_max:.4f}", f"{threshold:.4f}",
         f"{report.finetune_results[layer].iterations}"
         if layer in report.finetune_results else "-"]
        for layer, act_max, threshold in report.threshold_table()
    ]
    print(format_table(["layer", "ACT_max (init)", "tuned T", "iterations"], rows))

    first_layer = next(iter(report.finetune_results), None)
    if first_layer is not None:
        print(f"\nAlgorithm 1 trace for {first_layer} (paper Fig. 6):")
        for step in report.finetune_results[first_layer].trace:
            bounds = ", ".join(f"{b:.3f}" for b in step.boundaries)
            aucs = ", ".join(f"{a:.4f}" for a in step.auc_values)
            print(
                f"  iter {step.iteration}: T=[{bounds}]  AUC=[{aucs}]  "
                f"-> interval [{step.interval[0]:.3f}, {step.interval[1]:.3f}]"
            )

    # ----------------------------------------------------------------- #
    # Final comparison under whole-network faults.
    # ----------------------------------------------------------------- #
    images, labels = bundle.test_set.arrays()
    images, labels = images[: args.eval_images], labels[: args.eval_images]
    campaign_config = CampaignConfig(
        fault_rates=paper_fault_rates(), trials=args.trials, seed=123
    )

    unprotected = clone_model(bundle)
    base_curve = run_campaign(
        unprotected, WeightMemory.from_model(unprotected), images, labels,
        campaign_config, label="unprotected",
    )
    hard_curve = run_campaign(
        model, WeightMemory.from_model(model), images, labels,
        campaign_config, label="ft-clipact",
    )

    print()
    print(
        format_comparison_table(
            [base_curve, hard_curve],
            labels=["unprotected", "ft-clipact"],
            title=f"{args.model}: resilience before/after hardening",
        )
    )
    gain = (hard_curve.auc() / base_curve.auc() - 1.0) * 100.0
    print(f"\nAUC improvement: {gain:+.1f}%  (paper reports +173% AlexNet, "
          f"+655% VGG-16 on their fault range)")


if __name__ == "__main__":
    main()
