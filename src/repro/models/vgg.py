"""CIFAR-10 VGG-16: 13 convolutional layers + 1 fully-connected layer.

Matches the paper's description ("the base VGG-16 contains 13 CONV layer
and 1 FC layer", Section V-A).  Batch normalization after each convolution
makes the deep stack trainable from scratch on a CPU; BN parameters are
*not* part of the weight memory targeted by default fault-injection runs
(the paper injects into CONV/FC weights).
"""

from __future__ import annotations

from repro import nn
from repro.utils.rng import SeedTree
from repro.utils.validation import check_positive

__all__ = ["CifarVGG16", "build_vgg16", "VGG16_PLAN"]

# The canonical VGG-16 configuration: channel counts with 'M' = 2x2 max-pool.
VGG16_PLAN = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
)


def _scaled(value: int, width_mult: float, minimum: int = 4) -> int:
    """Scale a channel count, keeping at least ``minimum`` channels."""
    return max(minimum, int(round(value * width_mult)))


class CifarVGG16(nn.Sequential):
    """VGG-16 topology for 3x32x32 inputs, ending in a single FC layer."""

    def __init__(
        self,
        num_classes: int = 10,
        width_mult: float = 1.0,
        batch_norm: bool = True,
        in_channels: int = 3,
        image_size: int = 32,
        seed: int = 0,
    ):
        check_positive("num_classes", num_classes)
        check_positive("width_mult", width_mult)
        check_positive("image_size", image_size)
        tree = SeedTree(seed)

        layers: list[nn.Module] = []
        channels = in_channels
        spatial = image_size
        conv_index = 0
        for entry in VGG16_PLAN:
            if entry == "M":
                layers.append(nn.MaxPool2d(2))
                spatial //= 2
                continue
            conv_index += 1
            out_channels = _scaled(int(entry), width_mult)
            layers.append(
                nn.Conv2d(
                    channels,
                    out_channels,
                    3,
                    padding=1,
                    seed=tree.generator(f"conv{conv_index}"),
                )
            )
            if batch_norm:
                layers.append(nn.BatchNorm2d(out_channels))
            layers.append(nn.ReLU())
            channels = out_channels
        if spatial < 1:
            raise ValueError(f"image_size={image_size} too small for VGG-16")

        layers.append(nn.Flatten())
        layers.append(
            nn.Linear(channels * spatial * spatial, num_classes, seed=tree.generator("fc1"))
        )
        super().__init__(*layers)
        self.num_classes = num_classes
        self.width_mult = width_mult
        self.batch_norm = batch_norm


def build_vgg16(num_classes: int = 10, width_mult: float = 1.0, seed: int = 0) -> CifarVGG16:
    """Convenience constructor used by the registry."""
    return CifarVGG16(num_classes=num_classes, width_mult=width_mult, seed=seed)
