"""Tests for threshold fine-tuning (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.campaign import CampaignConfig
from repro.core.finetune import (
    FineTuneConfig,
    ThresholdFineTuner,
    fine_tune_threshold,
    make_layer_auc_evaluator,
)
from repro.core.swap import get_thresholds, swap_activations
from repro.hw.memory import WeightMemory


def bell(peak: float, width: float = 1.0):
    """A synthetic bell-shaped AUC-vs-T curve with a known peak."""

    def evaluator(threshold: float) -> float:
        return float(np.exp(-(((threshold - peak) / width) ** 2)))

    return evaluator


class TestFineTuneConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FineTuneConfig(max_iterations=0)
        with pytest.raises(ValueError):
            FineTuneConfig(min_iterations=5, max_iterations=3)
        with pytest.raises(ValueError):
            FineTuneConfig(tolerance=-0.1)


class TestIntervalSearch:
    def test_finds_bell_peak(self):
        config = FineTuneConfig(max_iterations=8, min_iterations=2, tolerance=0.0)
        result = fine_tune_threshold(bell(3.0), act_max=10.0, config=config)
        assert result.threshold == pytest.approx(3.0, abs=0.5)

    @settings(max_examples=25, deadline=None)
    @given(peak=st.floats(0.5, 9.5))
    def test_property_converges_to_peak(self, peak):
        config = FineTuneConfig(max_iterations=10, min_iterations=2, tolerance=0.0)
        result = fine_tune_threshold(bell(peak, width=2.0), act_max=10.0, config=config)
        # Interval shrinks by >= 1/3 each iteration; peak found within the
        # final interval's width.
        assert abs(result.threshold - peak) < 10.0 * (2.0 / 3.0) ** 8

    def test_peak_at_low_end(self):
        result = fine_tune_threshold(
            bell(0.5, width=0.5), act_max=10.0,
            config=FineTuneConfig(max_iterations=8, tolerance=0.0),
        )
        assert result.threshold == pytest.approx(0.5, abs=0.5)

    def test_monotone_increasing_picks_act_max(self):
        result = fine_tune_threshold(
            lambda t: t / 10.0, act_max=10.0,
            config=FineTuneConfig(max_iterations=4, tolerance=0.0),
        )
        assert result.threshold == pytest.approx(10.0, abs=1.0)

    def test_trace_structure(self):
        config = FineTuneConfig(max_iterations=3, min_iterations=3, tolerance=0.0)
        result = fine_tune_threshold(bell(5.0), act_max=10.0, config=config)
        assert result.iterations == 3
        first = result.trace[0]
        assert first.boundaries == (0.0, pytest.approx(10 / 3), pytest.approx(20 / 3), 10.0)
        assert 0 <= first.best_index < 4
        # Each iteration's search interval nests inside the previous one.
        for earlier, later in zip(result.trace, result.trace[1:]):
            assert later.interval[0] >= earlier.interval[0] - 1e-9
            assert later.interval[1] <= earlier.interval[1] + 1e-9

    def test_early_convergence_flag(self):
        # A flat evaluator converges immediately after min_iterations.
        config = FineTuneConfig(max_iterations=10, min_iterations=2, tolerance=0.01)
        result = fine_tune_threshold(lambda t: 0.5, act_max=10.0, config=config)
        assert result.converged_early
        assert result.iterations == 2

    def test_memoisation_reduces_evaluations(self):
        calls = []

        def counting(threshold):
            calls.append(threshold)
            return bell(5.0)(threshold)

        config = FineTuneConfig(max_iterations=4, min_iterations=4, tolerance=0.0)
        result = fine_tune_threshold(counting, act_max=10.0, config=config)
        # 4 iterations x 4 boundaries = 16 raw, but interval ends repeat.
        assert result.evaluations == len(calls)
        assert len(calls) < 16

    def test_invalid_act_max(self):
        with pytest.raises(ValueError):
            fine_tune_threshold(bell(1.0), act_max=0.0)

    def test_auc_value_reported(self):
        result = fine_tune_threshold(
            bell(5.0), act_max=10.0,
            config=FineTuneConfig(max_iterations=6, tolerance=0.0),
        )
        assert result.auc == pytest.approx(1.0, abs=0.1)


def _clone_mlp(trained_mlp):
    """A fresh MLP with the trained fixture's weights (safe to mutate)."""
    from repro.models import MLP

    clone = MLP(3 * 8 * 8, 10, hidden=(64, 32), seed=0)
    clone.load_state_dict(trained_mlp.state_dict())
    clone.eval()
    return clone


class TestLayerEvaluator:
    def test_evaluator_runs_and_sets_threshold(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        model = _clone_mlp(trained_mlp)
        swap_activations(model, 100.0)
        memory = WeightMemory.from_model(model, layers=["FC-1"])
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=2, seed=0)
        evaluator = make_layer_auc_evaluator(
            model, "FC-1", memory, images, labels, config
        )
        auc_tight = evaluator(20.0)
        assert 0.0 <= auc_tight <= 1.0
        # The evaluator leaves the threshold at its last setting.
        assert get_thresholds(model)["FC-1"] == 20.0

    def test_evaluate_many_matches_sequential_calls(
        self, trained_mlp, mlp_eval_arrays
    ):
        """Algorithm 1's pooled boundary evaluations must be bit-identical
        to calling the evaluator once per threshold."""
        images, labels = mlp_eval_arrays
        thresholds = [5.0, 15.0, 40.0]
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=2, seed=0)

        model = _clone_mlp(trained_mlp)
        swap_activations(model, 100.0)
        memory = WeightMemory.from_model(model, layers=["FC-1"])
        sequential = [
            make_layer_auc_evaluator(model, "FC-1", memory, images, labels, config)(t)
            for t in thresholds
        ]

        model = _clone_mlp(trained_mlp)
        swap_activations(model, 100.0)
        memory = WeightMemory.from_model(model, layers=["FC-1"])
        batch_evaluator = make_layer_auc_evaluator(
            model, "FC-1", memory, images, labels, config, workers=2
        )
        initial = get_thresholds(model)["FC-1"]
        try:
            pooled = batch_evaluator.evaluate_many(thresholds)
        finally:
            batch_evaluator.close()
        assert pooled == sequential
        # The batch path snapshots per threshold and restores afterwards.
        assert get_thresholds(model)["FC-1"] == initial

    def test_fine_tune_trajectory_identical_at_any_worker_count(
        self, trained_mlp, mlp_eval_arrays
    ):
        """The whole Algorithm 1 search — thresholds, AUCs, traces — is
        the same whether boundaries evaluate serially or in one pool."""
        images, labels = mlp_eval_arrays
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=2, seed=3)
        finetune_config = FineTuneConfig(
            max_iterations=2, min_iterations=1, tolerance=0.0
        )

        def tune(workers):
            model = _clone_mlp(trained_mlp)
            swap_activations(model, 100.0)
            memory = WeightMemory.from_model(model, layers=["FC-1"])
            evaluator = make_layer_auc_evaluator(
                model, "FC-1", memory, images, labels, config, workers=workers
            )
            return fine_tune_threshold(
                evaluator, act_max=50.0, config=finetune_config
            )

        serial, pooled = tune(1), tune(2)
        assert serial.threshold == pooled.threshold
        assert serial.auc == pooled.auc
        assert serial.evaluations == pooled.evaluations
        assert [t.auc_values for t in serial.trace] == [
            t.auc_values for t in pooled.trace
        ]

    def test_algorithm1_reuses_one_warm_pool(
        self, trained_mlp, mlp_eval_arrays, monkeypatch
    ):
        """Every iteration's boundary batch shares one warm pool: a whole
        Algorithm-1 run constructs exactly one ProcessPoolExecutor, and
        fine_tune_threshold shuts it down when the search ends."""
        import repro.core.executor as executor_module

        created = []
        real_pool = executor_module.ProcessPoolExecutor

        def counting_pool(*args, **kwargs):
            created.append(1)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", counting_pool)

        images, labels = mlp_eval_arrays
        model = _clone_mlp(trained_mlp)
        swap_activations(model, 100.0)
        memory = WeightMemory.from_model(model, layers=["FC-1"])
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=2, seed=3)
        evaluator = make_layer_auc_evaluator(
            model, "FC-1", memory, images, labels, config, workers=2
        )
        result = fine_tune_threshold(
            evaluator,
            act_max=50.0,
            config=FineTuneConfig(max_iterations=2, min_iterations=2, tolerance=0.0),
        )
        assert result.iterations == 2  # at least two boundary batches ran
        assert len(created) == 1
        assert evaluator._executor is None  # closed by fine_tune_threshold

    def test_evaluate_many_serializes_each_snapshot_once(
        self, trained_mlp, mlp_eval_arrays, monkeypatch
    ):
        """Each threshold's model snapshot is packed exactly once: the
        same unit materializes the parent-side copy and ships to the
        workers (run_tasks never re-serializes a pre-packed task)."""
        import repro.core.executor as executor_module
        import repro.core.finetune as finetune_module
        from repro.core.executor import WeightFaultCellTask
        from repro.utils.shm import pack_object as real_pack_object

        task_dumps = []

        def counting_pack(obj, *args, **kwargs):
            if isinstance(obj, WeightFaultCellTask):
                task_dumps.append(1)
            return real_pack_object(obj, *args, **kwargs)

        monkeypatch.setattr(finetune_module, "pack_object", counting_pack)
        monkeypatch.setattr(
            executor_module,
            "_pack_task",
            lambda task: pytest.fail(
                "executor re-packed a task evaluate_many already serialized"
            ),
        )

        images, labels = mlp_eval_arrays
        model = _clone_mlp(trained_mlp)
        swap_activations(model, 100.0)
        memory = WeightMemory.from_model(model, layers=["FC-1"])
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=2, seed=0)
        evaluator = make_layer_auc_evaluator(
            model, "FC-1", memory, images, labels, config, workers=2
        )
        thresholds = [5.0, 15.0, 40.0]
        try:
            pooled = evaluator.evaluate_many(thresholds)
        finally:
            evaluator.close()
        assert len(task_dumps) == len(thresholds)
        assert len(pooled) == len(thresholds)
        assert all(0.0 <= auc <= 1.0 for auc in pooled)

    def test_clipping_beats_unbounded_auc(self, trained_mlp, mlp_eval_arrays):
        """Fig. 5b's red-line comparison: the clipped network's AUC beats the
        truly unbounded (plain ReLU) network at damaging fault rates.

        Note a ClippedReLU with a huge threshold is *not* an unbounded
        baseline: faulty activations reach ~1e37, far above any practical
        threshold, so they are squashed regardless — which is exactly the
        paper's point.  The unbounded baseline must use plain ReLU.
        """
        from repro.core.campaign import run_campaign

        images, labels = mlp_eval_arrays
        config = CampaignConfig(fault_rates=(3e-5, 1e-4, 3e-4), trials=4, seed=1)

        plain = _clone_mlp(trained_mlp)
        plain_curve = run_campaign(
            plain, WeightMemory.from_model(plain), images, labels, config
        )

        clipped = _clone_mlp(trained_mlp)
        swap_activations(clipped, 30.0)
        clipped_curve = run_campaign(
            clipped, WeightMemory.from_model(clipped), images, labels, config
        )
        assert clipped_curve.auc() > plain_curve.auc()

    def test_tuner_tunes_all_layers(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        model = _clone_mlp(trained_mlp)
        swap_activations(model, 50.0)
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=2, seed=0)
        tuner = ThresholdFineTuner(
            model,
            memory_factory=lambda layer: WeightMemory.from_model(model, layers=[layer]),
            images=images,
            labels=labels,
            campaign_config=config,
            finetune_config=FineTuneConfig(
                max_iterations=2, min_iterations=1, tolerance=0.0
            ),
        )
        act_max = {"FC-1": 50.0, "FC-2": 50.0}
        results = tuner.tune_all(act_max)
        assert set(results) == {"FC-1", "FC-2"}
        thresholds = get_thresholds(model)
        for layer, result in results.items():
            assert thresholds[layer] == pytest.approx(result.threshold)
            assert result.threshold <= 50.0

    def test_tune_layer_restores_initial_threshold(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        model = _clone_mlp(trained_mlp)
        swap_activations(model, 50.0)
        config = CampaignConfig(fault_rates=(1e-4,), trials=1, seed=0)
        tuner = ThresholdFineTuner(
            model,
            memory_factory=lambda layer: WeightMemory.from_model(model, layers=[layer]),
            images=images,
            labels=labels,
            campaign_config=config,
            finetune_config=FineTuneConfig(
                max_iterations=1, min_iterations=1, tolerance=0.0
            ),
        )
        tuner.tune_layer("FC-1", 50.0)
        assert get_thresholds(model)["FC-1"] == 50.0
