"""Tests for the base activation layers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn

FLOATS = hnp.arrays(
    np.float32,
    st.integers(1, 30),
    elements=st.floats(-100, 100, width=32, allow_nan=False),
)


class TestReLU:
    def test_forward_values(self):
        relu = nn.ReLU()
        x = np.asarray([-2.0, 0.0, 3.5], dtype=np.float32)
        np.testing.assert_array_equal(relu(x), [0.0, 0.0, 3.5])

    @given(FLOATS)
    def test_non_negative_output(self, x):
        assert (nn.ReLU()(x) >= 0).all()

    @given(FLOATS)
    def test_idempotent(self, x):
        relu = nn.ReLU()
        once = relu(x)
        np.testing.assert_array_equal(relu(once), once)

    def test_backward_masks_negatives(self):
        relu = nn.ReLU()
        relu.train()
        x = np.asarray([-1.0, 2.0], dtype=np.float32)
        relu(x)
        grad = relu.backward(np.asarray([5.0, 5.0], dtype=np.float32))
        np.testing.assert_array_equal(grad, [0.0, 5.0])

    def test_backward_before_forward(self):
        relu = nn.ReLU()
        relu.train()
        with pytest.raises(RuntimeError):
            relu.backward(np.zeros(2, dtype=np.float32))


class TestLeakyReLU:
    def test_forward(self):
        layer = nn.LeakyReLU(0.1)
        x = np.asarray([-10.0, 10.0], dtype=np.float32)
        np.testing.assert_allclose(layer(x), [-1.0, 10.0], rtol=1e-6)

    def test_backward(self):
        layer = nn.LeakyReLU(0.1)
        layer.train()
        x = np.asarray([-1.0, 1.0], dtype=np.float32)
        layer(x)
        grad = layer.backward(np.ones(2, dtype=np.float32))
        np.testing.assert_allclose(grad, [0.1, 1.0], rtol=1e-6)


class TestReLU6:
    def test_caps_at_six(self):
        layer = nn.ReLU6()
        x = np.asarray([-1.0, 3.0, 100.0], dtype=np.float32)
        np.testing.assert_array_equal(layer(x), [0.0, 3.0, 6.0])

    def test_custom_cap(self):
        layer = nn.ReLU6(cap=2.0)
        np.testing.assert_array_equal(
            layer(np.asarray([5.0], dtype=np.float32)), [2.0]
        )

    def test_backward_zero_outside(self):
        layer = nn.ReLU6()
        layer.train()
        x = np.asarray([-1.0, 3.0, 100.0], dtype=np.float32)
        layer(x)
        grad = layer.backward(np.ones(3, dtype=np.float32))
        np.testing.assert_array_equal(grad, [0.0, 1.0, 0.0])

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            nn.ReLU6(cap=0.0)

    @given(FLOATS)
    def test_bounded(self, x):
        out = nn.ReLU6()(x)
        assert (out >= 0).all() and (out <= 6).all()


class TestSigmoid:
    def test_range_and_symmetry(self):
        layer = nn.Sigmoid()
        x = np.asarray([-5.0, 0.0, 5.0], dtype=np.float32)
        out = layer(x)
        assert out[1] == pytest.approx(0.5)
        assert out[0] + out[2] == pytest.approx(1.0, abs=1e-5)

    def test_extreme_inputs_stable(self):
        layer = nn.Sigmoid()
        out = layer(np.asarray([-1e4, 1e4], dtype=np.float32))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-6)

    def test_backward(self):
        layer = nn.Sigmoid()
        layer.train()
        x = np.asarray([0.0], dtype=np.float32)
        layer(x)
        grad = layer.backward(np.asarray([1.0], dtype=np.float32))
        assert grad[0] == pytest.approx(0.25)


class TestTanh:
    def test_forward(self):
        layer = nn.Tanh()
        x = np.asarray([0.0, 1.0], dtype=np.float32)
        np.testing.assert_allclose(layer(x), np.tanh(x), rtol=1e-6)

    def test_backward(self):
        layer = nn.Tanh()
        layer.train()
        x = np.asarray([0.0], dtype=np.float32)
        layer(x)
        grad = layer.backward(np.asarray([1.0], dtype=np.float32))
        assert grad[0] == pytest.approx(1.0)


class TestSoftmaxLayer:
    def test_probabilities(self):
        layer = nn.Softmax()
        out = layer(np.random.default_rng(0).standard_normal((4, 3)).astype(np.float32))
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-5)


class TestIdentity:
    def test_passthrough_forward_backward(self):
        layer = nn.Identity()
        x = np.asarray([1.0, -2.0], dtype=np.float32)
        np.testing.assert_array_equal(layer(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)
