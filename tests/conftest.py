"""Shared fixtures: small trained models, datasets and gradient checking.

The expensive fixtures (trained networks) are session-scoped and sized to
train in a couple of seconds so the whole suite stays fast on one core.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader, SyntheticCIFAR10
from repro.models import LeNet5, MLP
from repro.optim import Adam, Trainer


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Point the artifact cache at a throwaway directory for every test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture(scope="session")
def synthetic_generator() -> SyntheticCIFAR10:
    return SyntheticCIFAR10(seed=1)


@pytest.fixture(scope="session")
def small_splits(synthetic_generator):
    """(train, val, test) ArrayDatasets shared across the session."""
    return synthetic_generator.splits(600, 300, 300)


@pytest.fixture(scope="session")
def trained_lenet(small_splits):
    """A LeNet-5 trained to high accuracy on the synthetic data."""
    train, _, _ = small_splits
    model = LeNet5(seed=0)
    trainer = Trainer(model, Adam(model.parameters(), lr=1e-3))
    trainer.fit(DataLoader(train, batch_size=64, shuffle=True, seed=0), epochs=5)
    model.eval()
    return model


@pytest.fixture(scope="session")
def eval_arrays(small_splits):
    """A small (images, labels) evaluation slice."""
    _, _, test = small_splits
    images, labels = test.arrays()
    return images[:128], labels[:128]


@pytest.fixture(scope="session")
def trained_mlp():
    """A tiny trained MLP on 8x8 synthetic images (fastest fixture)."""
    generator = SyntheticCIFAR10(image_size=8, seed=3)
    train = generator.dataset(400, "train")
    model = MLP(3 * 8 * 8, 10, hidden=(64, 32), seed=0)
    trainer = Trainer(model, Adam(model.parameters(), lr=2e-3))
    trainer.fit(DataLoader(train, batch_size=64, shuffle=True, seed=0), epochs=12)
    model.eval()
    return model


@pytest.fixture(scope="session")
def mlp_eval_arrays():
    generator = SyntheticCIFAR10(image_size=8, seed=3)
    images, labels = generator.generate(96, "test")
    return images, labels


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. ``x`` (float64)."""
    x = np.asarray(x, dtype=np.float32)
    grad = np.zeros(x.shape, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = fn(x)
        flat[index] = original - eps
        lower = fn(x)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * eps)
    return grad


@pytest.fixture
def gradcheck():
    """Expose the numerical gradient helper as a fixture."""
    return numerical_gradient
