#!/usr/bin/env python
"""Silent-data-corruption analysis: how does your network actually fail?

Accuracy says *how often* a faulty network is wrong; the dependability
taxonomy says *how dangerously*.  Each faulty inference is classified
against the fault-free run:

* masked — same prediction as the clean network (no harm);
* benign — prediction changed but remained/ended up equally (in)correct;
* SDC    — silently flipped from correct to wrong (the scary case);
* DUE    — non-finite outputs (detectable with a cheap runtime check).

This example contrasts the unprotected network with the FT-ClipAct one:
clipping converts SDCs into masked outcomes and eliminates DUEs entirely
(clipped outputs cannot overflow).

Run:  python examples/sdc_analysis.py [--model lenet5]
"""

import argparse

from repro.analysis.outcomes import run_outcome_analysis
from repro.analysis.perclass import run_per_class_analysis
from repro.analysis.reporting import format_rate, format_table
from repro.core.campaign import CampaignConfig
from repro.experiments import (
    clone_model,
    default_harden_config,
    experiment_bundle,
    hardened_clone,
    paper_fault_rates,
)
from repro.hw.memory import WeightMemory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default="lenet5", choices=["lenet5", "alexnet", "vgg16"]
    )
    parser.add_argument("--trials", type=int, default=6)
    parser.add_argument("--eval-images", type=int, default=160)
    args = parser.parse_args()

    bundle = experiment_bundle(args.model)
    images, labels = bundle.test_set.arrays()
    images, labels = images[: args.eval_images], labels[: args.eval_images]
    config = CampaignConfig(
        fault_rates=paper_fault_rates(), trials=args.trials, seed=55
    )

    print(f"model: {args.model}  clean accuracy: {bundle.clean_accuracy:.3f}\n")

    plain = clone_model(bundle)
    plain_breakdown = run_outcome_analysis(
        plain, WeightMemory.from_model(plain), images, labels, config
    )
    hardened, _, _ = hardened_clone(bundle, default_harden_config())
    clipped_breakdown = run_outcome_analysis(
        hardened, WeightMemory.from_model(hardened), images, labels, config
    )

    for title, breakdown in (
        ("unprotected", plain_breakdown),
        ("ft-clipact", clipped_breakdown),
    ):
        rows = [
            [format_rate(row[0]), f"{row[1]:.3f}", f"{row[2]:.3f}", f"{row[3]:.3f}", f"{row[4]:.3f}"]
            for row in breakdown.summary_rows()
        ]
        print(
            format_table(
                ["fault_rate", "masked", "benign", "SDC", "DUE"],
                rows,
                title=f"{args.model} [{title}]",
            )
        )
        print()

    # Per-class view: heavy faults collapse the unprotected network's
    # predictions into a few classes.
    perclass = run_per_class_analysis(
        plain, WeightMemory.from_model(plain), images, labels, config
    )
    print(
        f"prediction collapse (max single-class share of predictions): "
        f"clean-ish {perclass.prediction_collapse(0):.2f} -> "
        f"heavy faults {perclass.prediction_collapse(-1):.2f}; "
        f"most vulnerable classes at the top rate: "
        f"{perclass.most_vulnerable_classes(-1, k=3)}\n"
    )

    peak = int(plain_breakdown.sdc_rates().argmax())
    peak_rate = float(plain_breakdown.fault_rates[peak])
    print(
        f"At the SDC peak ({format_rate(peak_rate)}): unprotected silently "
        f"corrupts {plain_breakdown.sdc_rates()[peak]:.1%} of inferences; "
        f"clipped {clipped_breakdown.sdc_rates()[peak]:.1%}. "
        f"Clipped DUE rate is {clipped_breakdown.due_rates().max():.1%} "
        f"everywhere (bounded activations cannot overflow)."
    )


if __name__ == "__main__":
    main()
