"""Tests for the clipped activation functions (paper Section IV-A)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.clipped import ClampedReLU, ClippedLeakyReLU, ClippedReLU

FLOATS = hnp.arrays(
    np.float32,
    st.integers(1, 40),
    elements=st.floats(-1e6, 1e6, width=32, allow_nan=False),
)


class TestClippedReLU:
    def test_paper_equation(self):
        """f(x) = x for 0 <= x <= T, else 0."""
        layer = ClippedReLU(threshold=2.0)
        x = np.asarray([-1.0, 0.0, 1.5, 2.0, 2.1, 1e30], dtype=np.float32)
        np.testing.assert_array_equal(layer(x), [0.0, 0.0, 1.5, 2.0, 0.0, 0.0])

    def test_squashes_faulty_magnitudes_to_zero(self):
        """The mitigation property: huge (faulty) values map to exactly 0,
        not to T — they carry no information."""
        layer = ClippedReLU(threshold=5.0)
        x = np.asarray([1e38, np.inf], dtype=np.float32)
        np.testing.assert_array_equal(layer(x), [0.0, 0.0])

    @given(FLOATS, st.floats(0.1, 100.0))
    def test_output_bounded_by_threshold(self, x, threshold):
        out = ClippedReLU(threshold)(x)
        assert (out >= 0).all() and (out <= np.float32(threshold)).all()

    @given(FLOATS)
    def test_within_range_identity(self, x):
        threshold = 10.0
        layer = ClippedReLU(threshold)
        inside = (x >= 0) & (x <= threshold)
        out = layer(x)
        np.testing.assert_array_equal(out[inside], x[inside])

    def test_threshold_mutable(self):
        layer = ClippedReLU(1.0)
        layer.threshold = 3.0
        assert layer.threshold == 3.0
        x = np.asarray([2.0], dtype=np.float32)
        np.testing.assert_array_equal(layer(x), [2.0])

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_threshold_rejected(self, bad):
        with pytest.raises(ValueError):
            ClippedReLU(bad)
        layer = ClippedReLU(1.0)
        with pytest.raises(ValueError):
            layer.threshold = bad

    def test_backward_masks_outside(self):
        layer = ClippedReLU(2.0)
        layer.train()
        x = np.asarray([-1.0, 1.0, 3.0], dtype=np.float32)
        layer(x)
        grad = layer.backward(np.ones(3, dtype=np.float32))
        np.testing.assert_array_equal(grad, [0.0, 1.0, 0.0])

    def test_backward_before_forward(self):
        layer = ClippedReLU(1.0)
        layer.train()
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros(1, dtype=np.float32))

    def test_repr_shows_threshold(self):
        assert "1.5" in repr(ClippedReLU(1.5))


class TestClampedReLU:
    def test_saturates_instead_of_zeroing(self):
        layer = ClampedReLU(threshold=2.0)
        x = np.asarray([-1.0, 1.0, 5.0, 1e30], dtype=np.float32)
        np.testing.assert_array_equal(layer(x), [0.0, 1.0, 2.0, 2.0])

    def test_differs_from_clip_above_threshold(self):
        """The ablation contrast: clip->0 vs clamp->T."""
        x = np.asarray([10.0], dtype=np.float32)
        assert ClippedReLU(2.0)(x)[0] == 0.0
        assert ClampedReLU(2.0)(x)[0] == 2.0

    @given(FLOATS, st.floats(0.1, 100.0))
    def test_bounded(self, x, threshold):
        out = ClampedReLU(threshold)(x)
        assert (out >= 0).all() and (out <= np.float32(threshold) + 1e-6).all()

    def test_backward(self):
        layer = ClampedReLU(2.0)
        layer.train()
        x = np.asarray([-1.0, 1.0, 3.0], dtype=np.float32)
        layer(x)
        grad = layer.backward(np.ones(3, dtype=np.float32))
        np.testing.assert_array_equal(grad, [0.0, 1.0, 0.0])


class TestClippedLeakyReLU:
    def test_negative_slope_below_zero(self):
        layer = ClippedLeakyReLU(threshold=2.0, negative_slope=0.1)
        x = np.asarray([-10.0, 1.0, 5.0], dtype=np.float32)
        np.testing.assert_allclose(layer(x), [-1.0, 1.0, 0.0], rtol=1e-6)

    def test_backward(self):
        layer = ClippedLeakyReLU(threshold=2.0, negative_slope=0.1)
        layer.train()
        x = np.asarray([-1.0, 1.0, 5.0], dtype=np.float32)
        layer(x)
        grad = layer.backward(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(grad, [0.1, 1.0, 0.0], rtol=1e-6)

    def test_threshold_setter(self):
        layer = ClippedLeakyReLU(1.0)
        layer.threshold = 4.0
        x = np.asarray([3.0], dtype=np.float32)
        np.testing.assert_array_equal(layer(x), [3.0])
