"""Weight-initialization schemes.

All initializers take an explicit generator so model construction is fully
deterministic given a seed (required for the cached model zoo to be
reproducible across runs).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "xavier_normal",
    "zeros",
    "constant",
    "fan_in_and_fan_out",
]


def fan_in_and_fan_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a linear or convolutional weight shape.

    Linear weights are ``(out_features, in_features)``; convolution weights
    are ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) < 2:
        raise ValueError(f"need at least 2 dimensions, got shape {shape}")
    receptive_field = 1
    for dim in shape[2:]:
        receptive_field *= dim
    fan_in = shape[1] * receptive_field
    fan_out = shape[0] * receptive_field
    return fan_in, fan_out


def kaiming_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    gain: float = math.sqrt(2.0),
) -> np.ndarray:
    """He-uniform init, the default for ReLU networks."""
    fan_in, _ = fan_in_and_fan_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    gain: float = math.sqrt(2.0),
) -> np.ndarray:
    """He-normal init."""
    fan_in, _ = fan_in_and_fan_out(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init, suited to tanh/sigmoid layers."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-normal init."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero float32 array (bias default)."""
    return np.zeros(shape, dtype=np.float32)


def constant(shape: tuple[int, ...], value: float) -> np.ndarray:
    """Constant-filled float32 array."""
    return np.full(shape, value, dtype=np.float32)
