"""Tests for the weight range-check mitigation."""

import numpy as np
import pytest

from repro import nn
from repro.core.campaign import CampaignConfig, run_campaign
from repro.hw.bits import flip_scalar_bit
from repro.hw.faultmodels import OP_FLIP, OP_STUCK0, FaultSet
from repro.hw.memory import WeightMemory
from repro.hw.rangecheck import WeightRangeCheck


def _memory(values=None, seed=0):
    if values is None:
        rng = np.random.default_rng(seed)
        values = rng.uniform(-0.5, 0.5, size=100).astype(np.float32)
    param = nn.Parameter(np.asarray(values, dtype=np.float32))
    return param, WeightMemory.from_parameters([("p", param)])


class TestWeightRangeCheck:
    def test_bounds_profile_current_weights(self):
        param, memory = _memory([0.1, -0.4, 0.2])
        check = WeightRangeCheck(memory, margin=2.0)
        assert check.bounds()["p"] == pytest.approx(0.8)

    def test_exponent_flip_caught_and_word_zeroed(self):
        param, memory = _memory()
        check = WeightRangeCheck(memory)
        # Flip the exponent MSB of word 5 -> value explodes out of range.
        bit = 5 * 32 + 30
        effective = check.filter(FaultSet.flips(np.asarray([bit])))
        # The word is zeroed: 32 stuck-at-0 entries covering word 5.
        assert len(effective) == 32
        assert (effective.operations == OP_STUCK0).all()
        assert (effective.bit_indices // 32 == 5).all()

    def test_in_range_flip_passes_through(self):
        param, memory = _memory()
        check = WeightRangeCheck(memory)
        # Mantissa LSB flip keeps the value in range.
        bit = 5 * 32 + 0
        effective = check.filter(FaultSet.flips(np.asarray([bit])))
        assert len(effective) == 1
        assert effective.operations[0] == OP_FLIP
        assert effective.bit_indices[0] == bit

    def test_sign_flip_in_range_passes(self):
        param, memory = _memory([0.3, -0.3])
        check = WeightRangeCheck(memory)
        effective = check.filter(FaultSet.flips(np.asarray([31])))  # sign of w0
        assert len(effective) == 1

    def test_multi_bit_same_word_evaluated_jointly(self):
        param, memory = _memory([0.25] * 4)
        check = WeightRangeCheck(memory)
        # Two flips on the same word whose combined effect stays in range:
        # flipping mantissa LSB twice-ish -> use two distinct low bits.
        value = float(param.data[0])
        corrupted = flip_scalar_bit(flip_scalar_bit(value, 0), 1)
        expected_in_range = abs(corrupted) <= check.bounds()["p"]
        effective = check.filter(FaultSet.flips(np.asarray([0, 1])))
        if expected_in_range:
            assert len(effective) == 2
        else:
            assert (effective.operations == OP_STUCK0).all()

    def test_empty_fault_set(self):
        _, memory = _memory()
        check = WeightRangeCheck(memory)
        assert len(check.filter(FaultSet.empty())) == 0

    def test_sample_effective_requires_same_memory(self):
        _, memory = _memory()
        _, other = _memory(seed=1)
        check = WeightRangeCheck(memory)
        with pytest.raises(ValueError):
            check.sample_effective(other, 1e-3, np.random.default_rng(0))

    def test_invalid_margin(self):
        _, memory = _memory()
        with pytest.raises(ValueError):
            WeightRangeCheck(memory, margin=0.0)

    def test_campaign_improves_over_unprotected(self, trained_mlp, mlp_eval_arrays):
        """End to end: the range check recovers most of the accuracy that
        exponent flips would otherwise destroy."""
        images, labels = mlp_eval_arrays
        memory = WeightMemory.from_model(trained_mlp)
        check = WeightRangeCheck(memory, margin=1.0)
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=4, seed=3)

        unprotected = run_campaign(trained_mlp, memory, images, labels, config)
        protected = run_campaign(
            trained_mlp, memory, images, labels, config,
            sampler=check.sample_effective,
        )
        assert protected.auc() > unprotected.auc() + 0.05
        assert protected.mean_accuracies()[-1] > unprotected.mean_accuracies()[-1]
