"""Tests for activation-site discovery and swapping (Step 2)."""

import numpy as np
import pytest

from repro import nn
from repro.core.clipped import ClampedReLU, ClippedReLU
from repro.core.swap import (
    find_activation_sites,
    get_thresholds,
    set_thresholds,
    swap_activations,
)
from repro.models import CifarAlexNet, CifarVGG16, LeNet5


class TestFindActivationSites:
    def test_lenet_sites(self):
        sites = find_activation_sites(LeNet5(seed=0))
        layer_names = [s.layer_name for s in sites]
        # FC-3 (the logits layer) has no trailing activation.
        assert layer_names == ["CONV-1", "CONV-2", "FC-1", "FC-2"]

    def test_alexnet_sites(self):
        sites = find_activation_sites(CifarAlexNet(width_mult=0.125, seed=0))
        layer_names = [s.layer_name for s in sites]
        assert layer_names == [
            "CONV-1", "CONV-2", "CONV-3", "CONV-4", "CONV-5", "FC-1", "FC-2",
        ]

    def test_vgg_sites_skip_batchnorm(self):
        """BatchNorm between conv and ReLU must not break the association."""
        sites = find_activation_sites(CifarVGG16(width_mult=0.0625, seed=0))
        layer_names = [s.layer_name for s in sites]
        assert layer_names == [f"CONV-{i}" for i in range(1, 14)]

    def test_activation_before_any_layer_skipped(self):
        model = nn.Sequential(nn.ReLU(), nn.Linear(4, 2, seed=0), nn.ReLU())
        sites = find_activation_sites(model)
        assert [s.layer_name for s in sites] == ["FC-1"]


class TestSwapActivations:
    def test_swap_with_mapping(self):
        model = LeNet5(seed=0)
        thresholds = {"CONV-1": 1.0, "CONV-2": 2.0, "FC-1": 3.0, "FC-2": 4.0}
        result = swap_activations(model, thresholds)
        assert result.replaced == 4
        assert result.layer_names() == list(thresholds)
        assert get_thresholds(model) == thresholds
        # The swapped modules are live in the model.
        assert isinstance(model[1], ClippedReLU)
        assert model[1].threshold == 1.0

    def test_swap_with_scalar(self):
        model = LeNet5(seed=0)
        result = swap_activations(model, 5.0)
        assert all(m.threshold == 5.0 for m in result.clipped.values())

    def test_clamp_variant(self):
        model = LeNet5(seed=0)
        swap_activations(model, 5.0, variant="clamp")
        assert isinstance(model[1], ClampedReLU)

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            swap_activations(LeNet5(seed=0), 5.0, variant="bogus")

    def test_missing_threshold_rejected(self):
        with pytest.raises(KeyError, match="CONV-2"):
            swap_activations(LeNet5(seed=0), {"CONV-1": 1.0, "FC-1": 1.0, "FC-2": 1.0})

    def test_no_activations_rejected(self):
        model = nn.Sequential(nn.Linear(4, 2, seed=0))
        with pytest.raises(ValueError, match="no swappable"):
            swap_activations(model, 1.0)

    def test_swap_preserves_eval_mode(self):
        model = LeNet5(seed=0)
        model.eval()
        result = swap_activations(model, 1.0)
        assert all(not m.training for m in result.clipped.values())

    def test_swap_changes_forward_behaviour(self):
        model = LeNet5(seed=0)
        model.eval()
        x = np.random.default_rng(0).random((2, 3, 32, 32)).astype(np.float32)
        before = model(x)
        swap_activations(model, 1e-6)  # clip almost everything
        after = model(x)
        assert not np.allclose(before, after)

    def test_relu6_also_swappable(self):
        model = nn.Sequential(nn.Linear(4, 4, seed=0), nn.ReLU6(), nn.Linear(4, 2, seed=1))
        result = swap_activations(model, 2.0)
        assert result.replaced == 1
        assert isinstance(model[1], ClippedReLU)


class TestThresholdAccessors:
    def test_set_thresholds_updates(self):
        model = LeNet5(seed=0)
        swap_activations(model, 1.0)
        set_thresholds(model, {"CONV-1": 9.0})
        assert get_thresholds(model)["CONV-1"] == 9.0
        assert get_thresholds(model)["CONV-2"] == 1.0

    def test_set_thresholds_unknown_layer(self):
        model = LeNet5(seed=0)
        swap_activations(model, 1.0)
        with pytest.raises(KeyError):
            set_thresholds(model, {"CONV-9": 1.0})

    def test_get_thresholds_empty_before_swap(self):
        assert get_thresholds(LeNet5(seed=0)) == {}


class TestLeakySwap:
    def test_leaky_relu_swaps_to_clipped_leaky(self):
        from repro.core.clipped import ClippedLeakyReLU

        model = nn.Sequential(
            nn.Linear(4, 4, seed=0), nn.LeakyReLU(0.2), nn.Linear(4, 2, seed=1)
        )
        result = swap_activations(model, 3.0)
        clipped = result.clipped["FC-1"]
        assert isinstance(clipped, ClippedLeakyReLU)
        assert clipped.negative_slope == 0.2
        assert clipped.threshold == 3.0

    def test_leaky_thresholds_settable(self):
        model = nn.Sequential(
            nn.Linear(4, 4, seed=0), nn.LeakyReLU(0.2), nn.Linear(4, 2, seed=1)
        )
        swap_activations(model, 3.0)
        set_thresholds(model, {"FC-1": 1.5})
        assert get_thresholds(model)["FC-1"] == 1.5

    def test_leaky_clamp_variant_uses_clamp(self):
        from repro.core.clipped import ClampedReLU

        model = nn.Sequential(
            nn.Linear(4, 4, seed=0), nn.LeakyReLU(0.2), nn.Linear(4, 2, seed=1)
        )
        result = swap_activations(model, 3.0, variant="clamp")
        assert isinstance(result.clipped["FC-1"], ClampedReLU)
