"""Paper Fig. 5b: AUC vs clipping threshold T for AlexNet CONV-4.

The paper sweeps the clipping threshold of CONV-4's activation (all other
layers clipped at their ACT_max) and plots the resulting AUC, with the
unbounded network's AUC as a red reference line.  Expected shape: a
bell — the AUC rises as T comes down from ACT_max, peaks below ACT_max,
then collapses once T starts clipping legitimate activations — and the
whole usable region sits far above the unbounded baseline.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.campaign import CampaignConfig, FaultInjectionCampaign, run_campaign
from repro.core.swap import set_thresholds, swap_activations
from repro.experiments import clone_model, default_harden_config
from repro.hw.memory import WeightMemory

LAYER = "CONV-4"


def test_fig5b_auc_vs_threshold_bell(
    benchmark, alexnet_bundle, alexnet_hardened, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    images, labels = images[:128], labels[:128]
    _, _, act_max = alexnet_hardened
    layer_act_max = act_max[LAYER]

    # Layer-scoped faults (the Fig. 5a caption: "faults in CONV-4 layer").
    config = CampaignConfig(
        fault_rates=tuple(np.logspace(-5, -3, 5)), trials=4, seed=5
    )

    def experiment():
        # Unbounded baseline: plain ReLUs everywhere (the red line).
        plain = clone_model(alexnet_bundle)
        memory = WeightMemory.from_model(plain, layers=[LAYER])
        unbounded = run_campaign(plain, memory, images, labels, config).auc()

        # Step-2 network: every layer clipped at its ACT_max; sweep CONV-4.
        clipped = clone_model(alexnet_bundle)
        swap_activations(clipped, act_max)
        memory = WeightMemory.from_model(clipped, layers=[LAYER])
        campaign = FaultInjectionCampaign(clipped, memory, images, labels, config)

        sweep = {}
        thresholds = np.concatenate(
            [np.linspace(0.05, 1.0, 6), [1.25, 1.5]]
        ) * layer_act_max
        for threshold in thresholds:
            set_thresholds(clipped, {LAYER: float(threshold)})
            campaign.invalidate_clean_accuracy()
            sweep[float(threshold)] = campaign.run().auc()
        return unbounded, sweep

    unbounded_auc, sweep = run_once(benchmark, experiment)

    rows = [
        [f"{threshold:.4f}", f"{threshold / layer_act_max:.2f}", f"{auc:.4f}"]
        for threshold, auc in sweep.items()
    ]
    rows.append(["unbounded (ReLU)", "-", f"{unbounded_auc:.4f}"])
    record_result(
        "fig5b_auc_vs_threshold",
        format_table(
            ["threshold T", "T / ACT_max", "AUC"],
            rows,
            title=(
                f"Fig. 5b — AUC vs clipping threshold of {LAYER} "
                f"(ACT_max = {layer_act_max:.4f}; faults scoped to {LAYER})"
            ),
        ),
    )

    aucs = np.asarray(list(sweep.values()))
    thresholds = np.asarray(list(sweep.keys()))
    peak_threshold = float(thresholds[int(aucs.argmax())])
    # Shape check 1: in the usable-threshold region (T >= ~0.4 ACT_max)
    # clipping dominates the unbounded baseline; below it the bell's left
    # tail legitimately drops under the red line (clipping real signal).
    usable = thresholds >= 0.4 * layer_act_max
    assert aucs[usable].min() > unbounded_auc
    # Shape check 2: a threshold at or below ACT_max attains (within noise)
    # the global peak — the paper's "peak lies below ACT_max" in a form
    # robust to the flat plateau above ACT_max that faulty ~1e37
    # activations produce (they are clipped by any practical threshold).
    at_or_below = aucs[thresholds <= layer_act_max + 1e-9]
    assert at_or_below.max() >= aucs.max() - 0.01
    del peak_threshold
    # Shape check 3: bell shape — the tiny-threshold end is worse than the
    # peak (clipping legitimate activations costs accuracy).
    assert aucs[0] < aucs.max()
