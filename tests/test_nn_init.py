"""Tests for weight initialization schemes."""

import math

import numpy as np
import pytest

from repro.nn import init


class TestFanInFanOut:
    def test_linear_shape(self):
        assert init.fan_in_and_fan_out((8, 4)) == (4, 8)

    def test_conv_shape(self):
        # (out=16, in=3, kh=3, kw=3): fan_in = 3*9, fan_out = 16*9
        assert init.fan_in_and_fan_out((16, 3, 3, 3)) == (27, 144)

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            init.fan_in_and_fan_out((5,))


class TestKaiming:
    def test_uniform_bound(self):
        rng = np.random.default_rng(0)
        weights = init.kaiming_uniform((64, 16), rng)
        bound = math.sqrt(2.0) * math.sqrt(3.0 / 16)
        assert weights.dtype == np.float32
        assert np.abs(weights).max() <= bound + 1e-6

    def test_uniform_variance_scales_with_fan_in(self):
        rng = np.random.default_rng(0)
        narrow = init.kaiming_uniform((64, 4), rng).std()
        wide = init.kaiming_uniform((64, 400), rng).std()
        assert narrow > wide

    def test_normal_std(self):
        rng = np.random.default_rng(1)
        weights = init.kaiming_normal((2000, 100), rng)
        expected_std = math.sqrt(2.0) / math.sqrt(100)
        assert weights.std() == pytest.approx(expected_std, rel=0.05)

    def test_deterministic_given_rng(self):
        a = init.kaiming_uniform((8, 8), np.random.default_rng(7))
        b = init.kaiming_uniform((8, 8), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestXavier:
    def test_uniform_bound(self):
        rng = np.random.default_rng(0)
        weights = init.xavier_uniform((32, 16), rng)
        bound = math.sqrt(6.0 / (16 + 32))
        assert np.abs(weights).max() <= bound + 1e-6

    def test_normal_std(self):
        rng = np.random.default_rng(1)
        weights = init.xavier_normal((1000, 200), rng)
        expected_std = math.sqrt(2.0 / (200 + 1000))
        assert weights.std() == pytest.approx(expected_std, rel=0.1)


class TestConstants:
    def test_zeros(self):
        arr = init.zeros((3, 2))
        assert arr.dtype == np.float32
        assert (arr == 0).all()

    def test_constant(self):
        arr = init.constant((4,), 2.5)
        np.testing.assert_array_equal(arr, np.full(4, 2.5, dtype=np.float32))
