"""Tests for the mitigation baselines."""

import numpy as np
import pytest

from repro import nn
from repro.core.baselines import (
    MITIGATION_SAMPLERS,
    apply_actmax_clipping,
    apply_clamping,
    apply_relu6,
    dmr_sampler,
    ecc_sampler,
    tmr_sampler,
)
from repro.core.clipped import ClampedReLU, ClippedReLU
from repro.hw.memory import WeightMemory
from repro.models import LeNet5, MLP


class TestModelBaselines:
    def test_apply_relu6_swaps_all_sites(self):
        model = LeNet5(seed=0)
        count = apply_relu6(model)
        assert count == 4
        relu6_layers = [m for m in model.modules() if isinstance(m, nn.ReLU6)]
        assert len(relu6_layers) == 4
        assert all(m.cap == 6.0 for m in relu6_layers)

    def test_apply_relu6_custom_cap(self):
        model = LeNet5(seed=0)
        apply_relu6(model, cap=2.0)
        relu6 = next(m for m in model.modules() if isinstance(m, nn.ReLU6))
        assert relu6.cap == 2.0

    def test_apply_relu6_no_sites_rejected(self):
        with pytest.raises(ValueError):
            apply_relu6(nn.Sequential(nn.Linear(4, 2, seed=0)))

    def test_apply_actmax_clipping(self):
        model = MLP(16, 4, hidden=(8, 8), seed=0)
        apply_actmax_clipping(model, {"FC-1": 1.0, "FC-2": 2.0})
        clipped = [m for m in model.modules() if isinstance(m, ClippedReLU)]
        assert sorted(m.threshold for m in clipped) == [1.0, 2.0]

    def test_apply_clamping(self):
        model = MLP(16, 4, hidden=(8, 8), seed=0)
        apply_clamping(model, {"FC-1": 1.0, "FC-2": 2.0})
        assert sum(isinstance(m, ClampedReLU) for m in model.modules()) == 2


class TestProtectionSamplers:
    def _memory(self):
        return WeightMemory.from_parameters(
            [("p", nn.Parameter(np.zeros(5000)))]
        )

    @pytest.mark.parametrize(
        "factory", [ecc_sampler, tmr_sampler, dmr_sampler]
    )
    def test_samplers_return_fault_sets(self, factory):
        memory = self._memory()
        sampler = factory()
        fault_set = sampler(memory, 1e-4, np.random.default_rng(0))
        if len(fault_set):
            assert fault_set.bit_indices.max() < memory.total_bits

    def test_ecc_and_tmr_suppress_sparse_faults(self):
        """At sparse rates, protected memories see almost no effective
        faults while the plain sampler sees many."""
        memory = self._memory()
        rng_factory = lambda: np.random.default_rng(1)
        plain = MITIGATION_SAMPLERS["plain"]()(memory, 1e-4, rng_factory())
        ecc = MITIGATION_SAMPLERS["ecc"]()(memory, 1e-4, rng_factory())
        tmr = MITIGATION_SAMPLERS["tmr"]()(memory, 1e-4, rng_factory())
        assert len(plain) > 0
        assert len(ecc) < len(plain)
        assert len(tmr) < len(plain)

    def test_registry_complete(self):
        assert set(MITIGATION_SAMPLERS) == {"plain", "ecc", "tmr", "dmr"}
        for factory in MITIGATION_SAMPLERS.values():
            assert callable(factory())

    def test_ecc_policy_passthrough(self):
        sampler = ecc_sampler(due_policy="keep")
        memory = self._memory()
        # High rate so multi-bit words exist; "keep" yields flip operations.
        fault_set = sampler(memory, 5e-2, np.random.default_rng(0))
        assert len(fault_set) > 0
