"""Reporting primitives: plain-text tables for the benchmark harness
and dependency-free HTML/SVG figure generation for ``repro report``.

The text helpers print the paper's rows and series (no plotting
dependencies offline); the HTML helpers render the same data as
self-contained markup — deterministic bytes in, deterministic bytes
out, so report regressions are diffable (``docs/RESULTS.md``).
"""

from __future__ import annotations

import math
from html import escape as _escape
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.metrics import ResilienceCurve

__all__ = [
    "CATEGORICAL_COLORS",
    "format_table",
    "format_curve_table",
    "format_comparison_table",
    "format_box_table",
    "format_histogram",
    "format_rate",
    "format_scenario_table",
    "html_table",
    "svg_resilience_figure",
    "RawHTML",
]

# Fixed-order categorical palette for report figures (colorblind-safe
# adjacent pairs on a white surface; series colors follow the entity and
# are never cycled — a figure never shows more than eight series).
CATEGORICAL_COLORS = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)


def format_rate(rate: float) -> str:
    """Render a fault rate like the paper: ``5.0e-07``."""
    if rate == 0:
        return "0"
    return f"{rate:.1e}"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Monospace table with per-column width fitting."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 1e-3 or abs(cell) >= 1e5:
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


def format_curve_table(curve: ResilienceCurve, title: str = "") -> str:
    """Accuracy-vs-fault-rate table for one curve (mean over trials)."""
    rows = [
        [format_rate(row["fault_rate"]), row["mean"], row["min"], row["max"]]
        for row in curve.summary_rows()
    ]
    rows.insert(0, ["0", curve.clean_accuracy, curve.clean_accuracy, curve.clean_accuracy])
    return format_table(
        ["fault_rate", "mean_acc", "min_acc", "max_acc"],
        rows,
        title=title or (curve.label and f"curve: {curve.label}") or "",
    )


def format_comparison_table(
    curves: Sequence[ResilienceCurve], labels: "Sequence[str] | None" = None, title: str = ""
) -> str:
    """Side-by-side mean accuracies of several curves on a shared rate grid."""
    if not curves:
        raise ValueError("need at least one curve")
    base_rates = curves[0].fault_rates
    for curve in curves[1:]:
        if not np.array_equal(curve.fault_rates, base_rates):
            raise ValueError("curves must share the same fault-rate grid")
    names = list(labels) if labels is not None else [
        curve.label or f"curve{i}" for i, curve in enumerate(curves)
    ]
    headers = ["fault_rate"] + names
    rows: list[list[object]] = [
        ["0"] + [curve.clean_accuracy for curve in curves]
    ]
    means = [curve.mean_accuracies() for curve in curves]
    for index, rate in enumerate(base_rates):
        rows.append([format_rate(float(rate))] + [m[index] for m in means])
    rows.append(["AUC"] + [curve.auc() for curve in curves])
    return format_table(headers, rows, title=title)


def format_box_table(curve: ResilienceCurve, title: str = "") -> str:
    """Box-plot statistics per fault rate (paper Fig. 7b/7c style)."""
    rows = []
    for rate, box in zip(curve.fault_rates, curve.box_stats()):
        rows.append(
            [format_rate(float(rate)), box.minimum, box.q1, box.median, box.q3, box.maximum]
        )
    return format_table(
        ["fault_rate", "min", "q1", "median", "q3", "max"], rows, title=title
    )


def format_scenario_table(results: Sequence, title: str = "") -> str:
    """One row per scenario of a :func:`repro.scenarios.run_scenarios` run.

    ``results`` are :class:`~repro.scenarios.compile.ScenarioResult`
    objects; the table summarizes each expanded scenario (model,
    campaign kind, mitigation variant, fault model) with its clean
    accuracy, the mean accuracy at the sweep's low and high ends, and
    the AUC — the cross-scenario counterpart of
    :func:`format_comparison_table`, which requires a shared rate grid.
    """
    rows = []
    for result in results:
        spec = result.spec
        means = result.curve.mean_accuracies()
        fault = spec.fault_model.name
        if spec.fault_model.params:
            fault += "(" + ",".join(
                f"{key}={value}"
                for key, value in sorted(spec.fault_model.params.items())
            ) + ")"
        rows.append(
            [
                spec.name,
                spec.model,
                spec.campaign,
                spec.variant,
                fault,
                result.curve.clean_accuracy,
                float(means[0]),
                float(means[-1]),
                result.curve.auc(),
            ]
        )
    return format_table(
        [
            "scenario", "model", "campaign", "variant", "fault_model",
            "clean", "acc@low", "acc@high", "AUC",
        ],
        rows,
        title=title,
    )


class RawHTML(str):
    """A table cell that is already markup; :func:`html_table` keeps it."""


def html_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    caption: str = "",
) -> str:
    """Self-contained HTML table; numeric cells get ``class="num"``.

    Cell text is escaped (wrap pre-rendered markup in :class:`RawHTML`
    to pass it through); floats render through the same fixed-precision
    rules as :func:`format_table` so report bytes are deterministic.
    """
    parts = ["<table>"]
    if caption:
        parts.append(f"<caption>{_escape(caption)}</caption>")
    parts.append("<thead><tr>")
    for header in headers:
        parts.append(f"<th>{_escape(str(header))}</th>")
    parts.append("</tr></thead>")
    parts.append("<tbody>")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        parts.append("<tr>")
        for cell in row:
            if isinstance(cell, RawHTML):
                parts.append(f"<td>{cell}</td>")
                continue
            numeric = isinstance(cell, (int, float)) and not isinstance(cell, bool)
            text = _render(cell) if not isinstance(cell, str) else cell
            if isinstance(cell, float) and math.isnan(cell):
                text = "—"
            css = ' class="num"' if numeric else ""
            parts.append(f"<td{css}>{_escape(text)}</td>")
        parts.append("</tr>")
    parts.append("</tbody></table>")
    return "".join(parts)


def _svg_x(rate: float, lo: float, hi: float, left: float, right: float) -> float:
    if hi == lo:
        return (left + right) / 2.0
    return left + (math.log10(rate) - lo) / (hi - lo) * (right - left)


def _svg_y(acc: float, top: float, bottom: float) -> float:
    return bottom - max(0.0, min(1.0, acc)) * (bottom - top)


def svg_resilience_figure(
    series: Sequence[Mapping[str, object]],
    clean_accuracy: "float | None" = None,
    title: str = "",
    width: int = 640,
    height: int = 300,
) -> str:
    """Inline SVG of resilience curves: mean accuracy vs fault rate.

    Each series mapping carries ``label``, ``rates`` (positive, strictly
    increasing), ``mean``, optional ``low``/``high`` (min–max band) and
    ``color``.  The x axis is log10 with one tick per decade, the y axis
    is accuracy in [0, 1].  Coordinates are formatted with fixed
    precision so the same inputs always produce the same bytes.
    """
    if not series:
        raise ValueError("need at least one series")
    left, right = 56.0, width - 16.0
    top, bottom = 28.0 if title else 16.0, height - 40.0
    rates: list[float] = []
    for entry in series:
        for rate in entry["rates"]:  # type: ignore[union-attr]
            if rate <= 0:
                raise ValueError("fault rates must be positive for a log axis")
            rates.append(float(rate))
    lo = math.floor(math.log10(min(rates)))
    hi = math.ceil(math.log10(max(rates)))
    if hi == lo:
        hi = lo + 1

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img">'
    ]
    if title:
        out.append(f'<text x="{left:.2f}" y="16" class="fig-title">{_escape(title)}</text>')
    # Recessive grid + axes.
    for quarter in range(5):
        y = _svg_y(quarter / 4.0, top, bottom)
        out.append(
            f'<line x1="{left:.2f}" y1="{y:.2f}" x2="{right:.2f}" y2="{y:.2f}" class="grid"/>'
        )
        out.append(
            f'<text x="{left - 8:.2f}" y="{y + 4:.2f}" class="tick" text-anchor="end">'
            f"{quarter / 4.0:.2f}</text>"
        )
    for decade in range(lo, hi + 1):
        x = _svg_x(10.0 ** decade, lo, hi, left, right)
        out.append(
            f'<line x1="{x:.2f}" y1="{top:.2f}" x2="{x:.2f}" y2="{bottom:.2f}" class="grid"/>'
        )
        out.append(
            f'<text x="{x:.2f}" y="{bottom + 18:.2f}" class="tick" text-anchor="middle">'
            f"1e{decade}</text>"
        )
    out.append(
        f'<text x="{(left + right) / 2:.2f}" y="{height - 6:.2f}" class="axis-label" '
        f'text-anchor="middle">fault rate</text>'
    )
    out.append(
        f'<text x="14" y="{(top + bottom) / 2:.2f}" class="axis-label" '
        f'text-anchor="middle" transform="rotate(-90 14 {(top + bottom) / 2:.2f})">'
        f"accuracy</text>"
    )
    if clean_accuracy is not None and not math.isnan(clean_accuracy):
        y = _svg_y(float(clean_accuracy), top, bottom)
        out.append(
            f'<line x1="{left:.2f}" y1="{y:.2f}" x2="{right:.2f}" y2="{y:.2f}" '
            f'class="clean-line"/>'
        )
        out.append(
            f'<text x="{right:.2f}" y="{y - 5:.2f}" class="tick" text-anchor="end">'
            f"clean {float(clean_accuracy):.4f}</text>"
        )
    for entry in series:
        label = str(entry["label"])
        color = str(entry.get("color", CATEGORICAL_COLORS[0]))
        xs = [float(rate) for rate in entry["rates"]]  # type: ignore[union-attr]
        mean = [float(value) for value in entry["mean"]]  # type: ignore[union-attr]
        low = entry.get("low")
        high = entry.get("high")
        if low is not None and high is not None:
            points = [
                f"{_svg_x(x, lo, hi, left, right):.2f},{_svg_y(float(value), top, bottom):.2f}"
                for x, value in zip(xs, high)  # type: ignore[arg-type]
            ] + [
                f"{_svg_x(x, lo, hi, left, right):.2f},{_svg_y(float(value), top, bottom):.2f}"
                for x, value in zip(reversed(xs), reversed(list(low)))  # type: ignore[arg-type]
            ]
            out.append(
                f'<polygon points="{" ".join(points)}" fill="{color}" '
                f'fill-opacity="0.14" stroke="none"/>'
            )
        line_points = " ".join(
            f"{_svg_x(x, lo, hi, left, right):.2f},{_svg_y(value, top, bottom):.2f}"
            for x, value in zip(xs, mean)
        )
        out.append(
            f'<polyline points="{line_points}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        for x, value in zip(xs, mean):
            out.append(
                f'<circle cx="{_svg_x(x, lo, hi, left, right):.2f}" '
                f'cy="{_svg_y(value, top, bottom):.2f}" r="3" fill="{color}">'
                f"<title>{_escape(label)}: rate {format_rate(x)}, "
                f"mean accuracy {value:.4f}</title></circle>"
            )
    out.append("</svg>")
    return "".join(out)


def format_histogram(
    counts: np.ndarray, edges: np.ndarray, width: int = 40, title: str = ""
) -> str:
    """ASCII histogram (used for the Fig. 3 activation distributions)."""
    counts = np.asarray(counts)
    edges = np.asarray(edges)
    if counts.size + 1 != edges.size:
        raise ValueError("edges must have one more element than counts")
    peak = counts.max() if counts.size else 0
    lines = [title] if title else []
    for index, count in enumerate(counts):
        bar = "#" * (int(round(width * count / peak)) if peak else 0)
        lines.append(
            f"[{edges[index]:>8.2f}, {edges[index + 1]:>8.2f})  {count:>8d}  {bar}"
        )
    return "\n".join(lines)
