"""Per-class vulnerability analysis.

Aggregate accuracy can hide that faults hurt some classes far more than
others (a network can collapse into predicting one class — the classic
failure of exponent-flip corruption, where one logit's pathway saturates).
This analysis measures per-class recall under fault injection and the
distribution of predicted classes, exposing that collapse.

Like the outcome taxonomy, it is a vector-valued cell task on the shared
executor substrate: ``workers=`` fans it out with weights mapped
zero-copy from the shared-memory tensor plane and the clean pass shared
across workers (``docs/MEMORY_MODEL.md``), bit-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import nn
from repro.core.campaign import CampaignConfig, FaultSampler, random_bitflip_sampler
from repro.core.executor import CampaignExecutor, InjectionCellRunner, payload_state
from repro.core.metrics import predict_labels
from repro.hw.memory import WeightMemory

__all__ = ["PerClassResult", "PerClassCellTask", "run_per_class_analysis"]


@dataclass
class PerClassResult:
    """Per-class recall and prediction distribution at each fault rate."""

    fault_rates: np.ndarray  # (R,)
    recall: np.ndarray  # (R, C) mean per-class recall over trials
    prediction_share: np.ndarray  # (R, C) fraction of predictions per class
    clean_recall: np.ndarray  # (C,)
    num_classes: int

    def most_vulnerable_classes(self, rate_index: int = -1, k: int = 3) -> list[int]:
        """Classes with the largest recall drop at the given rate."""
        drop = self.clean_recall - self.recall[rate_index]
        return [int(i) for i in np.argsort(drop)[::-1][:k]]

    def prediction_collapse(self, rate_index: int = -1) -> float:
        """Max single-class share of predictions at the given rate.

        1/num_classes means perfectly spread; 1.0 means total collapse
        into one predicted class.
        """
        return float(self.prediction_share[rate_index].max())


def _per_class_stats(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> tuple[np.ndarray, np.ndarray]:
    """(recall per class, prediction share per class) for one trial."""
    recall = np.zeros(num_classes)
    for cls in range(num_classes):
        mask = labels == cls
        if mask.any():
            recall[cls] = float((predictions[mask] == cls).mean())
    share = np.bincount(
        np.clip(predictions, 0, num_classes - 1), minlength=num_classes
    ).astype(np.float64)
    share /= max(predictions.size, 1)
    return recall, share


class PerClassCellTask:
    """Cell protocol for per-class analysis (see :mod:`repro.core.executor`).

    Each cell is vector-valued — one trial's per-class recall followed by
    its per-class prediction share (``cell_width = 2 * num_classes``) —
    and :meth:`build_result` averages them per rate in trial order,
    matching the historical serial accumulation bit for bit.
    """

    kind = "per-class"

    def __init__(
        self,
        model: nn.Module,
        memory: WeightMemory,
        images: np.ndarray,
        labels: np.ndarray,
        config: "CampaignConfig | None" = None,
        sampler: "FaultSampler | None" = None,
        num_classes: "int | None" = None,
        label: str = "",
        suffix: bool = True,
        batch_k: int = 0,
    ):
        self.model = model
        self.memory = memory
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.config = config if config is not None else CampaignConfig()
        self.sampler = sampler if sampler is not None else random_bitflip_sampler()
        if num_classes is None:
            num_classes = int(self.labels.max()) + 1
        self.num_classes = int(num_classes)
        self.cell_width = 2 * self.num_classes
        self.label = label
        self.suffix = bool(suffix)
        # Variant-batching width (repro.core.batched); 0/1 = per-cell.
        self.batch_k = int(batch_k)

    def __getstate__(self) -> dict:
        return payload_state(self)

    def measure(self, forward=None) -> np.ndarray:
        """Per-class stats of the (currently fault-injected) model."""
        predictions = predict_labels(
            self.model, self.images, self.config.batch_size, forward=forward
        )
        trial_recall, trial_share = _per_class_stats(
            predictions, self.labels, self.num_classes
        )
        return np.concatenate([trial_recall, trial_share])

    def make_runner(self) -> InjectionCellRunner:
        return InjectionCellRunner(self)

    def build_result(self, rates: np.ndarray, values: np.ndarray) -> PerClassResult:
        clean_predictions = predict_labels(self.model, self.images, self.config.batch_size)
        clean_recall, _ = _per_class_stats(
            clean_predictions, self.labels, self.num_classes
        )
        classes = self.num_classes
        recall = np.zeros((rates.size, classes))
        share = np.zeros((rates.size, classes))
        # Accumulate in trial order (not np.sum's pairwise reduction) so
        # the result matches the historical serial loop bit for bit.
        for rate_index in range(rates.size):
            for trial in range(self.config.trials):
                recall[rate_index] += values[rate_index, trial, :classes]
                share[rate_index] += values[rate_index, trial, classes:]
            recall[rate_index] /= self.config.trials
            share[rate_index] /= self.config.trials
        return PerClassResult(
            fault_rates=rates,
            recall=recall,
            prediction_share=share,
            clean_recall=clean_recall,
            num_classes=classes,
        )


def run_per_class_analysis(
    model: nn.Module,
    memory: WeightMemory,
    images: np.ndarray,
    labels: np.ndarray,
    config: "CampaignConfig | None" = None,
    sampler: "FaultSampler | None" = None,
    num_classes: "int | None" = None,
    workers: int = 1,
    progress: "Callable | None" = None,
    checkpoint: "str | None" = None,
    suffix: bool = True,
) -> PerClassResult:
    """Sweep fault rates and record per-class recall / prediction share.

    ``workers`` fans the grid across a process pool (``0`` = one per CPU
    core) with results bit-identical to the serial sweep; ``suffix``
    toggles suffix re-execution on the serial path (also bit-identical;
    workers always run with the engine on — ``REPRO_NO_SUFFIX=1``
    disables it everywhere).
    """
    task = PerClassCellTask(
        model, memory, images, labels,
        config=config, sampler=sampler, num_classes=num_classes,
        suffix=suffix,
    )
    executor = CampaignExecutor(
        workers=workers, progress=progress, checkpoint=checkpoint
    )
    return executor.run_tasks([task])[0]
