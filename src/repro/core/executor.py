"""Parallel campaign execution: deterministic fan-out of (rate, trial) cells.

:class:`CampaignExecutor` is the single execution substrate for every
Monte-Carlo sweep in this codebase.  A sweep is described by one or more
*cell tasks* — picklable objects implementing :class:`CampaignCellTask` —
whose grid of ``(rate index, trial index)`` cells the executor evaluates
either in-process (``workers=1``, exactly the historical serial loops) or
across a :class:`concurrent.futures.ProcessPoolExecutor` worker pool.

Weight-fault campaigns (:class:`WeightFaultCellTask`, here), quantized
int8 campaigns (:class:`~repro.core.quantized.QuantizedCellTask`),
activation-fault campaigns
(:class:`~repro.hw.actfaults.ActivationFaultCellTask`) and the
vector-valued outcome/per-class analyses all speak this protocol, and
:meth:`CampaignExecutor.run_tasks` schedules cells from *several* tasks
(layerwise layers, mitigation variants, Algorithm-1 boundary thresholds)
into one shared pool instead of running campaigns back-to-back.

Design
------

**Cell protocol.**  A task is a picklable description of one campaign:
``task.make_runner()`` builds the mutable per-process machinery (fault
injector, quantized deployment, activation hooks), and
``runner.run_cell(rate_index, trial)`` evaluates one cell.  The serial
path builds the runner over the caller's live objects; a worker builds it
over its own deserialized copy — the *same code* runs in both, so
determinism holds by construction rather than by keeping loops in sync.

**Zero-copy weight shipping.**  Each task packs once into a
:class:`~repro.utils.shm.PackedUnit` — an in-band pickle stream plus
out-of-band tensor buffers (pickle protocol 5) — whose combined bytes
feed the checkpoint fingerprint's CRC; callers that already hold a
task's packed form pass it through ``run_tasks(payloads=...)`` so no
model snapshot is serialized twice.  All units are laid out in one
shared-memory **tensor plane** per sweep generation (a region table over
one :mod:`multiprocessing.shared_memory` segment, see
:mod:`repro.utils.shm`): workers attach once per generation and map
every model tensor as a *read-only numpy view* instead of deserializing
a private weight copy.  Mutation is copy-on-write — injection privatizes
only the regions its fault set touches
(:meth:`repro.hw.memory.WeightMemory.materialize`).  The plane degrades
to inline bytes when shared memory is unavailable, and
``REPRO_NO_SHM_VIEWS=1`` restores the historical private-copy
deserialization; either way results are bit-identical.  Workers load
tasks lazily, keeping one live runner at a time.

**Cross-worker suffix cache.**  Before fan-out the parent runs each
pending task's clean pass once (by building and closing a throwaway
runner) and publishes the suffix engine's activation cache into the same
plane (region ``suffix/<task>``); every worker's engine then attaches
those read-only views via :func:`repro.core.suffix.shared_cache` instead
of re-running the clean pass per worker — one clean pass per host per
task, bit-identical by construction.

**Warm pools.**  ``persistent=True`` keeps the worker pool alive across
:meth:`CampaignExecutor.run_tasks` calls; because payloads travel per
generation rather than through the pool initializer, iterative drivers —
Algorithm 1's per-iteration boundary batches — reuse one pool instead of
constructing one per iteration.

**Suffix re-execution.**  :class:`InjectionCellRunner` (and its
quantized/activation siblings) owns a
:class:`~repro.core.suffix.SuffixForwardEngine`: one clean forward pass
caches the tensor entering every faultable layer, and each cell
re-executes only from the first layer its fault set touches — the
injector's cut-point report (`FaultInjector.affected_layers`) scopes the
cut, and the skipped prefix is bit-identical by construction.

**Determinism.**  The per-cell seed depends only on
``(campaign seed, rate index, trial index)`` via
:class:`~repro.utils.rng.SeedTree` (path ``rate/<i>/trial/<j>``), never on
which worker evaluates the cell, which task the cell belongs to, or in
which order cells complete.  Worker state is a bit-exact copy of the
parent's and evaluation is pure single-threaded NumPy, so parallel and
cross-campaign runs produce results *bit-identical* to running each
campaign's serial loop back-to-back — the common-random-numbers contract
of ``campaign.py`` survives any scheduling.

**Dispatch.**  Cells are enumerated task-major, rate-major (the serial
order), split into contiguous single-task chunks of ``chunk_size``
(default: about four chunks per worker across all tasks) and submitted
eagerly; results are written back into each task's
``(n_rates, n_trials)`` value grid by index, so completion order is
irrelevant.

**Streaming and resume.**  An optional per-cell ``progress`` callback
receives a :class:`CellResult` as each value lands, and an optional
``checkpoint`` JSON file records completed cells so an interrupted sweep
restarted with the same configuration re-runs only the missing cells.
The checkpoint fingerprint covers each task's kind (a quantized
checkpoint can never resume a weight-fault sweep), config grid and a CRC
of its pickled content.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator, Protocol, Sequence

import numpy as np

from repro.core.chaos import ChaosPolicy
from repro.core.metrics import ResilienceCurve, evaluate_accuracy_arrays
from repro.utils.rng import SeedTree
from repro.utils.shm import PackedUnit, ShippedPlane, pack_object, ship_units

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.campaign import CampaignConfig, FaultInjectionCampaign, FaultSampler

__all__ = [
    "CellResult",
    "CellTimeoutError",
    "ProgressCallback",
    "CellRecorder",
    "CellRunner",
    "CampaignCellTask",
    "InjectionCellRunner",
    "WeightFaultCellTask",
    "CampaignExecutor",
    "SupervisionPolicy",
    "ON_CELL_ERROR_CHOICES",
    "FAILURE_REASONS",
    "FAILED_CELL_FIELDS",
    "payload_state",
    "resolve_workers",
    "cell_seed_path",
]

# v3: the campaign CRC fingerprint became PackedUnit.crc32() (in-band
# stream + out-of-band tensor buffers) when the tensor plane landed; v2
# checkpoints carry a CRC of the old in-band pickle and cannot resume.
_CHECKPOINT_VERSION = 3


def cell_seed_path(rate_index: int, trial: int) -> str:
    """The :class:`SeedTree` path of one campaign cell.

    This string is the determinism contract between the serial loop and
    the worker pool: both derive the cell's generator from it.
    """
    return f"rate/{rate_index}/trial/{trial}"


def resolve_workers(workers: int) -> int:
    """Normalize a worker count: ``0`` means one worker per CPU core."""
    if not isinstance(workers, (int, np.integer)):
        raise TypeError(f"workers must be an int, got {type(workers).__name__}")
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = cpu_count), got {workers}")
    if workers == 0:
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # pragma: no cover - non-Linux fallback
            return os.cpu_count() or 1
    return int(workers)


# What to do when a cell's evaluation raises an exception (worker deaths
# and timeouts are infrastructure faults and are always retried first):
#   abort      - re-raise immediately (the historical behavior, default)
#   retry      - retry up to max_retries times, then quarantine
#   quarantine - mark the cell failed on the first blamed error
ON_CELL_ERROR_CHOICES = ("retry", "quarantine", "abort")

# Why a cell was quarantined.
FAILURE_REASONS = ("exception", "timeout", "worker-death")

# Schema of one quarantined-cell record (CampaignExecutor.quarantined,
# scenario "failed_cells" payloads, shard partial "failed" lists).  The
# failure-outcome table in docs/FAULT_TOLERANCE.md mirrors these fields
# and tests/test_docs_consistency.py enforces the match both directions.
FAILED_CELL_FIELDS = {
    "task": "label (or kind) of the owning campaign task",
    "task_index": "position of the task in the scheduling pass",
    "rate_index": "rate index of the quarantined cell",
    "trial": "trial index of the quarantined cell",
    "reason": "one of the FAILURE_REASONS: exception, timeout, worker-death",
    "attempts": "dispatch attempts consumed before the cell was given up",
    "error": "rendering of the last error ('' for timeouts without one)",
}


class CellTimeoutError(RuntimeError):
    """A cell dispatch exceeded the supervision policy's cell timeout."""


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the executor reacts to failing cells, workers and stalls.

    ``max_retries`` bounds the blamed failures a single cell may
    accumulate (infrastructure faults — worker deaths, timeouts — are
    always retried up to this bound regardless of ``on_cell_error``).
    ``cell_timeout`` is the per-cell wall-clock budget of a dispatch
    (``None`` disables timeouts; enforced on the worker pool only —
    in-process execution cannot be preempted).  ``on_cell_error`` picks
    the exception policy from :data:`ON_CELL_ERROR_CHOICES`; the
    default ``"abort"`` preserves the historical raise-on-first-error
    contract.  ``retry_backoff`` seeds the deterministic exponential
    backoff (no jitter — determinism extends to scheduling decisions),
    and ``max_pool_rebuilds`` caps pool reconstructions before the
    executor degrades to serial in-process execution.
    """

    max_retries: int = 2
    cell_timeout: "float | None" = None
    on_cell_error: str = "abort"
    retry_backoff: float = 0.05
    max_pool_rebuilds: int = 8

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        object.__setattr__(self, "max_retries", int(self.max_retries))
        if self.cell_timeout is not None:
            timeout = float(self.cell_timeout)
            if timeout <= 0:
                raise ValueError(
                    f"cell_timeout must be positive (or None), got {timeout}"
                )
            object.__setattr__(self, "cell_timeout", timeout)
        if self.on_cell_error not in ON_CELL_ERROR_CHOICES:
            raise ValueError(
                f"on_cell_error must be one of {ON_CELL_ERROR_CHOICES}, "
                f"got {self.on_cell_error!r}"
            )
        if float(self.retry_backoff) < 0:
            raise ValueError("retry_backoff must be >= 0")
        object.__setattr__(self, "retry_backoff", float(self.retry_backoff))
        if int(self.max_pool_rebuilds) < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        object.__setattr__(
            self, "max_pool_rebuilds", int(self.max_pool_rebuilds)
        )

    @classmethod
    def from_env(
        cls,
        max_retries: "int | None" = None,
        cell_timeout: "float | None" = None,
        on_cell_error: "str | None" = None,
    ) -> "SupervisionPolicy":
        """Resolve a policy: explicit argument > environment > default.

        The environment knobs (``REPRO_MAX_RETRIES``,
        ``REPRO_CELL_TIMEOUT``, ``REPRO_ON_CELL_ERROR``) configure runs
        whose call sites don't thread the parameters — benchmarks,
        examples, hardening sub-campaigns.
        """
        if max_retries is None:
            raw = os.environ.get("REPRO_MAX_RETRIES", "").strip()
            max_retries = int(raw) if raw else cls.max_retries
        if cell_timeout is None:
            raw = os.environ.get("REPRO_CELL_TIMEOUT", "").strip()
            cell_timeout = float(raw) if raw else None
        if on_cell_error is None:
            raw = os.environ.get("REPRO_ON_CELL_ERROR", "").strip()
            on_cell_error = raw if raw else cls.on_cell_error
        return cls(
            max_retries=max_retries,
            cell_timeout=cell_timeout,
            on_cell_error=on_cell_error,
        )

    def backoff_seconds(self, failures: int) -> float:
        """Deterministic exponential backoff after the n-th blamed failure."""
        if failures <= 0 or self.retry_backoff <= 0:
            return 0.0
        return self.retry_backoff * (2.0 ** min(failures - 1, 5))


@dataclass(frozen=True)
class CellResult:
    """One completed (rate, trial) cell, streamed to progress callbacks.

    ``accuracy`` is the cell's primary scalar (the accuracy for curve
    campaigns, the first component for vector-valued analyses, whose full
    vector arrives in ``values``).  ``campaign_index`` / ``campaign_label``
    identify the owning task in a cross-campaign sweep.
    """

    rate_index: int
    trial: int
    fault_rate: float
    accuracy: float
    completed: int  # cells finished so far (including checkpointed ones)
    total: int  # total cells across all tasks in the sweep
    from_checkpoint: bool = False
    campaign_index: int = 0
    campaign_label: str = ""
    values: "tuple[float, ...] | None" = None
    # True for a quarantined cell: the accuracy is NaN and the full
    # failure record lands in CampaignExecutor.quarantined.
    failed: bool = False


ProgressCallback = Callable[[CellResult], None]


class CellRecorder(Protocol):
    """A sink for per-cell records (the result-store hook).

    Unlike a progress callback (presentation), a recorder is part of
    the result path: it sees every completed cell — including
    checkpoint-replayed ones — via :meth:`cell`, and every quarantined
    cell's full :data:`FAILED_CELL_FIELDS` record via :meth:`failure`
    (the matching ``failed=True`` :class:`CellResult` still flows
    through :meth:`cell`, so implementations that only want executed
    cells should skip results with ``failed`` set).
    :class:`repro.results.SegmentRecorder` streams these into the
    append-only per-cell store (see ``docs/RESULTS.md``).
    """

    def cell(self, result: CellResult) -> None: ...

    def failure(self, record: dict) -> None: ...


# --------------------------------------------------------------------- #
# the cell protocol
# --------------------------------------------------------------------- #


class CellRunner(Protocol):
    """Per-process campaign machinery built by a task's :meth:`make_runner`."""

    def run_cell(self, rate_index: int, trial: int) -> "float | Sequence[float]":
        """Evaluate one cell; must depend only on (seed, rate, trial)."""

    def close(self) -> None:
        """Tear down (restore weights, remove hooks); idempotent."""


class CampaignCellTask(Protocol):
    """A picklable description of one campaign's cell grid.

    ``kind`` discriminates campaign types in checkpoint fingerprints;
    ``cell_width`` is the number of scalars per cell (1 for accuracy
    curves).  ``build_result`` turns the assembled
    ``(n_rates, n_trials[, cell_width])`` value grid into the campaign's
    result object (usually a :class:`ResilienceCurve`).
    """

    kind: str
    label: str
    config: "CampaignConfig"
    cell_width: int

    def make_runner(self) -> CellRunner: ...

    def build_result(self, rates: np.ndarray, values: np.ndarray) -> Any: ...


def payload_state(task: CampaignCellTask) -> dict:
    """The ``__getstate__`` shared by every cell task.

    Drops parent-side presentation (``label``), caches (``_clean``) and
    execution details (``suffix`` — results are bit-identical with the
    engine on or off) from the pickled payload, so the payload bytes —
    and hence the checkpoint CRC — depend only on the campaign's
    scientific content: a checkpoint written with the suffix engine on
    resumes a run with it off, and vice versa.  Worker processes thus
    always run with the engine enabled; ``REPRO_NO_SUFFIX=1`` (inherited
    by workers) is the everywhere-off switch.
    """
    state = dict(task.__dict__)
    state["label"] = ""
    if "_clean" in state:
        state["_clean"] = None
    if "suffix" in state:
        state["suffix"] = True
    return state


def _accuracy_from_logits(
    current: "float | None",
    logits_batches: "Sequence[np.ndarray]",
    labels: np.ndarray,
) -> "float | None":
    """Top-1 accuracy from per-batch logits, mirroring
    :func:`~repro.core.metrics.evaluate_accuracy_arrays` exactly
    (per-batch argmax, concatenated, compared to the labels).  Returns
    ``current`` unchanged when it is already set or the batches do not
    cover the evaluation set.
    """
    if current is not None or not logits_batches:
        return current
    predictions = np.concatenate(
        [np.argmax(batch, axis=1) for batch in logits_batches]
    )
    if predictions.shape[0] != labels.shape[0]:  # pragma: no cover - defensive
        return current
    return float((predictions == labels).mean())


class InjectionCellRunner:
    """Injector + seed tree over one (possibly worker-local) model copy.

    The shared scaffold for every task that samples a weight-fault set
    and measures the model under injection — the accuracy campaign, the
    outcome taxonomy and the per-class analysis differ only in what
    ``task.measure()`` computes while the faults are applied.

    The runner owns a :class:`~repro.core.suffix.SuffixForwardEngine`
    (one clean pass over the eval set, cached prefix activations): each
    cell's fault set is located *before* injection and only the layers
    from the first faulted one onward are re-executed — bit-identical to
    the full forward, since the skipped prefix is untouched.  Cells whose
    fault set is empty replay the cached clean logits outright.
    """

    def __init__(self, task):
        from repro.core.batched import BatchedSuffixKernel
        from repro.core.suffix import SuffixForwardEngine
        from repro.hw.injector import FaultInjector

        self.task = task
        self.injector = FaultInjector(task.memory)
        self.tree = SeedTree(task.config.seed)
        self.engine = SuffixForwardEngine.build(
            task.model,
            task.images,
            task.config.batch_size,
            scope_layers=task.memory.layer_names(),
            enabled=getattr(task, "suffix", True),
        )
        self.kernel = BatchedSuffixKernel(
            task.model,
            task.images,
            task.config.batch_size,
            engine=self.engine,
            batch_k=getattr(task, "batch_k", 0),
        )

    @property
    def cells_per_call(self) -> int:
        """Preferred dispatch group width (1 = plain per-cell calls)."""
        return self.kernel.batch_k if self.kernel.enabled else 1

    def _fault_set(self, rate_index: int, trial: int):
        """The cell's fault draw on its deterministic seed path."""
        task = self.task
        rate = float(task.config.fault_rates[rate_index])
        rng = self.tree.generator(cell_seed_path(rate_index, trial))
        return task.sampler(task.memory, rate, rng)

    def run_cell(self, rate_index: int, trial: int) -> "float | Sequence[float]":
        fault_set = self._fault_set(rate_index, trial)
        forward = None
        if self.engine is not None:
            forward = self.engine.forward_fn(self.injector.affected_layers(fault_set))
        with self.injector.apply(fault_set):
            return self.task.measure(forward=forward)

    def run_cells(
        self, cells: Sequence[tuple[int, int]]
    ) -> "list[float | Sequence[float]]":
        """Evaluate a group of cells through the batched kernel.

        Bit-identical to calling :meth:`run_cell` per cell in order:
        fault sets are drawn from the same per-cell seed paths, and the
        kernel either shares a bitwise-verified wide tail across the
        group or falls back to exactly the per-cell forward.
        """
        return self.run_fault_sets(
            [self._fault_set(rate_index, trial) for rate_index, trial in cells]
        )

    def run_fault_sets(self, fault_sets) -> "list[float | Sequence[float]]":
        """Measure the model under each pre-drawn fault set (in order)."""
        from functools import partial

        from repro.core.batched import FaultVariant

        variants = [
            FaultVariant(
                apply=partial(self.injector.apply, fault_set),
                affected=tuple(self.injector.affected_layers(fault_set)),
            )
            for fault_set in fault_sets
        ]
        return self.kernel.run_family(
            variants, lambda forward: self.task.measure(forward=forward)
        )

    def close(self) -> None:
        # Injection restores per cell; only the activation cache remains.
        if self.engine is not None:
            self.engine.close()
            self.engine = None


class WeightFaultCellTask:
    """The paper's campaign: sample weight faults, inject, evaluate, restore.

    Built either from a live :class:`~repro.core.campaign.FaultInjectionCampaign`
    (serial path / pickling source) or directly from its parts.  The
    ``label`` and lazily-cached clean accuracy are parent-side and excluded
    from the pickled payload, so the payload bytes — and hence the
    checkpoint CRC — depend only on the campaign's scientific content.
    """

    kind = "weight-fault"
    cell_width = 1

    def __init__(
        self,
        model,
        memory,
        images: np.ndarray,
        labels: np.ndarray,
        config: "CampaignConfig | None" = None,
        sampler: "FaultSampler | None" = None,
        label: str = "",
        clean_accuracy: "float | None" = None,
        suffix: bool = True,
        batch_k: int = 0,
    ):
        from repro.core.campaign import CampaignConfig, random_bitflip_sampler

        self.model = model
        self.memory = memory
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.config = config if config is not None else CampaignConfig()
        self.sampler = sampler if sampler is not None else random_bitflip_sampler()
        self.label = label
        self._clean = None if clean_accuracy is None else float(clean_accuracy)
        self.suffix = bool(suffix)
        # Variant-batching width for the runner's BatchedSuffixKernel
        # (repro.core.batched): 0/1 keeps the historical per-cell loop,
        # K > 1 shares bitwise-verified wide tails across K cells.
        # Results are bit-identical either way; the value travels in the
        # pickled payload because adaptive wrappers reuse it as their
        # (scientific) stopping-chunk width.
        self.batch_k = int(batch_k)

    def __getstate__(self) -> dict:
        return payload_state(self)

    def clean_accuracy(self) -> float:
        """Fault-free accuracy on the evaluation set (computed lazily)."""
        if self._clean is None:
            self._clean = evaluate_accuracy_arrays(
                self.model, self.images, self.labels, self.config.batch_size
            )
        return self._clean

    def absorb_clean_logits(self, logits_batches) -> None:
        """Seed the lazy clean accuracy from an engine's clean pass.

        ``logits_batches`` are a suffix engine's cached clean logits
        over this task's evaluation set — their argmax agreement with
        the labels is exactly what :meth:`clean_accuracy` would
        recompute with another full forward (bit-identical logits), so
        the executor feeds the parent-side export back instead of
        paying that forward twice.
        """
        self._clean = _accuracy_from_logits(
            self._clean, logits_batches, self.labels
        )

    def measure(self, forward=None) -> float:
        """Accuracy of the (currently fault-injected) model."""
        return evaluate_accuracy_arrays(
            self.model, self.images, self.labels, self.config.batch_size,
            forward=forward,
        )

    def make_runner(self) -> InjectionCellRunner:
        return InjectionCellRunner(self)

    def build_result(self, rates: np.ndarray, values: np.ndarray) -> ResilienceCurve:
        return ResilienceCurve(
            fault_rates=rates,
            accuracies=values,
            clean_accuracy=self.clean_accuracy(),
            label=self.label,
        )


# --------------------------------------------------------------------- #
# worker-side machinery
# --------------------------------------------------------------------- #

# Per-process sweep state, set once by _init_worker.  Plain module
# globals: ProcessPoolExecutor workers are single-threaded and each
# process serves exactly one sweep *generation* at a time.  A warm pool
# outlives individual sweeps (Algorithm-1 iterations reuse one pool), so
# the payload travels with each chunk call — a tiny tensor-plane address
# (segment name + region table), attached once per worker per generation
# — instead of the pool initializer.  Tasks load lazily (zero-copy views
# by default) and only one runner stays live per worker; under
# copy-on-write that runner privatizes only the weight regions its
# fault sets actually write.
_WORKER_STATE: "dict | None" = None

# Parent-side generation ids: one per run_tasks scheduling pass, so a
# worker can tell a fresh region table from the one it already attached.
_GENERATION = iter(range(1, 2**62))


def _init_worker() -> None:
    """Pool initializer: empty slots, filled by the first chunk call."""
    global _WORKER_STATE
    _WORKER_STATE = {
        "generation": None,
        "view": None,
        "task_index": None,
        "runner": None,
    }


def _worker_state(plane: ShippedPlane, generation: "tuple[int, int]") -> dict:
    """Attach this worker to ``plane``'s segment (once per generation).

    Teardown order matters under zero-copy: the runner (whose model
    arrays may be views into the old generation's segment) is released
    *before* the old plane view detaches, so the unmap never invalidates
    a live array.
    """
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - defensive: initializer always ran
        raise RuntimeError("campaign worker used before initialization")
    if state["generation"] != generation:
        if state["runner"] is not None:
            state["runner"].close()
            state["runner"] = None
        state["task_index"] = None
        if state["view"] is not None:
            state["view"].close()
        state["view"] = plane.open()
        state["generation"] = generation
    return state


def _task_runner(state: dict, task_index: int):
    """The worker's runner for ``task_index``, (re)built on task switch.

    Loading ``task/<i>`` maps the task's tensors as read-only views
    (private copies under ``REPRO_NO_SHM_VIEWS=1``); if the parent
    published the task's clean pass (region ``suffix/<i>``), the
    runner's engine attaches it through the shared-cache offer instead
    of re-running the clean forward in this worker.
    """
    if state["task_index"] != task_index:
        from repro.core.suffix import shared_cache

        if state["runner"] is not None:
            state["runner"].close()
            state["runner"] = None
            state["task_index"] = None
        view = state["view"]
        task = view.load(f"task/{task_index}")
        cache_name = f"suffix/{task_index}"
        cache = view.load(cache_name) if cache_name in view else None
        with shared_cache(cache):
            state["runner"] = task.make_runner()
        state["task_index"] = task_index
    return state["runner"]


def _runner_groups(
    runner, cells: Sequence[tuple[int, int]]
) -> "Iterator[tuple[list[tuple[int, int]], list]]":
    """Yield ``(cell group, values)`` pairs in serial cell order.

    Runners advertising ``cells_per_call > 1`` (the batched kernel) get
    their pending cells in groups via :meth:`run_cells`; everything else
    runs the historical one-call-per-cell loop.  Grouping is pure
    dispatch: values are bit-identical either way, and callers still
    record/emit/checkpoint cell by cell.
    """
    group = max(1, int(getattr(runner, "cells_per_call", 1)))
    for start in range(0, len(cells), group):
        chunk = list(cells[start : start + group])
        if group > 1 and len(chunk) > 1:
            yield chunk, list(runner.run_cells(chunk))
        else:
            yield chunk, [
                runner.run_cell(rate_index, trial)
                for rate_index, trial in chunk
            ]


def _run_task_cells(
    plane: ShippedPlane,
    generation: "tuple[int, int]",
    task_index: int,
    cells: Sequence[Sequence[int]],
) -> "list[tuple[int, int, int, float | Sequence[float]]]":
    """Evaluate a chunk of one task's cells in this worker.

    Each cell is ``(rate_index, trial)`` or — from the supervised
    dispatch loop — ``(rate_index, trial, attempt)``, where ``attempt``
    counts earlier dispatches of the same cell and keys the chaos
    harness (:mod:`repro.core.chaos`): with the default
    ``attempts=1`` gate a re-dispatched cell is never disturbed twice,
    so recovery converges.  Chaos fires *before* the runner is touched,
    leaving retried dispatches clean state to evaluate from.
    """
    normalized = [(int(cell[0]), int(cell[1])) for cell in cells]
    policy = ChaosPolicy.from_env()
    if policy is not None:
        attempts = [
            int(cell[2]) if len(cell) > 2 else 0 for cell in cells
        ]
        policy.disturb(task_index, normalized, attempts)
    runner = _task_runner(_worker_state(plane, generation), task_index)
    return [
        (task_index, rate_index, trial, value)
        for chunk, values in _runner_groups(runner, normalized)
        for (rate_index, trial), value in zip(chunk, values)
    ]


# --------------------------------------------------------------------- #
# checkpoint file
# --------------------------------------------------------------------- #


def _pack_task(
    task: CampaignCellTask,
) -> "tuple[PackedUnit | None, Exception | None]":
    """Serialize one task (model, memory, eval set, sampler) once.

    Packs with the tensor plane's out-of-band format
    (:func:`repro.utils.shm.pack_object`): the unit's stream + buffers
    feed both the checkpoint fingerprint (CRC) and the worker-pool
    payload, so large models are serialized exactly once per run — and
    the tensor buffers still reference the live arrays, so nothing is
    copied until the plane is laid out.  Returns ``(None, error)`` when
    the task is unpicklable (e.g. a closure sampler): serial runs then
    fall back to config-level checkpoint validation, and parallel runs
    raise a clear error.
    """
    try:
        return pack_object(task), None
    except Exception as error:
        return None, error


def _export_suffix_caches(
    tasks: Sequence[CampaignCellTask],
    pending: "list[list[tuple[int, int]]]",
) -> "dict[int, PackedUnit]":
    """Run each pending task's clean pass once and pack its cache.

    Builds (and immediately closes) a parent-side runner per task purely
    to populate its :class:`~repro.core.suffix.SuffixForwardEngine`;
    the exported :class:`~repro.core.suffix.SharedSuffixCache` ships in
    the same tensor plane as the weights, so every worker attaches the
    activations read-only instead of recomputing them — one clean pass
    per host per task.  Tasks whose engine declines to build (suffix
    disabled, unsupported model, empty scope) simply publish nothing and
    workers fall back to their own clean pass, which is bit-identical.
    Runner lifecycle is parent-safe by contract: every runner's
    ``close()`` restores the live model exactly (undoes int8
    deployment, removes hooks), and construction failures unwind their
    own partial side effects before propagating — a task whose runner
    cannot be built here could not be run serially or in a worker
    either, so the error surfaces now rather than after the fan-out.
    """
    from repro.core.suffix import suffix_globally_disabled

    caches: "dict[int, PackedUnit]" = {}
    if suffix_globally_disabled():
        return caches
    for index, task in enumerate(tasks):
        if not pending[index]:
            continue
        runner = task.make_runner()
        try:
            engine = getattr(runner, "engine", None)
            cache = engine.export_cache() if engine is not None else None
        finally:
            runner.close()
        if cache is not None:
            # The cache's clean logits double as the task's clean
            # accuracy (bit-identical argmax), sparing build_result a
            # second full forward over the evaluation set.
            absorb = getattr(task, "absorb_clean_logits", None)
            if absorb is not None:
                absorb(cache.clean_logits)
            caches[index] = pack_object(cache)
    return caches


class _Checkpoint:
    """A JSON record of completed cells, validated against the sweep.

    The file stores a fingerprint per task — its kind, config grid
    (seed, trials, fault rates) and a CRC of its pickled content — so a
    checkpoint can never silently resume a *different* sweep (different
    campaign type, model, mitigation variant, sampler or evaluation
    set).  Single-task sweeps keep the historical flat layout with cells
    keyed ``rate/trial``; cross-campaign sweeps nest per-task
    fingerprints and key cells ``task/rate/trial``.
    """

    def __init__(
        self,
        path: "str | Path",
        tasks: Sequence[CampaignCellTask],
        crcs: Sequence["str | None"],
        extra: "dict | None" = None,
    ):
        self.path = Path(path)
        self._single = len(tasks) == 1

        def task_fingerprint(task: CampaignCellTask, crc: "str | None") -> dict:
            return {
                "kind": task.kind,
                "seed": int(task.config.seed),
                "trials": int(task.config.trials),
                "batch_size": int(task.config.batch_size),
                "fault_rates": [float(r) for r in task.config.fault_rates],
                "campaign_crc": crc,
            }

        if self._single:
            self._fingerprint = {
                "version": _CHECKPOINT_VERSION,
                **task_fingerprint(tasks[0], crcs[0]),
            }
        else:
            self._fingerprint = {
                "version": _CHECKPOINT_VERSION,
                "campaigns": [
                    task_fingerprint(task, crc) for task, crc in zip(tasks, crcs)
                ],
            }
        if extra:
            # Caller-supplied identity (e.g. a shard's index/count and the
            # suite hash) joins the fingerprint: a checkpoint written as
            # shard i/N can never resume as j/N or i/M.
            collisions = set(extra) & set(self._fingerprint)
            if collisions:
                raise ValueError(
                    f"checkpoint extra keys collide with the fingerprint: "
                    f"{sorted(collisions)}"
                )
            self._fingerprint.update(json.loads(json.dumps(extra)))
        self.cells: "dict[tuple[int, int, int], float | list[float]]" = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        payload = json.loads(self.path.read_text())
        stored = {key: payload.get(key) for key in self._fingerprint}
        if stored != self._fingerprint:
            raise ValueError(
                f"checkpoint {self.path} was written by a different campaign "
                f"type or configuration; delete it or use a fresh path "
                f"(stored {stored}, expected {self._fingerprint})"
            )
        for key, value in payload.get("cells", {}).items():
            parts = [int(part) for part in key.split("/")]
            if len(parts) == 2:  # single-task layout: rate/trial
                parts = [0, *parts]
            task_index, rate_index, trial = parts
            self.cells[(task_index, rate_index, trial)] = value

    def record(
        self, task_index: int, rate_index: int, trial: int, value
    ) -> None:
        if np.ndim(value) == 0:
            stored: "float | list[float]" = float(value)
        else:
            stored = [float(v) for v in np.asarray(value).reshape(-1)]
        self.cells[(task_index, rate_index, trial)] = stored

    def flush(self) -> None:
        """Atomically rewrite the checkpoint file."""
        payload = dict(self._fingerprint)
        payload["cells"] = {
            (
                f"{rate_index}/{trial}"
                if self._single
                else f"{task_index}/{rate_index}/{trial}"
            ): value
            for (task_index, rate_index, trial), value in sorted(self.cells.items())
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1))
        os.replace(tmp, self.path)


# --------------------------------------------------------------------- #
# the executor
# --------------------------------------------------------------------- #


class CampaignExecutor:
    """Runs one or more campaigns' (rates x trials) grids, serially or in parallel.

    Parameters
    ----------
    workers:
        ``1`` (default) runs in-process over the caller's live objects —
        the historical serial path.  ``N > 1`` fans cells across ``N``
        worker processes.  ``0`` means one worker per CPU core.
    chunk_size:
        Cells per dispatched task; ``0`` picks roughly four chunks per
        worker.  Larger chunks amortize dispatch overhead, smaller chunks
        stream progress sooner and balance load better.
    progress:
        Optional callback receiving a :class:`CellResult` per completed
        cell (checkpointed cells are replayed with
        ``from_checkpoint=True`` at the start of a resumed run).
    checkpoint:
        Optional JSON file path.  Completed cells are appended as they
        finish; re-running with the same configuration skips them.
    checkpoint_extra:
        Optional JSON-serializable mapping merged into the checkpoint
        fingerprint.  Callers that scope a checkpoint to an execution
        identity beyond the campaign content — e.g. a shard's
        ``{"shard": {"index", "count", "suite_hash"}}`` — record it here
        so a checkpoint written under one identity refuses to resume
        under another.  Keys must not collide with the built-in
        fingerprint fields.
    mp_context:
        Optional :mod:`multiprocessing` start-method name (``"fork"``,
        ``"spawn"``, ``"forkserver"``); default lets the platform choose.
    persistent:
        Keep the worker pool alive between :meth:`run_tasks` calls (a
        *warm pool*).  Repeated sweeps — Algorithm 1's per-iteration
        boundary batches — then skip pool construction and worker
        start-up entirely; each sweep ships its payload through a fresh
        shared-memory generation.  Call :meth:`close` (or use the
        executor as a context manager) when done.  Trade-off: a worker
        releases its previous runner (model copy plus any suffix
        activation cache) when it first touches a *newer* generation,
        so workers idle between sweeps retain the last sweep's state
        until the next sweep or :meth:`close` — size
        ``REPRO_SUFFIX_BUDGET_MB`` accordingly on wide warm pools.
    max_retries / cell_timeout / on_cell_error:
        Shorthand for the matching :class:`SupervisionPolicy` fields;
        unset knobs resolve through the ``REPRO_MAX_RETRIES`` /
        ``REPRO_CELL_TIMEOUT`` / ``REPRO_ON_CELL_ERROR`` environment and
        fall back to the policy defaults (2 retries, no timeout, abort).
    supervision:
        A complete :class:`SupervisionPolicy` (mutually exclusive with
        the shorthand knobs) for callers that also tune the backoff or
        the pool-rebuild budget.
    recorder:
        Optional :class:`CellRecorder` receiving every completed cell
        (``cell``) and every quarantined cell's failure record
        (``failure``) — the hook behind the append-only per-cell
        result store (``repro.results``, ``docs/RESULTS.md``).

    After each :meth:`run_grids` pass, :attr:`quarantined` holds one
    record per cell that exhausted its retries (schema:
    :data:`FAILED_CELL_FIELDS`); quarantined cells stay ``nan`` in the
    value grids and are *not* checkpointed, so a resumed run retries
    them.  See ``docs/FAULT_TOLERANCE.md``.
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: int = 0,
        progress: "ProgressCallback | None" = None,
        checkpoint: "str | Path | None" = None,
        mp_context: "str | None" = None,
        persistent: bool = False,
        checkpoint_extra: "dict | None" = None,
        max_retries: "int | None" = None,
        cell_timeout: "float | None" = None,
        on_cell_error: "str | None" = None,
        supervision: "SupervisionPolicy | None" = None,
        recorder: "CellRecorder | None" = None,
    ):
        self.workers = resolve_workers(workers)
        self.recorder = recorder
        if chunk_size < 0:
            raise ValueError(f"chunk_size must be >= 0 (0 = auto), got {chunk_size}")
        self.chunk_size = int(chunk_size)
        self.progress = progress
        self.checkpoint_path = checkpoint
        self.checkpoint_extra = dict(checkpoint_extra) if checkpoint_extra else None
        self.mp_context = mp_context
        self.persistent = bool(persistent)
        if supervision is not None and (
            max_retries is not None
            or cell_timeout is not None
            or on_cell_error is not None
        ):
            raise ValueError(
                "pass either a SupervisionPolicy or the individual "
                "max_retries/cell_timeout/on_cell_error knobs, not both"
            )
        self.supervision = (
            supervision
            if supervision is not None
            else SupervisionPolicy.from_env(
                max_retries=max_retries,
                cell_timeout=cell_timeout,
                on_cell_error=on_cell_error,
            )
        )
        # Failure records of the most recent run_grids pass, one dict
        # per quarantined cell (schema: FAILED_CELL_FIELDS).
        self.quarantined: "list[dict]" = []
        self._pool: "ProcessPoolExecutor | None" = None

    def close(self) -> None:
        """Shut down the warm pool, if one is alive (idempotent)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown()

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def reconfigure(
        self,
        progress: "ProgressCallback | None" = None,
        checkpoint: "str | Path | None" = None,
        checkpoint_extra: "dict | None" = None,
        recorder: "CellRecorder | None" = None,
    ) -> "CampaignExecutor":
        """Repoint the per-run hooks of a long-lived executor.

        A persistent executor (``persistent=True``) keeps its warm
        worker pool across ``run_tasks`` passes; the progress callback,
        checkpoint file and cell recorder, by contrast, belong to one
        run.  Callers that reuse an executor across runs (the service's
        slot workers) swap them here between passes — ``run_grids``
        reads all four freshly on every call, so no pool restart is
        involved.  Returns ``self`` for chaining.
        """
        self.progress = progress
        self.checkpoint_path = checkpoint
        self.checkpoint_extra = dict(checkpoint_extra) if checkpoint_extra else None
        self.recorder = recorder
        return self

    # ------------------------------------------------------------------ #

    def run(
        self,
        campaign: "FaultInjectionCampaign",
        sampler: "FaultSampler | None" = None,
        label: str = "",
        suffix: bool = True,
        batch_k: int = 0,
    ) -> ResilienceCurve:
        """Execute one weight-fault campaign's sweep and build its curve."""
        task = WeightFaultCellTask(
            campaign.model,
            campaign.memory,
            campaign.images,
            campaign.labels,
            config=campaign.config,
            sampler=sampler,
            label=label,
            clean_accuracy=campaign.clean_accuracy,
            suffix=suffix,
            batch_k=batch_k,
        )
        return self.run_tasks([task])[0]

    def run_tasks(
        self,
        tasks: Sequence[CampaignCellTask],
        payloads: "Sequence[PackedUnit | bytes | None] | None" = None,
    ) -> list[Any]:
        """Execute several campaigns' cells through one scheduling pass.

        With ``workers > 1`` every task's pending cells share a single
        worker pool (the cross-campaign fan-out); with ``workers=1`` the
        tasks run back-to-back in task order, rate-major — exactly the
        historical sequential loops.  Either way each task's result is
        bit-identical, and the returned list is parallel to ``tasks``.

        ``payloads`` optionally supplies a pre-serialized form per task
        (parallel to ``tasks``; ``None`` entries are packed here).  A
        caller that already serialized a task to snapshot it — e.g.
        :meth:`~repro.core.finetune.LayerAUCEvaluator.evaluate_many` —
        passes the same :class:`~repro.utils.shm.PackedUnit` (preferred:
        its tensors ship zero-copy) or legacy ``pickle.dumps`` bytes
        instead of paying a second serialization of the model; the entry
        must describe an object equivalent to the corresponding task.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        rates_list, grids = self.run_grids(tasks, payloads=payloads)
        return [
            task.build_result(rates_list[index], grids[index])
            for index, task in enumerate(tasks)
        ]

    def run_grids(
        self,
        tasks: Sequence[CampaignCellTask],
        payloads: "Sequence[PackedUnit | bytes | None] | None" = None,
        cells: "Sequence[Sequence[tuple[int, int]]] | None" = None,
    ) -> "tuple[list[np.ndarray], list[np.ndarray]]":
        """Execute (a subset of) each task's cells; return raw value grids.

        The engine behind :meth:`run_tasks`, for callers that assemble
        results themselves — shard runs execute disjoint cell subsets on
        independent hosts and merge the grids later.  Returns
        ``(rates, grids)``, both parallel to ``tasks``; each grid is the
        task's ``(n_rates, n_trials[, cell_width])`` float64 array with
        executed cells filled in and everything else ``nan``.

        ``cells`` optionally restricts execution to a per-task subset of
        ``(rate_index, trial)`` cells (parallel to ``tasks``).  Subset
        cells run in the serial enumeration order (rate-major), with the
        same per-cell seed paths as a full run — a cell's value is
        bit-identical no matter which subset, host or worker evaluates
        it.  Checkpointed cells outside the subset are ignored, and
        progress totals count only the subset.
        """
        tasks = list(tasks)
        self.quarantined = []
        if not tasks:
            return [], []
        if payloads is not None and len(payloads) != len(tasks):
            raise ValueError(
                f"payloads ({len(payloads)}) must parallel tasks ({len(tasks)})"
            )

        rates_list: list[np.ndarray] = []
        grids: list[np.ndarray] = []
        for task in tasks:
            rates = np.asarray(task.config.fault_rates, dtype=np.float64)
            width = int(getattr(task, "cell_width", 1))
            shape: "tuple[int, ...]" = (rates.size, task.config.trials)
            if width != 1:
                shape = (*shape, width)
            rates_list.append(rates)
            grids.append(np.full(shape, np.nan, dtype=np.float64))
        subset = self._resolve_cells(tasks, grids, cells)
        total = (
            sum(len(chosen) for chosen in subset)
            if subset is not None
            else sum(grid.shape[0] * grid.shape[1] for grid in grids)
        )

        # One serialization per task serves both the checkpoint
        # fingerprint and the worker payload; pre-packed payloads are
        # reused verbatim, so those tasks are never serialized here.
        # Legacy raw-bytes payloads become buffer-less units (correct,
        # just not zero-copy).
        units: "list[PackedUnit | None]" = [None] * len(tasks)
        if payloads is not None:
            for index, payload in enumerate(payloads):
                if isinstance(payload, PackedUnit):
                    units[index] = payload
                elif payload is not None:
                    units[index] = PackedUnit(payload, ())
        errors: "list[Exception | None]" = [None] * len(tasks)
        if self.checkpoint_path is not None or self.workers > 1:
            for index, task in enumerate(tasks):
                if units[index] is None:
                    units[index], errors[index] = _pack_task(task)

        checkpoint = None
        if self.checkpoint_path is not None:
            if any(unit is None for unit in units):
                first_error = next(e for e in errors if e is not None)
                warnings.warn(
                    "campaign state is not picklable; the checkpoint can "
                    "validate only the config grid, not the model/sampler/"
                    "eval set — resuming against different campaign content "
                    f"would go undetected ({first_error})",
                    RuntimeWarning,
                    stacklevel=2,
                )
            crcs = [
                f"{unit.crc32():08x}" if unit is not None else None
                for unit in units
            ]
            checkpoint = _Checkpoint(
                self.checkpoint_path, tasks, crcs, extra=self.checkpoint_extra
            )

        subset_sets = (
            None if subset is None else [set(chosen) for chosen in subset]
        )
        completed = 0
        if checkpoint is not None:
            for (task_index, rate_index, trial), value in sorted(
                checkpoint.cells.items()
            ):
                if (
                    task_index < len(tasks)
                    and rate_index < grids[task_index].shape[0]
                    and trial < grids[task_index].shape[1]
                    and (
                        subset_sets is None
                        or (rate_index, trial) in subset_sets[task_index]
                    )
                ):
                    grids[task_index][rate_index, trial] = value
                    completed += 1
                    self._emit(
                        tasks[task_index], task_index, rate_index, trial,
                        rates_list[task_index], grids[task_index][rate_index, trial],
                        completed, total, from_checkpoint=True,
                    )

        if subset is None:
            pending = [
                [
                    (rate_index, trial)
                    for rate_index in range(grid.shape[0])
                    for trial in range(grid.shape[1])
                    if not np.all(np.isfinite(grid[rate_index, trial]))
                ]
                for grid in grids
            ]
        else:
            pending = [
                [
                    (rate_index, trial)
                    for rate_index, trial in chosen
                    if not np.all(np.isfinite(grids[index][rate_index, trial]))
                ]
                for index, chosen in enumerate(subset)
            ]

        if any(pending):
            try:
                self._run_pending(
                    tasks, units, errors, pending, rates_list, grids,
                    completed, total, checkpoint,
                )
            except BaseException:
                # A KeyboardInterrupt (or any other abort) mid-sweep
                # must not lose cells already recorded but not yet
                # flushed: persist the checkpoint before re-raising, so
                # Ctrl-C loses at most the in-flight window.
                if checkpoint is not None:
                    checkpoint.flush()
                raise

        return rates_list, grids

    def _run_pending(
        self,
        tasks: Sequence[CampaignCellTask],
        units: "list[PackedUnit | None]",
        errors: "list[Exception | None]",
        pending: "list[list[tuple[int, int]]]",
        rates_list: list[np.ndarray],
        grids: list[np.ndarray],
        completed: int,
        total: int,
        checkpoint: "_Checkpoint | None",
    ) -> None:
        """Dispatch the pending cells serially or across the pool."""
        if self.workers == 1:
            self._run_serial(
                tasks, pending, rates_list, grids, completed, total, checkpoint
            )
            return
        for task, unit, error in zip(tasks, units, errors):
            if unit is None:
                raise ValueError(
                    f"campaign state of {task.label or task.kind!r} must "
                    "be picklable for workers > 1; use a picklable "
                    "sampler (e.g. random_bitflip_sampler(), "
                    "ecc_sampler()) instead of a lambda/closure, or "
                    f"run with workers=1 ({error})"
                ) from error
        # One clean pass per host: publish each task's suffix
        # activation cache alongside its weights (skipped on the
        # inline transport, where the cache bytes would be
        # copied into every chunk call instead of mapped once).
        # The writability probe, not mere importability, gates
        # the export so a full /dev/shm doesn't waste one clean
        # forward per task on caches that could never ship.
        from repro.utils.shm import shared_memory_writable

        suffix_units: "dict[int, PackedUnit]" = (
            _export_suffix_caches(tasks, pending)
            if shared_memory_writable()
            else {}
        )
        task_units = [
            (f"task/{index}", unit) for index, unit in enumerate(units)
        ]
        cache_units = [
            (f"suffix/{index}", unit)
            for index, unit in sorted(suffix_units.items())
        ]
        shipment = ship_units(task_units + cache_units)
        if cache_units and not shipment.ref.via_shared_memory:
            # Segment creation failed at runtime (e.g. /dev/shm
            # full): the inline transport re-pickles the plane
            # into every chunk call, so carrying the activation
            # caches there would multiply the copy cost the
            # publication exists to avoid.  Re-ship tasks only;
            # workers rebuild their clean passes locally.
            shipment.release()
            shipment = ship_units(task_units)
        # The segment (or the inline ref) now owns the only
        # payload copy; drop the per-task units so a large
        # multi-model sweep doesn't hold the streams twice.
        del task_units, cache_units, suffix_units
        units.clear()
        try:
            self._run_parallel(
                tasks, shipment.ref, pending, rates_list,
                grids, completed, total, checkpoint,
            )
        finally:
            shipment.release()

    # ------------------------------------------------------------------ #

    @staticmethod
    def _resolve_cells(
        tasks: Sequence[CampaignCellTask],
        grids: list[np.ndarray],
        cells: "Sequence[Sequence[tuple[int, int]]] | None",
    ) -> "list[list[tuple[int, int]]] | None":
        """Validate and canonicalize a per-task cell subset.

        Each task's subset is deduplicated-checked, bounds-checked
        against its grid, and sorted into the serial enumeration order
        (rate-major), so a subset run visits its cells in the same
        relative order as the full run.
        """
        if cells is None:
            return None
        cells = list(cells)
        if len(cells) != len(tasks):
            raise ValueError(
                f"cells ({len(cells)}) must parallel tasks ({len(tasks)})"
            )
        subset: "list[list[tuple[int, int]]]" = []
        for task, grid, wanted in zip(tasks, grids, cells):
            name = task.label or task.kind
            chosen: "set[tuple[int, int]]" = set()
            for rate_index, trial in wanted:
                cell = (int(rate_index), int(trial))
                if not (
                    0 <= cell[0] < grid.shape[0] and 0 <= cell[1] < grid.shape[1]
                ):
                    raise ValueError(
                        f"cell {cell} lies outside the "
                        f"{grid.shape[0]}x{grid.shape[1]} grid of task {name!r}"
                    )
                if cell in chosen:
                    raise ValueError(f"duplicate cell {cell} for task {name!r}")
                chosen.add(cell)
            subset.append(sorted(chosen))
        return subset

    def _emit(
        self,
        task: CampaignCellTask,
        task_index: int,
        rate_index: int,
        trial: int,
        rates: np.ndarray,
        value,
        completed: int,
        total: int,
        from_checkpoint: bool = False,
        failed: bool = False,
    ) -> None:
        if self.progress is None and self.recorder is None:
            return
        scalars = np.atleast_1d(np.asarray(value, dtype=np.float64))
        result = CellResult(
            rate_index=rate_index,
            trial=trial,
            fault_rate=float(rates[rate_index]),
            accuracy=float(scalars[0]),
            completed=completed,
            total=total,
            from_checkpoint=from_checkpoint,
            campaign_index=task_index,
            campaign_label=task.label,
            values=(
                tuple(float(v) for v in scalars) if scalars.size > 1 else None
            ),
            failed=failed,
        )
        if self.recorder is not None:
            self.recorder.cell(result)
        if self.progress is not None:
            self.progress(result)

    def _quarantine(
        self,
        task: CampaignCellTask,
        task_index: int,
        rate_index: int,
        trial: int,
        rates: np.ndarray,
        completed: int,
        total: int,
        reason: str,
        attempts: int,
        error: "BaseException | None",
    ) -> None:
        """Record one cell as a ``failed`` outcome instead of aborting.

        The cell's grid entry stays NaN (so a checkpoint resume retries
        it), a :data:`FAILED_CELL_FIELDS` record lands on
        ``self.quarantined`` for results/summary surfacing, and the
        progress stream sees a ``failed=True`` :class:`CellResult`.
        """
        self.quarantined.append(
            {
                "task": task.label or task.kind,
                "task_index": int(task_index),
                "rate_index": int(rate_index),
                "trial": int(trial),
                "reason": reason,
                "attempts": int(attempts),
                "error": "" if error is None else f"{type(error).__name__}: {error}",
            }
        )
        if self.recorder is not None:
            self.recorder.failure(self.quarantined[-1])
        self._emit(
            task, task_index, rate_index, trial, rates,
            float("nan"), completed, total, failed=True,
        )

    def _run_serial(
        self,
        tasks: Sequence[CampaignCellTask],
        pending: "list[list[tuple[int, int]]]",
        rates_list: list[np.ndarray],
        grids: list[np.ndarray],
        completed: int,
        total: int,
        checkpoint: "_Checkpoint | None",
    ) -> None:
        """The in-process loops: task-major, rate-major, supervised."""
        chaos = ChaosPolicy.from_env()
        for task_index, task in enumerate(tasks):
            if not pending[task_index]:
                continue
            runner = task.make_runner()
            try:
                completed = self._run_serial_task(
                    runner, task, task_index, pending[task_index],
                    rates_list, grids, completed, total, checkpoint, chaos,
                )
            finally:
                runner.close()

    def _run_serial_task(
        self,
        runner: CellRunner,
        task: CampaignCellTask,
        task_index: int,
        cells: "Sequence[tuple[int, int]]",
        rates_list: list[np.ndarray],
        grids: list[np.ndarray],
        completed: int,
        total: int,
        checkpoint: "_Checkpoint | None",
        chaos: "ChaosPolicy | None",
    ) -> int:
        """Evaluate one task's cells in-process under supervision.

        Cell exceptions follow ``self.supervision.on_cell_error``:
        ``abort`` re-raises (the historical behaviour), ``retry``
        re-evaluates up to ``max_retries`` times with deterministic
        backoff before quarantining, ``quarantine`` gives up on the
        first failure.  Worker death cannot happen here (the "worker"
        is this process), so chaos ``kill`` decisions are skipped by
        :meth:`ChaosPolicy.disturb` via ``in_process=True``.  Returns
        the updated completed-cell count.
        """
        policy = self.supervision
        group = max(1, int(getattr(runner, "cells_per_call", 1)))
        work: "deque[list[tuple[int, int]]]" = deque(
            [list(cells[start : start + group])
             for start in range(0, len(cells), group)]
        )
        dispatches: "dict[tuple[int, int], int]" = {}
        failures: "dict[tuple[int, int], int]" = {}
        while work:
            chunk = work.popleft()
            attempts = [dispatches.get(cell, 0) for cell in chunk]
            for cell in chunk:
                dispatches[cell] = dispatches.get(cell, 0) + 1
            try:
                if chaos is not None:
                    chaos.disturb(task_index, chunk, attempts, in_process=True)
                if len(chunk) > 1 and group > 1:
                    values = list(runner.run_cells(chunk))
                else:
                    values = [
                        runner.run_cell(rate_index, trial)
                        for rate_index, trial in chunk
                    ]
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                if policy.on_cell_error == "abort":
                    raise
                if len(chunk) > 1:
                    # The failure blames the whole group; probe the
                    # cells one at a time to isolate the culprit.
                    work.extendleft([cell] for cell in reversed(chunk))
                    continue
                cell = chunk[0]
                failures[cell] = failures.get(cell, 0) + 1
                if (
                    policy.on_cell_error == "quarantine"
                    or failures[cell] > policy.max_retries
                ):
                    completed += 1
                    self._quarantine(
                        task, task_index, cell[0], cell[1],
                        rates_list[task_index], completed, total,
                        "exception", dispatches[cell], error,
                    )
                else:
                    time.sleep(policy.backoff_seconds(failures[cell]))
                    work.appendleft([cell])
                continue
            for (rate_index, trial), value in zip(chunk, values):
                grids[task_index][rate_index, trial] = value
                completed += 1
                if checkpoint is not None:
                    checkpoint.record(task_index, rate_index, trial, value)
                self._emit(
                    task, task_index, rate_index, trial,
                    rates_list[task_index],
                    grids[task_index][rate_index, trial], completed, total,
                )
                if checkpoint is not None:
                    checkpoint.flush()
        return completed

    def _run_parallel(
        self,
        tasks: Sequence[CampaignCellTask],
        payload: ShippedPlane,
        pending: "list[list[tuple[int, int]]]",
        rates_list: list[np.ndarray],
        grids: list[np.ndarray],
        completed: int,
        total: int,
        checkpoint: "_Checkpoint | None",
    ) -> None:
        """Fan every task's pending cells over one supervised pool.

        A persistent executor reuses its warm pool across calls; the
        plane address then travels with each chunk under a fresh
        generation id (workers re-attach once per generation).  A
        one-shot executor builds a right-sized pool and tears it down
        afterwards.

        Supervision on top of the historical fan-out:

        * **Worker death** (``BrokenProcessPool``) discards the broken
          pool, harvests any chunks that still finished, rebuilds a
          fresh pool, issues a fresh generation id against the *same*
          shipment (the parent owns the segment, so re-shipping is an
          id bump — workers re-attach on first touch), and re-dispatches
          only the chunks that were in flight.  Suspect cells re-enter
          through a *probe lane* where they run strictly alone, so the
          next death is attributable to one cell.
        * **Per-cell timeouts** (``policy.cell_timeout``) give each
          in-flight chunk a wall-clock deadline; an expired chunk's
          workers are killed with the pool (a running cell cannot be
          cancelled remotely) and its cells are retried or quarantined.
        * **Cell exceptions** follow ``policy.on_cell_error`` exactly as
          in the serial loop; multi-cell chunks are first split into
          singletons so the blame lands on one cell.
        * After ``policy.max_pool_rebuilds`` consecutive pool losses the
          executor **degrades to serial in-process execution** for the
          remaining cells instead of thrashing.

        Because cells are pure functions of ``(seed, rate, trial)``,
        every recovery path yields bit-identical grids.
        """
        policy = self.supervision
        n_pending = sum(len(cells) for cells in pending)
        workers = (
            self.workers if self.persistent else min(self.workers, n_pending)
        )
        chunk_size = self.chunk_size or max(1, n_pending // (workers * 4))
        if not payload.via_shared_memory:
            # Inline transport re-pickles the whole payload into every
            # chunk's call item; coarsen to about one chunk per worker so
            # the copy count matches the old initializer-based shipping.
            chunk_size = max(chunk_size, -(-n_pending // workers))
        normal: "deque[tuple[int, list[tuple[int, int]]]]" = deque()
        for task_index, cells in enumerate(pending):
            for start in range(0, len(cells), chunk_size):
                normal.append((task_index, list(cells[start : start + chunk_size])))
        probe: "deque[tuple[int, list[tuple[int, int]]]]" = deque()
        dispatches: "dict[tuple[int, int, int], int]" = {}
        failures: "dict[tuple[int, int, int], int]" = {}
        in_flight: "dict[Any, tuple[int, list[tuple[int, int]], float | None, bool]]" = {}
        rebuilds = 0
        backoff = 0.0
        degrade = False

        generation = (os.getpid(), next(_GENERATION))
        pool = self._acquire_pool(workers)

        def submit_chunk(
            task_index: int, cells: "list[tuple[int, int]]", probed: bool
        ) -> None:
            shipped = [
                (rate_index, trial,
                 dispatches.get((task_index, rate_index, trial), 0))
                for rate_index, trial in cells
            ]
            future = pool.submit(
                _run_task_cells, payload, generation, task_index, shipped
            )
            for rate_index, trial in cells:
                key = (task_index, rate_index, trial)
                dispatches[key] = dispatches.get(key, 0) + 1
            deadline = (
                time.monotonic() + policy.cell_timeout * len(cells)
                if policy.cell_timeout is not None
                else None
            )
            in_flight[future] = (task_index, list(cells), deadline, probed)

        def harvest(results) -> None:
            nonlocal completed
            for task_index, rate_index, trial, value in results:
                grids[task_index][rate_index, trial] = value
                completed += 1
                if checkpoint is not None:
                    checkpoint.record(task_index, rate_index, trial, value)
                self._emit(
                    tasks[task_index], task_index, rate_index, trial,
                    rates_list[task_index],
                    grids[task_index][rate_index, trial],
                    completed, total,
                )
            if checkpoint is not None:
                checkpoint.flush()

        def give_up(
            task_index: int,
            cell: "tuple[int, int]",
            reason: str,
            error: "BaseException | None",
        ) -> None:
            nonlocal completed
            completed += 1
            self._quarantine(
                tasks[task_index], task_index, cell[0], cell[1],
                rates_list[task_index], completed, total,
                reason, dispatches.get((task_index, *cell), 0), error,
            )

        def settle_failure(
            task_index: int,
            cells: "list[tuple[int, int]]",
            reason: str,
            error: BaseException,
            blamed: bool,
        ) -> None:
            nonlocal backoff
            if reason == "exception" and policy.on_cell_error == "abort":
                raise error
            if not blamed or len(cells) != 1:
                # The blame cannot land on one cell: split into
                # singletons.  Death suspects go through the probe lane
                # (strictly alone in flight, so the next death convicts
                # exactly one cell); everything else requeues normally.
                lane = probe if reason == "worker-death" else normal
                for cell in cells:
                    lane.append((task_index, [cell]))
                return
            cell = cells[0]
            key = (task_index, *cell)
            failures[key] = failures.get(key, 0) + 1
            if reason == "exception":
                if (
                    policy.on_cell_error == "quarantine"
                    or failures[key] > policy.max_retries
                ):
                    give_up(task_index, cell, reason, error)
                else:
                    backoff = max(backoff, policy.backoff_seconds(failures[key]))
                    normal.append((task_index, [cell]))
                return
            # Infrastructure faults (timeout, worker-death) are retried
            # regardless of on_cell_error; the policy only decides what
            # happens once the retry budget is spent.
            if failures[key] > policy.max_retries:
                if policy.on_cell_error == "abort":
                    raise error
                give_up(task_index, cell, reason, error)
                return
            backoff = max(backoff, policy.backoff_seconds(failures[key]))
            lane = probe if reason == "worker-death" else normal
            lane.append((task_index, [cell]))

        def breakdown(error: BaseException) -> None:
            nonlocal pool, generation, rebuilds, degrade
            survivors = list(in_flight.items())
            in_flight.clear()
            self._discard_pool(pool)
            for future, (task_index, cells, _deadline, probed) in survivors:
                if not future.done() or future.cancelled():
                    settle_failure(
                        task_index, cells, "worker-death", error, blamed=probed
                    )
                    continue
                exc = future.exception()
                if exc is None:
                    harvest(future.result())
                elif isinstance(exc, BrokenExecutor):
                    settle_failure(
                        task_index, cells, "worker-death", error, blamed=probed
                    )
                else:
                    settle_failure(
                        task_index, cells, "exception", exc,
                        blamed=len(cells) == 1,
                    )
            rebuilds += 1
            if rebuilds > policy.max_pool_rebuilds:
                degrade = True
                return
            # Fresh generation against the SAME shipment: the parent
            # owns the segment, so "re-shipping" the plane is an id
            # bump — rebuilt workers re-attach on their first chunk.
            generation = (os.getpid(), next(_GENERATION))
            pool = self._acquire_pool(workers)

        try:
            while normal or probe or in_flight:
                if degrade:
                    break
                try:
                    if probe:
                        if not in_flight:
                            task_index, cells = probe[0]
                            submit_chunk(task_index, cells, probed=True)
                            probe.popleft()
                    else:
                        while normal and len(in_flight) < 2 * workers:
                            task_index, cells = normal[0]
                            submit_chunk(task_index, cells, probed=False)
                            normal.popleft()
                except BrokenExecutor as error:
                    breakdown(error)
                    continue
                if backoff:
                    time.sleep(backoff)
                    backoff = 0.0
                if not in_flight:
                    continue
                deadlines = [
                    entry[2]
                    for entry in in_flight.values()
                    if entry[2] is not None
                ]
                timeout = (
                    max(0.0, min(deadlines) - time.monotonic())
                    if deadlines
                    else None
                )
                done, _ = wait(
                    set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                broken: "BaseException | None" = None
                for future in done:
                    task_index, cells, _deadline, probed = in_flight.pop(future)
                    try:
                        harvest(future.result())
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BrokenExecutor as error:
                        broken = error
                        settle_failure(
                            task_index, cells, "worker-death", error,
                            blamed=probed,
                        )
                    except Exception as error:
                        settle_failure(
                            task_index, cells, "exception", error,
                            blamed=len(cells) == 1,
                        )
                now = time.monotonic()
                expired = [
                    future
                    for future, entry in in_flight.items()
                    if entry[2] is not None
                    and entry[2] <= now
                    and not future.done()
                ]
                for future in expired:
                    task_index, cells, _deadline, probed = in_flight.pop(future)
                    future.cancel()
                    error = CellTimeoutError(
                        f"chunk of {len(cells)} cell(s) of task {task_index} "
                        f"exceeded its {policy.cell_timeout:g}s-per-cell "
                        "wall-clock budget"
                    )
                    # A running cell cannot be cancelled remotely; the
                    # stuck worker goes down with the pool below.
                    broken = broken or error
                    settle_failure(
                        task_index, cells, "timeout", error,
                        blamed=len(cells) == 1,
                    )
                if broken is not None:
                    breakdown(broken)
        finally:
            if not self.persistent:
                pool.shutdown(cancel_futures=True)

        if degrade:
            warnings.warn(
                f"process pool broke {rebuilds} times "
                f"(max_pool_rebuilds={policy.max_pool_rebuilds}); degrading "
                "to serial in-process execution for the remaining cells",
                RuntimeWarning,
                stacklevel=2,
            )
            leftovers: "dict[int, set[tuple[int, int]]]" = {}
            for task_index, cells in [*probe, *normal]:
                leftovers.setdefault(task_index, set()).update(
                    (int(rate_index), int(trial)) for rate_index, trial in cells
                )
            for task_index in sorted(leftovers):
                task = tasks[task_index]
                runner = task.make_runner()
                try:
                    # The fallback exists to finish the campaign, so it
                    # runs chaos-free: injected disturbances had their
                    # shot at the pool that just collapsed.
                    completed = self._run_serial_task(
                        runner, task, task_index,
                        sorted(leftovers[task_index]),
                        rates_list, grids, completed, total, checkpoint,
                        chaos=None,
                    )
                finally:
                    runner.close()

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Tear a (possibly broken, possibly stuck) pool down hard.

        Worker processes are SIGKILLed first: a stuck cell would
        otherwise keep ``shutdown(wait=True)`` from returning, and after
        a breakage every in-flight chunk is re-dispatched elsewhere
        anyway.  Killed workers release their shared-memory mappings on
        exit; the parent still owns (and later unlinks) the segments.
        """
        if self._pool is pool:
            self._pool = None
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # pragma: no cover - already-reaped worker
                pass
        pool.shutdown(wait=True, cancel_futures=True)

    def _acquire_pool(self, workers: int) -> ProcessPoolExecutor:
        """The warm pool (created once) or a fresh one-shot pool."""
        import multiprocessing

        if self.persistent and self._pool is not None:
            return self._pool
        context = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context is not None
            else None
        )
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
        )
        if self.persistent:
            self._pool = pool
        return pool
