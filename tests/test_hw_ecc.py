"""Tests for the SEC-DED codec and the campaign-level ECC filter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.hw.ecc import (
    CODE_DATA_BITS,
    CODE_TOTAL_BITS,
    ECCFilter,
    hamming_decode,
    hamming_encode,
)
from repro.hw.faultmodels import OP_STUCK0
from repro.hw.memory import WeightMemory

WORDS = st.integers(0, 2**32 - 1)


class TestHammingCodec:
    def test_clean_word_decodes_clean(self):
        word = 0xDEADBEEF
        check = int(hamming_encode(np.asarray([word], dtype=np.uint32))[0])
        result = hamming_decode(word, check)
        assert result.data == word
        assert not result.corrected
        assert not result.detected_uncorrectable

    @given(WORDS, st.integers(0, 31))
    @settings(max_examples=60, deadline=None)
    def test_single_data_bit_error_corrected(self, word, bad_bit):
        check = int(hamming_encode(np.asarray([word], dtype=np.uint32))[0])
        corrupted = word ^ (1 << bad_bit)
        result = hamming_decode(corrupted, check)
        assert result.corrected
        assert not result.detected_uncorrectable
        assert result.data == word

    @given(WORDS, st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_single_check_bit_error_data_intact(self, word, bad_check_bit):
        check = int(hamming_encode(np.asarray([word], dtype=np.uint32))[0])
        corrupted_check = check ^ (1 << bad_check_bit)
        result = hamming_decode(word, corrupted_check)
        assert result.corrected
        assert result.data == word

    @given(WORDS, st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=60, deadline=None)
    def test_double_data_bit_error_detected(self, word, bit_a, bit_b):
        if bit_a == bit_b:
            return
        check = int(hamming_encode(np.asarray([word], dtype=np.uint32))[0])
        corrupted = word ^ (1 << bit_a) ^ (1 << bit_b)
        result = hamming_decode(corrupted, check)
        assert result.detected_uncorrectable
        assert not result.corrected

    def test_encode_vectorised(self):
        words = np.asarray([0, 1, 0xFFFFFFFF, 0x12345678], dtype=np.uint32)
        checks = hamming_encode(words)
        assert checks.shape == (4,)
        for word, check in zip(words, checks):
            result = hamming_decode(int(word), int(check))
            assert result.data == int(word)


def _memory(words=64):
    return WeightMemory.from_parameters([("p", nn.Parameter(np.zeros(words)))])


class TestECCFilter:
    def test_codeword_space_size(self):
        memory = _memory(10)
        assert ECCFilter().codeword_bits(memory) == 10 * CODE_TOTAL_BITS

    def test_single_fault_per_word_filtered_out(self):
        memory = _memory(10)
        ecc = ECCFilter()
        # One fault in word 0, one in word 3 — both corrected.
        faults = np.asarray([5, 3 * CODE_TOTAL_BITS + 38])
        assert len(ecc.filter(memory, faults)) == 0

    def test_double_fault_zero_policy(self):
        memory = _memory(10)
        ecc = ECCFilter(due_policy="zero")
        faults = np.asarray([2 * CODE_TOTAL_BITS + 1, 2 * CODE_TOTAL_BITS + 7])
        effective = ecc.filter(memory, faults)
        # Zero policy expresses "zero word 2" as stuck-at-0 on all 32 bits.
        assert len(effective) == 32
        assert (effective.operations == OP_STUCK0).all()
        assert (effective.bit_indices // 32 == 2).all()

    def test_double_fault_keep_policy_passes_data_bits(self):
        memory = _memory(10)
        ecc = ECCFilter(due_policy="keep")
        base = 4 * CODE_TOTAL_BITS
        # One data-bit fault + one check-bit fault in the same codeword.
        faults = np.asarray([base + 9, base + CODE_DATA_BITS + 2])
        effective = ecc.filter(memory, faults)
        assert len(effective) == 1
        assert effective.bit_indices[0] == 4 * 32 + 9

    def test_empty_input(self):
        assert len(ECCFilter().filter(_memory(), np.asarray([], dtype=np.int64))) == 0

    def test_out_of_range_rejected(self):
        memory = _memory(2)
        with pytest.raises(IndexError):
            ECCFilter().filter(memory, np.asarray([memory.total_words * CODE_TOTAL_BITS]))

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            ECCFilter(due_policy="explode")

    def test_sample_effective_reduces_faults(self):
        """At sparse rates, almost all faults are singletons -> corrected."""
        memory = _memory(2000)
        ecc = ECCFilter()
        rng = np.random.default_rng(0)
        rate = 1e-4
        effective = ecc.sample_effective(memory, rate, rng)
        raw_expected = memory.total_words * CODE_TOTAL_BITS * rate
        assert len(effective) < raw_expected  # massive reduction

    def test_sample_effective_rate_zero(self):
        assert len(ECCFilter().sample_effective(_memory(), 0.0, np.random.default_rng(0))) == 0
