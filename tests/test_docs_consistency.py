"""Documentation consistency: the docs must reference real artifacts."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


class TestDocsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"]
    )
    def test_file_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 500


class TestBenchmarkIndex:
    def _bench_files(self):
        return {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}

    def test_design_references_real_benchmarks(self):
        text = (ROOT / "DESIGN.md").read_text()
        referenced = set(re.findall(r"benchmarks/(test_\w+\.py)", text))
        assert referenced, "DESIGN.md references no benchmarks"
        missing = referenced - self._bench_files()
        assert not missing, f"DESIGN.md references missing benches: {missing}"

    def test_every_figure_bench_indexed_in_design(self):
        text = (ROOT / "DESIGN.md").read_text()
        for bench in self._bench_files():
            if bench.startswith("test_fig") or bench.startswith("test_headline"):
                assert bench in text, f"{bench} not indexed in DESIGN.md"

    def test_readme_references_real_benchmarks(self):
        text = (ROOT / "README.md").read_text()
        referenced = set(re.findall(r"benchmarks/(test_\w+\.py)", text))
        missing = referenced - self._bench_files()
        assert not missing, f"README references missing benches: {missing}"

    def test_experiments_references_real_result_names(self):
        """EXPERIMENTS.md result names must match what benches record."""
        text = (ROOT / "EXPERIMENTS.md").read_text()
        referenced = set(re.findall(r"results/(\w+)\.txt", text))
        recorded = set()
        for bench in (ROOT / "benchmarks").glob("test_*.py"):
            recorded |= set(re.findall(r'record_result\(\s*"(\w+)"', bench.read_text()))
        missing = referenced - recorded
        assert not missing, f"EXPERIMENTS.md references unrecorded results: {missing}"


class TestExamplesIndexed:
    def test_readme_lists_every_example(self):
        text = (ROOT / "README.md").read_text()
        for example in (ROOT / "examples").glob("*.py"):
            assert example.stem in text, f"{example.name} not mentioned in README"


class TestEnvVarTable:
    """docs/MEMORY_MODEL.md owns the authoritative REPRO_* table.

    Both directions are enforced: every ``REPRO_*`` name used anywhere
    under ``src/`` must have a row in the table, and every row must
    correspond to a name the source actually reads — so the table can
    neither rot nor advertise dead knobs.
    """

    ENV_RE = re.compile(r"\bREPRO_[A-Z0-9_]+\b")

    def _documented(self):
        doc = ROOT / "docs" / "MEMORY_MODEL.md"
        assert doc.exists(), "docs/MEMORY_MODEL.md missing"
        rows = re.findall(r"^\|\s*`(REPRO_[A-Z0-9_]+)`", doc.read_text(), re.M)
        assert rows, "docs/MEMORY_MODEL.md has no REPRO_* table rows"
        return set(rows)

    def _in_source(self):
        names = set()
        for path in (ROOT / "src").rglob("*.py"):
            names |= set(self.ENV_RE.findall(path.read_text()))
        return names

    def test_every_source_env_var_is_documented(self):
        missing = self._in_source() - self._documented()
        assert not missing, (
            f"REPRO_* env vars used in src/ but absent from the "
            f"docs/MEMORY_MODEL.md table: {sorted(missing)}"
        )

    def test_every_documented_env_var_exists_in_source(self):
        stale = self._documented() - self._in_source()
        assert not stale, (
            f"docs/MEMORY_MODEL.md documents REPRO_* env vars no longer "
            f"used in src/: {sorted(stale)}"
        )

    def test_memory_model_is_linked_from_readme_and_design(self):
        for name in ("README.md", "DESIGN.md"):
            text = (ROOT / name).read_text()
            assert "docs/MEMORY_MODEL.md" in text, (
                f"{name} does not link docs/MEMORY_MODEL.md"
            )


class TestScenarioDocs:
    """docs/SCENARIOS.md owns the authoritative scenario-spec reference.

    Mirrors the ``REPRO_*`` table treatment: the spec-schema field
    table, the fault-model sections (names *and* parameter tables) and
    the bundled-spec cookbook are each enforced against the
    implementation in both directions, so the document can neither rot
    nor advertise schema that does not exist.
    """

    DOC = ROOT / "docs" / "SCENARIOS.md"

    def _text(self):
        assert self.DOC.exists(), "docs/SCENARIOS.md missing"
        return self.DOC.read_text()

    def _section(self, title):
        """The body of one ``## title`` section."""
        text = self._text()
        match = re.search(
            rf"^## {re.escape(title)}$(.*?)(?=^## |\Z)", text, re.M | re.S
        )
        assert match, f"docs/SCENARIOS.md has no '## {title}' section"
        return match.group(1)

    def test_schema_table_matches_dataclass(self):
        import dataclasses

        from repro.scenarios import CampaignSpec

        documented = set(
            re.findall(r"^\|\s*`([a-z_]+)`", self._section("Spec schema"), re.M)
        )
        actual = {field.name for field in dataclasses.fields(CampaignSpec)}
        assert documented == actual, (
            f"docs/SCENARIOS.md spec-schema table disagrees with "
            f"CampaignSpec: missing rows {sorted(actual - documented)}, "
            f"stale rows {sorted(documented - actual)}"
        )

    def test_fault_model_sections_match_registry(self):
        from repro.scenarios import FAULT_MODELS

        documented = set(
            re.findall(r"^### `([a-z0-9_]+)`", self._section("Fault models"), re.M)
        )
        actual = set(FAULT_MODELS)
        assert documented == actual, (
            f"docs/SCENARIOS.md fault-model sections disagree with the "
            f"registry: missing {sorted(actual - documented)}, "
            f"stale {sorted(documented - actual)}"
        )

    def test_fault_model_params_documented_both_directions(self):
        from repro.scenarios import FAULT_MODELS

        section = self._section("Fault models")
        chunks = re.split(r"^### `([a-z0-9_]+)`$", section, flags=re.M)
        bodies = dict(zip(chunks[1::2], chunks[2::2]))
        for name, info in FAULT_MODELS.items():
            rows = set(re.findall(r"^\|\s*`([a-z_]+)`", bodies[name], re.M))
            actual = set(info.params)
            assert rows == actual, (
                f"fault model {name!r}: documented parameter rows {sorted(rows)} "
                f"!= registry parameters {sorted(actual)}"
            )

    def test_bundled_cookbook_matches_spec_dir(self):
        from repro.scenarios import bundled_spec_names

        referenced = set(re.findall(r"specs/(\w+)\.yaml", self._text()))
        actual = set(bundled_spec_names())
        assert referenced == actual, (
            f"docs/SCENARIOS.md cookbook disagrees with "
            f"src/repro/scenarios/specs/: missing "
            f"{sorted(actual - referenced)}, stale "
            f"{sorted(referenced - actual)}"
        )

    def test_every_bundled_spec_parses(self):
        from repro.scenarios import bundled_spec_names, load_bundled

        for name in bundled_spec_names():
            assert load_bundled(name).specs

    def test_experiments_md_references_real_specs(self):
        from repro.scenarios import bundled_spec_names

        text = (ROOT / "EXPERIMENTS.md").read_text()
        referenced = set(re.findall(r"specs/(\w+)\.yaml", text))
        missing = referenced - set(bundled_spec_names())
        assert not missing, (
            f"EXPERIMENTS.md references missing scenario specs: {missing}"
        )

    def test_scenarios_doc_is_linked_from_readme(self):
        assert "docs/SCENARIOS.md" in (ROOT / "README.md").read_text()


class TestShardDocs:
    """The "Sharded & segmented runs" section tracks the shard module.

    Both directions, like the schema tables above: every entry of
    ``repro.scenarios.shard.RUN_LAYOUT`` must appear as a row of the
    run-directory table, every table row must name a real layout entry,
    and the CLI surface the section documents (``--shard``, ``merge``)
    must exist on the real parser.
    """

    DOC = ROOT / "docs" / "SCENARIOS.md"

    def _section(self):
        text = self.DOC.read_text()
        match = re.search(
            r"^## Sharded & segmented runs$(.*?)(?=^## |\Z)",
            text,
            re.M | re.S,
        )
        assert match, (
            "docs/SCENARIOS.md has no '## Sharded & segmented runs' section"
        )
        return match.group(1)

    def _documented_layout(self):
        rows = set(
            re.findall(r"^\s*\|\s*`([^`]+)`\s*\|", self._section(), re.M)
        )
        return rows - {"Path"}

    def test_layout_table_matches_run_layout_both_directions(self):
        from repro.scenarios.shard import RUN_LAYOUT

        documented = self._documented_layout()
        actual = set(RUN_LAYOUT)
        assert documented == actual, (
            f"docs/SCENARIOS.md run-layout table disagrees with "
            f"shard.RUN_LAYOUT: missing rows {sorted(actual - documented)}, "
            f"stale rows {sorted(documented - actual)}"
        )

    def test_documented_cli_surface_exists(self):
        from repro.cli import build_parser

        section = self._section()
        assert "--shard" in section and "repro merge" in section

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, __import__("argparse")._SubParsersAction)
        )
        assert "merge" in subparsers.choices
        scenario_opts = {
            option
            for action in subparsers.choices["scenarios"]._actions
            for option in action.option_strings
        }
        assert "--shard" in scenario_opts

    def test_shard_smoke_target_documented_and_wired(self):
        makefile = (ROOT / "Makefile").read_text()
        assert "shard-smoke:" in makefile
        assert "tests/test_shard_smoke.py" in makefile
        assert (ROOT / "tests" / "test_shard_smoke.py").exists()
        assert "shard-smoke" in self._section() or "shard-smoke" in makefile


class TestFaultToleranceDocs:
    """docs/FAULT_TOLERANCE.md owns the supervision/chaos reference.

    Same treatment as the other schema tables: the cell-error-policy,
    failure-reason, failure-outcome and chaos-spec tables are each
    enforced against the implementation registries in both directions,
    and the CLI surface the document describes must exist on the real
    parser.
    """

    DOC = ROOT / "docs" / "FAULT_TOLERANCE.md"

    def _text(self):
        assert self.DOC.exists(), "docs/FAULT_TOLERANCE.md missing"
        return self.DOC.read_text()

    def _section(self, title):
        match = re.search(
            rf"^## {re.escape(title)}$(.*?)(?=^## |\Z)",
            self._text(),
            re.M | re.S,
        )
        assert match, f"docs/FAULT_TOLERANCE.md has no '## {title}' section"
        return match.group(1)

    def _rows(self, title):
        return set(
            re.findall(r"^\|\s*`([a-z_-]+)`", self._section(title), re.M)
        )

    def test_policy_table_matches_choices(self):
        from repro.core.executor import ON_CELL_ERROR_CHOICES

        documented = self._rows("Cell-error policies")
        actual = set(ON_CELL_ERROR_CHOICES)
        assert documented == actual, (
            f"cell-error-policy table: missing {sorted(actual - documented)}, "
            f"stale {sorted(documented - actual)}"
        )

    def test_reason_table_matches_registry(self):
        from repro.core.executor import FAILURE_REASONS

        documented = self._rows("Failure reasons")
        actual = set(FAILURE_REASONS)
        assert documented == actual, (
            f"failure-reason table: missing {sorted(actual - documented)}, "
            f"stale {sorted(documented - actual)}"
        )

    def test_outcome_schema_matches_fields(self):
        from repro.core.executor import FAILED_CELL_FIELDS

        documented = self._rows("Failure-outcome schema")
        actual = set(FAILED_CELL_FIELDS)
        assert documented == actual, (
            f"failure-outcome table: missing {sorted(actual - documented)}, "
            f"stale {sorted(documented - actual)}"
        )

    def test_chaos_spec_table_matches_fields(self):
        from repro.core.chaos import CHAOS_SPEC_FIELDS

        documented = self._rows("Chaos harness")
        actual = set(CHAOS_SPEC_FIELDS)
        assert documented == actual, (
            f"chaos-spec table: missing {sorted(actual - documented)}, "
            f"stale {sorted(documented - actual)}"
        )

    def test_documented_cli_surface_exists(self):
        import argparse

        from repro.cli import build_parser

        text = self._text()
        flags = ("--max-retries", "--cell-timeout", "--on-cell-error", "--chaos")
        for flag in flags:
            assert flag in text, f"docs/FAULT_TOLERANCE.md never mentions {flag}"

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        for command in ("campaign", "scenarios"):
            options = {
                option
                for action in subparsers.choices[command]._actions
                for option in action.option_strings
            }
            missing = set(flags) - options
            assert not missing, f"repro {command} lacks {sorted(missing)}"

    def test_chaos_smoke_target_documented_and_wired(self):
        makefile = (ROOT / "Makefile").read_text()
        assert "chaos-smoke:" in makefile
        assert "tests/test_chaos_smoke.py" in makefile
        assert (ROOT / "tests" / "test_chaos_smoke.py").exists()
        assert "chaos-smoke" in self._text()

    def test_fault_tolerance_doc_is_linked(self):
        for name in ("README.md", "DESIGN.md"):
            text = (ROOT / name).read_text()
            assert "docs/FAULT_TOLERANCE.md" in text, (
                f"{name} does not link docs/FAULT_TOLERANCE.md"
            )


class TestResultsDocs:
    """docs/RESULTS.md owns the per-cell store / report reference.

    Same treatment as the other schema tables: the store-schema table
    (column names *and* kinds), the outcome-class table and the
    report-section table are each enforced against the constants in
    ``repro.results`` in both directions, and the CLI/Makefile surface
    the document describes must exist for real.
    """

    DOC = ROOT / "docs" / "RESULTS.md"

    def _text(self):
        assert self.DOC.exists(), "docs/RESULTS.md missing"
        return self.DOC.read_text()

    def _section(self, title):
        match = re.search(
            rf"^## {re.escape(title)}$(.*?)(?=^## |\Z)",
            self._text(),
            re.M | re.S,
        )
        assert match, f"docs/RESULTS.md has no '## {title}' section"
        return match.group(1)

    def _subsection(self, title):
        match = re.search(
            rf"^### {re.escape(title)}$(.*?)(?=^#{{2,3}} |\Z)",
            self._text(),
            re.M | re.S,
        )
        assert match, f"docs/RESULTS.md has no '### {title}' subsection"
        return match.group(1)

    def test_store_schema_table_matches_cell_columns(self):
        from repro.results import CELL_COLUMNS

        documented = dict(
            re.findall(
                r"^\|\s*`([a-z_]+)`\s*\|\s*(str|int|float)\s*\|",
                self._section("Store schema"),
                re.M,
            )
        )
        actual = {name: kind for name, (kind, _) in CELL_COLUMNS.items()}
        missing = set(actual) - set(documented)
        stale = set(documented) - set(actual)
        assert not missing and not stale, (
            f"docs/RESULTS.md store-schema table disagrees with "
            f"CELL_COLUMNS: missing rows {sorted(missing)}, "
            f"stale rows {sorted(stale)}"
        )
        wrong = {
            name: (documented[name], actual[name])
            for name in actual
            if documented[name] != actual[name]
        }
        assert not wrong, (
            f"docs/RESULTS.md store-schema kinds disagree with "
            f"CELL_COLUMNS (doc, code): {wrong}"
        )

    def test_outcome_table_matches_classes(self):
        from repro.results import OUTCOME_CLASSES

        documented = set(
            re.findall(
                r"^\|\s*`([a-z]+)`", self._subsection("Outcome classes"), re.M
            )
        )
        actual = set(OUTCOME_CLASSES)
        assert documented == actual, (
            f"docs/RESULTS.md outcome-class table disagrees with "
            f"OUTCOME_CLASSES: missing {sorted(actual - documented)}, "
            f"stale {sorted(documented - actual)}"
        )

    def test_section_table_matches_report_sections(self):
        from repro.results import REPORT_SECTIONS

        documented = set(
            re.findall(
                r"^\|\s*`([a-z]+)`", self._section("Report sections"), re.M
            )
        )
        actual = set(REPORT_SECTIONS)
        assert documented == actual, (
            f"docs/RESULTS.md report-section table disagrees with "
            f"REPORT_SECTIONS: missing {sorted(actual - documented)}, "
            f"stale {sorted(documented - actual)}"
        )

    def test_layout_paths_name_real_layout_entries(self):
        from repro.scenarios.shard import RUN_LAYOUT

        section = self._subsection("On-disk layout")
        for entry in (
            "store/segment.jsonl",
            "store/cells.rcs",
            "shards/<i>-of-<N>/partial/cells.jsonl",
        ):
            assert entry in section, (
                f"docs/RESULTS.md on-disk layout never mentions {entry}"
            )
        assert "store/cells.rcs" in RUN_LAYOUT
        assert "shards/<i>-of-<N>/partial/cells.jsonl" in RUN_LAYOUT

    def test_documented_cli_surface_exists(self):
        import argparse

        from repro.cli import build_parser

        cookbook = self._section("CLI cookbook")
        for needle in ("repro report", "--no-store", "--bench", "--out"):
            assert needle in cookbook, (
                f"docs/RESULTS.md cookbook never mentions {needle}"
            )

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        assert "report" in subparsers.choices
        report_opts = {
            option
            for action in subparsers.choices["report"]._actions
            for option in action.option_strings
        }
        assert {"--out", "--bench"} <= report_opts
        for command in ("scenarios", "merge"):
            options = {
                option
                for action in subparsers.choices[command]._actions
                for option in action.option_strings
            }
            assert "--no-store" in options, (
                f"repro {command} lacks --no-store"
            )

    def test_report_smoke_target_documented_and_wired(self):
        makefile = (ROOT / "Makefile").read_text()
        assert "report-smoke:" in makefile
        assert "tests/test_report_smoke.py" in makefile
        assert (ROOT / "tests" / "test_report_smoke.py").exists()
        assert "report-smoke" in self._text()

    def test_results_doc_is_linked(self):
        for name in ("README.md", "DESIGN.md"):
            text = (ROOT / name).read_text()
            assert "docs/RESULTS.md" in text, (
                f"{name} does not link docs/RESULTS.md"
            )


class TestServiceDocs:
    """docs/SERVICE.md owns the campaign-as-a-service reference.

    Same treatment as the other schema tables: the endpoint table is
    enforced against ``repro.service.daemon.ROUTES`` and the
    memoization-key table against ``repro.service.keys.CACHE_KEY_FIELDS``
    in both directions, and the CLI/Makefile surface the document
    describes must exist for real.
    """

    DOC = ROOT / "docs" / "SERVICE.md"

    def _text(self):
        assert self.DOC.exists(), "docs/SERVICE.md missing"
        return self.DOC.read_text()

    def _section(self, title):
        match = re.search(
            rf"^## {re.escape(title)}$(.*?)(?=^## |\Z)",
            self._text(),
            re.M | re.S,
        )
        assert match, f"docs/SERVICE.md has no '## {title}' section"
        return match.group(1)

    def test_endpoint_table_matches_routes_both_directions(self):
        from repro.service import ROUTES

        documented = set(
            re.findall(
                r"^\|\s*`((?:GET|POST) /[^`]*)`", self._section("Endpoints"), re.M
            )
        )
        actual = set(ROUTES)
        assert documented == actual, (
            f"docs/SERVICE.md endpoint table disagrees with ROUTES: "
            f"missing rows {sorted(actual - documented)}, "
            f"stale rows {sorted(documented - actual)}"
        )

    def test_cache_key_table_matches_fields_both_directions(self):
        from repro.service import CACHE_KEY_FIELDS

        documented = set(
            re.findall(
                r"^\|\s*`([a-z_]+)`", self._section("Memoization key"), re.M
            )
        )
        actual = set(CACHE_KEY_FIELDS)
        assert documented == actual, (
            f"docs/SERVICE.md memoization-key table disagrees with "
            f"CACHE_KEY_FIELDS: missing rows {sorted(actual - documented)}, "
            f"stale rows {sorted(documented - actual)}"
        )

    def test_key_components_produce_exactly_the_documented_fields(self):
        """The key builder and the field registry cannot drift apart."""
        from repro.scenarios import ScenarioSuite, load_bundled
        from repro.service import CACHE_KEY_FIELDS, key_components
        from repro.service.daemon import CampaignService

        base = load_bundled("stuck_at_memory")
        suite = ScenarioSuite(
            name="docs-check", specs=tuple(s.shrunk() for s in base.specs)
        )
        from repro.scenarios.compile import ScenarioContext

        components = key_components(suite, ScenarioContext())
        assert set(components) == set(CACHE_KEY_FIELDS)
        assert CampaignService  # imported surface exists

    def test_documented_cli_surface_exists(self):
        import argparse

        from repro.cli import build_parser

        text = self._text()
        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        for command in ("serve", "submit", "status", "fetch"):
            assert f"repro {command}" in text, (
                f"docs/SERVICE.md never mentions repro {command}"
            )
            assert command in subparsers.choices, f"repro {command} missing"

        serve_opts = {
            option
            for action in subparsers.choices["serve"]._actions
            for option in action.option_strings
        }
        documented_serve_flags = {
            "--root", "--host", "--port", "--workers", "--slots",
            "--queue-limit", "--smoke", "--max-retries", "--cell-timeout",
            "--on-cell-error", "--chaos",
        }
        missing = documented_serve_flags - serve_opts
        assert not missing, f"repro serve lacks {sorted(missing)}"
        for flag in ("--root", "--port", "--slots", "--queue-limit", "--smoke"):
            assert flag in text, f"docs/SERVICE.md never mentions {flag}"

        for command, flag in (("submit", "--wait"), ("fetch", "--out")):
            options = {
                option
                for action in subparsers.choices[command]._actions
                for option in action.option_strings
            }
            assert flag in options, f"repro {command} lacks {flag}"

    def test_serve_url_env_var_documented(self):
        from repro.service import URL_ENV_VAR

        assert URL_ENV_VAR == "REPRO_SERVE_URL"
        assert URL_ENV_VAR in self._text()
        assert URL_ENV_VAR in (ROOT / "docs" / "MEMORY_MODEL.md").read_text()

    def test_serve_smoke_target_documented_and_wired(self):
        makefile = (ROOT / "Makefile").read_text()
        assert "serve-smoke:" in makefile
        assert "tests/test_serve_smoke.py" in makefile
        assert (ROOT / "tests" / "test_serve_smoke.py").exists()
        assert "serve-smoke" in self._text()

    def test_service_doc_is_linked(self):
        for name in ("README.md", "DESIGN.md"):
            text = (ROOT / name).read_text()
            assert "docs/SERVICE.md" in text, (
                f"{name} does not link docs/SERVICE.md"
            )


class TestPaperFigureCoverage:
    def test_all_paper_figures_have_bench(self):
        """Every evaluation figure of the paper maps to a bench file."""
        benches = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        required = {
            "test_fig1b_alexnet_unprotected.py",
            "test_fig3_layerwise.py",
            "test_fig3_activation_distributions.py",
            "test_fig5_auc_vs_threshold.py",
            "test_fig6_finetune_trace.py",
            "test_fig7_alexnet.py",
            "test_fig8_vgg16.py",
            "test_headline_numbers.py",
        }
        assert required <= benches
