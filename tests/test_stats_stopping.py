"""Statistical correctness of the adaptive stopping machinery.

Everything here is a fixed-seed, pure-numpy simulation — no models, no
executor — checking the *statistics* behind ``repro.core.batched``:

* the Wilson / Clopper-Pearson intervals achieve (near-)nominal
  coverage over their intended (p, n) regime, and the scipy-free
  fallbacks agree with scipy where scipy is available;
* the sequential stopping rule (interval check at chunk boundaries,
  minimum two trials) keeps useful coverage despite optional stopping,
  stops earlier than the trials ceiling when the tolerance allows, and
  is a deterministic function of its inputs;
* the importance-sampled estimator is unbiased: ``E_q[w] = 1`` and
  ``E_q[w f] = E_p[f]`` within Monte-Carlo tolerance.

Run just this tier with ``make stats`` (or ``pytest -m stats``); it is
fast enough to ride inside ``make fast`` as well.
"""

import math

import numpy as np
import pytest

from repro.core.batched import (
    ImportanceBitflipSampler,
    _beta_ppf_fallback,
    _norm_ppf_fallback,
    clopper_pearson_interval,
    family_interval,
    wilson_interval,
)

pytestmark = pytest.mark.stats

scipy_stats = pytest.importorskip("scipy.stats", reason="fallback parity needs scipy")


# --------------------------------------------------------------------- #
# interval coverage
# --------------------------------------------------------------------- #

# (true p, trials) pairs spanning the campaign regime: mid proportions,
# the near-1 accuracies of low fault rates, and small counts.
COVERAGE_GRID = [(0.5, 50), (0.9, 100), (0.98, 200), (0.75, 20)]


def _exact_coverage(interval, p, n, level=0.95):
    """Noise-free coverage: sum binomial pmf over covering counts."""
    pmf = scipy_stats.binom.pmf(np.arange(n + 1), n, p)
    return float(
        sum(
            weight
            for k, weight in enumerate(pmf)
            if interval(k, n, level)[0] <= p <= interval(k, n, level)[1]
        )
    )


class TestIntervalCoverage:
    def test_wilson_coverage_near_nominal(self):
        for p, n in COVERAGE_GRID:
            coverage = _exact_coverage(wilson_interval, p, n)
            # Wilson oscillates around nominal (exact coverage on this
            # grid sits at 0.933-0.937); it must not dip far below.
            assert coverage >= 0.93, (p, n, coverage)

    def test_clopper_pearson_coverage_conservative(self):
        for p, n in COVERAGE_GRID:
            coverage = _exact_coverage(clopper_pearson_interval, p, n)
            # CP guarantees >= nominal for every (p, n) — no slack.
            assert coverage >= 0.95, (p, n, coverage)

    def test_clopper_pearson_never_narrower_than_wilson(self):
        # Interior counts only: at k=0 / k=n the one-sided CP bound can
        # undercut Wilson's quadratic, and both are clipped anyway.
        for n in (5, 20, 96, 500):
            for k in range(1, n):
                w_low, w_high = wilson_interval(k, n)
                c_low, c_high = clopper_pearson_interval(k, n)
                assert c_high - c_low >= (w_high - w_low) - 1e-12


class TestScipyFallbackParity:
    """The pure-python quantile fallbacks must match scipy bitwise-ish,
    so environments without scipy make identical stopping decisions."""

    def test_norm_ppf_fallback(self):
        for q in np.linspace(0.0005, 0.9995, 199):
            expected = float(scipy_stats.norm.ppf(q))
            assert abs(_norm_ppf_fallback(float(q)) - expected) < 5e-7

    def test_beta_ppf_fallback(self):
        rng = np.random.default_rng(7)
        for _ in range(120):
            a = float(rng.uniform(0.5, 400.0))
            b = float(rng.uniform(0.5, 400.0))
            q = float(rng.uniform(0.005, 0.995))
            expected = float(scipy_stats.beta.ppf(q, a, b))
            assert abs(_beta_ppf_fallback(q, a, b) - expected) < 1e-5, (q, a, b)


# --------------------------------------------------------------------- #
# the sequential stopping rule
# --------------------------------------------------------------------- #

N_IMAGES = 96
MAX_TRIALS = 12
CHUNK = 2
TOLERANCE = 0.04


def _simulate_family(p, rng, method="wilson"):
    """One family under the exact stopping rule the runner implements:
    grow in chunks, stop once >= 2 trials and halfwidth <= tolerance."""
    accuracies = []
    while len(accuracies) < MAX_TRIALS:
        for _ in range(min(CHUNK, MAX_TRIALS - len(accuracies))):
            accuracies.append(rng.binomial(N_IMAGES, p) / N_IMAGES)
        estimate, halfwidth = family_interval(
            accuracies, N_IMAGES, method=method
        )
        if len(accuracies) >= 2 and halfwidth <= TOLERANCE:
            break
    return estimate, halfwidth, len(accuracies)


class TestSequentialStopping:
    def test_stops_early_and_keeps_coverage(self):
        rng = np.random.default_rng(2020)
        for p in (0.9, 0.75, 0.5):
            hits, executed = 0, 0
            for _ in range(600):
                estimate, halfwidth, n_trials = _simulate_family(p, rng)
                hits += abs(estimate - p) <= halfwidth
                executed += n_trials
            coverage = hits / 600
            mean_trials = executed / 600
            # Optional stopping costs some coverage versus the fixed-n
            # interval; the rule must stay in the useful range.
            assert coverage >= 0.88, (p, coverage)
            # And it must actually save work versus the ceiling.
            assert mean_trials < MAX_TRIALS, (p, mean_trials)

    def test_low_variance_families_stop_at_minimum(self):
        rng = np.random.default_rng(0)
        # p extreme: halfwidth after 2 trials of 96 images is tiny.
        _, halfwidth, n_trials = _simulate_family(0.999, rng)
        assert n_trials == 2
        assert halfwidth <= TOLERANCE

    def test_stopping_is_deterministic(self):
        a = [_simulate_family(0.8, np.random.default_rng(5)) for _ in range(20)]
        b = [_simulate_family(0.8, np.random.default_rng(5)) for _ in range(20)]
        assert a == b

    def test_clopper_pearson_stops_no_earlier(self):
        for seed in range(30):
            *_, n_wilson = _simulate_family(
                0.8, np.random.default_rng(seed), method="wilson"
            )
            *_, n_cp = _simulate_family(
                0.8, np.random.default_rng(seed), method="clopper-pearson"
            )
            assert n_cp >= n_wilson


# --------------------------------------------------------------------- #
# importance-sampling unbiasedness
# --------------------------------------------------------------------- #


class _WordMemory:
    """Just the bit-space geometry the sampler consumes."""

    def __init__(self, total_words, bits_per_word=32):
        self.total_words = total_words
        self.bits_per_word = bits_per_word
        self.total_bits = total_words * bits_per_word


RATE = 1e-3
BOOST = 3.0
WORDS = 83  # matches a tiny MLP's weight memory
N_DRAWS = 4000
HOT = ImportanceBitflipSampler().hot_positions  # default: sign+exponent
N_HOT = WORDS * len(HOT)


class TestImportanceUnbiasedness:
    """With rate=1e-3, boost=3 over 83 words the weight's per-draw
    standard deviation is ~1.3, so 4000 draws pin the means to ~0.02;
    the asserted tolerances leave 4-5 sigma of slack."""

    def _draws(self):
        sampler = ImportanceBitflipSampler(boost=BOOST)
        memory = _WordMemory(WORDS)
        rng = np.random.default_rng(2020)
        weights = np.empty(N_DRAWS)
        no_hot_flip = np.empty(N_DRAWS, dtype=bool)
        hot_set = set(HOT)
        for i in range(N_DRAWS):
            faults, weight = sampler.sample_with_weight(memory, RATE, rng)
            weights[i] = weight
            in_word = np.asarray(faults.bit_indices) % memory.bits_per_word
            no_hot_flip[i] = not any(int(b) in hot_set for b in in_word)
        return weights, no_hot_flip

    def test_weights_have_unit_mean(self):
        weights, _ = self._draws()
        assert abs(float(weights.mean()) - 1.0) < 0.1
        assert np.all(weights > 0.0)

    def test_weighted_functional_matches_target_law(self):
        """E_q[w * 1{no hot flip}] == P_p(no hot flip) = (1-r)^n_hot."""
        weights, no_hot_flip = self._draws()
        truth = (1.0 - RATE) ** N_HOT
        estimate = float((weights * no_hot_flip).mean())
        assert abs(estimate - truth) < 0.1, (estimate, truth)
        # Sanity: the proposal really is tilted — raw (unweighted)
        # frequency of hot-flip-free draws is far below the target law's.
        assert float(no_hot_flip.mean()) < truth - 0.15

    def test_boost_one_degenerates_to_target(self):
        """boost=1 makes proposal == target: every weight is exactly 1."""
        sampler = ImportanceBitflipSampler(boost=1.0)
        memory = _WordMemory(WORDS)
        rng = np.random.default_rng(3)
        for _ in range(50):
            _, weight = sampler.sample_with_weight(memory, RATE, rng)
            assert weight == 1.0

    def test_weighted_family_interval_centers_on_weighted_mean(self):
        rng = np.random.default_rng(11)
        accs = rng.uniform(0.2, 0.9, size=8)
        weights = rng.uniform(0.5, 2.0, size=8)
        estimate, halfwidth = family_interval(
            accs, N_IMAGES, weights=weights
        )
        assert estimate == pytest.approx(float(np.mean(weights * accs)))
        expected_half = 1.959963984540054 * float(
            np.std(weights * accs, ddof=1)
        ) / math.sqrt(8)
        assert halfwidth == pytest.approx(expected_half, rel=1e-6)
