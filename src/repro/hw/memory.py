"""Linear, bit-addressable view of a model's weight memory.

The fault models in :mod:`repro.hw.faultmodels` draw *global bit indices*
uniformly over the memory; :class:`WeightMemory` maps those indices back to
``(parameter, word, bit)`` targets, exactly like weight words laid out
consecutively in an accelerator's on-chip/off-chip memory (paper Fig. 1a).

Copy-on-write: under the zero-copy tensor plane (:mod:`repro.utils.shm`)
a worker's parameter arrays are *read-only* shared-memory views.  Every
in-place mutation path in the hw layer therefore first calls
:func:`materialize_region` (directly or via :meth:`WeightMemory.
materialize`), which swaps a read-only region's array for a private
writable copy — so only the regions a fault set actually touches are
ever copied, and the untouched remainder of the network stays mapped
once per host (see ``docs/MEMORY_MODEL.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import nn
from repro.hw.bits import WORD_BITS
from repro.models.registry import computational_layers

__all__ = ["MemoryRegion", "WeightMemory", "materialize_region"]


def materialize_region(region: "MemoryRegion") -> bool:
    """Give ``region`` a private writable array if it is a read-only view.

    The copy-on-write fault of the shared-memory tensor plane: workers
    map weights read-only and the first write to a region replaces the
    parameter's array with a bit-identical private copy.  Returns
    whether a copy was made (False for already-writable regions, so the
    serial path and the legacy deserializing path pay nothing).
    """
    data = region.parameter.data
    if data.flags.writeable:
        return False
    region.parameter.data = np.array(data, copy=True)
    return True


@dataclass(frozen=True)
class MemoryRegion:
    """One parameter's slice of the linear weight memory."""

    name: str  # qualified parameter name, e.g. "0.weight"
    layer_name: str  # paper-style layer name, e.g. "CONV-1"
    parameter: nn.Parameter
    bit_offset: int  # first global bit index of this region

    @property
    def num_words(self) -> int:
        """Number of 32-bit words in the region."""
        return self.parameter.size

    @property
    def num_bits(self) -> int:
        """Number of bits in the region."""
        return self.parameter.size * WORD_BITS

    @property
    def bit_end(self) -> int:
        """One past the last global bit index of this region."""
        return self.bit_offset + self.num_bits


class WeightMemory:
    """Maps a model's parameters into one contiguous bit-addressable space.

    By default only the *computational* layers' parameters (CONV/FC weights
    and biases) are mapped — the memory the paper injects faults into.
    Batch-norm parameters and buffers are excluded unless explicitly
    included via a custom ``select`` predicate.
    """

    def __init__(self, regions: Sequence[MemoryRegion]):
        if not regions:
            raise ValueError("weight memory must contain at least one region")
        self.regions = tuple(regions)
        offsets = [region.bit_offset for region in self.regions]
        if offsets != sorted(offsets):
            raise ValueError("regions must be ordered by bit_offset")
        for previous, current in zip(self.regions, self.regions[1:]):
            if previous.bit_end != current.bit_offset:
                raise ValueError(
                    f"regions are not contiguous at {current.name!r}: "
                    f"{previous.bit_end} != {current.bit_offset}"
                )
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self.total_bits = self.regions[-1].bit_end
        self.total_words = self.total_bits // WORD_BITS
        # Fault models address words of this width; the int8 shadow memory
        # (repro.hw.quant.QuantizedWeightMemory) advertises 8 instead, so
        # word-addressed samplers (TargetedBitFlip) work over either space.
        self.bits_per_word = WORD_BITS

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_model(
        cls,
        model: nn.Module,
        layers: "Iterable[str] | None" = None,
        include_bias: bool = True,
    ) -> "WeightMemory":
        """Map the CONV/FC parameters of ``model``.

        ``layers`` optionally restricts the memory to the named paper-style
        layers (e.g. ``["CONV-1"]``) — this is how per-layer fault
        injection (paper Section III) scopes its campaigns.
        """
        wanted = set(layers) if layers is not None else None
        pairs = computational_layers(model)
        if wanted is not None:
            known = {name for name, _ in pairs}
            unknown = wanted - known
            if unknown:
                raise ValueError(
                    f"unknown layer names {sorted(unknown)!r}; model has {sorted(known)!r}"
                )

        regions: list[MemoryRegion] = []
        offset = 0
        for layer_name, layer in pairs:
            if wanted is not None and layer_name not in wanted:
                continue
            for param_name, param in layer.named_parameters():
                if not include_bias and param_name.endswith("bias"):
                    continue
                regions.append(
                    MemoryRegion(
                        name=f"{layer_name}.{param_name}",
                        layer_name=layer_name,
                        parameter=param,
                        bit_offset=offset,
                    )
                )
                offset += param.size * WORD_BITS
        if not regions:
            raise ValueError("no parameters selected for the weight memory")
        return cls(regions)

    @classmethod
    def from_parameters(
        cls, named_parameters: Iterable[tuple[str, nn.Parameter]]
    ) -> "WeightMemory":
        """Map an explicit (name, parameter) sequence."""
        regions: list[MemoryRegion] = []
        offset = 0
        for name, param in named_parameters:
            regions.append(
                MemoryRegion(
                    name=name, layer_name=name, parameter=param, bit_offset=offset
                )
            )
            offset += param.size * WORD_BITS
        return cls(regions)

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #

    def locate(
        self, bit_indices: np.ndarray
    ) -> list[tuple[MemoryRegion, np.ndarray, np.ndarray]]:
        """Resolve global bit indices to per-region (word, bit) targets.

        Returns one ``(region, word_indices, bit_positions)`` triple per
        affected region, where ``word_indices`` are flat indices into the
        region's parameter.
        """
        bit_indices = np.asarray(bit_indices, dtype=np.int64)
        if bit_indices.size == 0:
            return []
        if bit_indices.min() < 0 or bit_indices.max() >= self.total_bits:
            raise IndexError(
                f"bit index out of range [0, {self.total_bits}): "
                f"[{bit_indices.min()}, {bit_indices.max()}]"
            )
        region_ids = np.searchsorted(self._offsets, bit_indices, side="right") - 1
        results = []
        for region_id in np.unique(region_ids):
            region = self.regions[int(region_id)]
            local = bit_indices[region_ids == region_id] - region.bit_offset
            results.append(
                (region, (local // WORD_BITS).astype(np.int64), (local % WORD_BITS))
            )
        return results

    def region_for_layer(self, layer_name: str) -> list[MemoryRegion]:
        """All regions belonging to the given paper-style layer name."""
        found = [r for r in self.regions if r.layer_name == layer_name]
        if not found:
            raise KeyError(f"no regions for layer {layer_name!r}")
        return found

    def layer_names(self) -> list[str]:
        """Distinct layer names in memory order."""
        seen: list[str] = []
        for region in self.regions:
            if region.layer_name not in seen:
                seen.append(region.layer_name)
        return seen

    def bits_per_layer(self) -> dict[str, int]:
        """Total mapped bits per layer (drives per-layer fault counts)."""
        counts: dict[str, int] = {}
        for region in self.regions:
            counts[region.layer_name] = counts.get(region.layer_name, 0) + region.num_bits
        return counts

    def materialize(self, layers: "Iterable[str] | None" = None) -> int:
        """Copy-on-write: privatize the named layers' regions (all if None).

        Gives every selected region whose parameter is a read-only
        shared-memory view a private writable copy (bit-identical by
        construction); already-writable regions are untouched.  Callers
        that mutate weights in place — the fault injector, the int8
        deployment — privatize only the regions they are about to write,
        which is what keeps the rest of the network zero-copy.  Returns
        the number of regions copied.
        """
        wanted = None if layers is None else set(layers)
        copied = 0
        for region in self.regions:
            if wanted is None or region.layer_name in wanted:
                copied += materialize_region(region)
        return copied

    def snapshot(self) -> list[np.ndarray]:
        """Copies of all mapped parameter arrays (full-memory checkpoint)."""
        return [region.parameter.data.copy() for region in self.regions]

    def restore(self, snapshot: Sequence[np.ndarray]) -> None:
        """Restore a :meth:`snapshot` (shape-checked, in place, CoW-safe)."""
        if len(snapshot) != len(self.regions):
            raise ValueError(
                f"snapshot has {len(snapshot)} arrays, memory has "
                f"{len(self.regions)} regions"
            )
        for region, saved in zip(self.regions, snapshot):
            data = region.parameter.data
            if saved.shape != data.shape:
                raise ValueError(f"snapshot shape mismatch for {region.name!r}")
            if data.flags.writeable:
                np.copyto(data, saved)
            else:
                # Copy-on-write, single-copy: the snapshot fully
                # overwrites the region, so rebind a private copy of it
                # directly instead of privatizing the view first.
                region.parameter.data = np.array(
                    saved, dtype=data.dtype, copy=True
                )

    def __repr__(self) -> str:
        return (
            f"WeightMemory(regions={len(self.regions)}, "
            f"words={self.total_words}, bits={self.total_bits})"
        )
