"""Tests for model/state serialization."""

import numpy as np
import pytest

from repro import nn
from repro.models import LeNet5
from repro.utils.serialization import (
    load_model_state,
    load_state_dict,
    save_model,
    save_state_dict,
)


class TestStateDictRoundtrip:
    def test_roundtrip_arrays_and_metadata(self, tmp_path):
        path = tmp_path / "model.npz"
        state = {"w": np.arange(6, dtype=np.float32).reshape(2, 3), "b": np.ones(2)}
        save_state_dict(path, state, metadata={"acc": 0.9, "name": "x"})
        loaded, meta = load_state_dict(path)
        np.testing.assert_array_equal(loaded["w"], state["w"])
        np.testing.assert_array_equal(loaded["b"], state["b"])
        assert meta == {"acc": 0.9, "name": "x"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(tmp_path / "absent.npz")

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_state_dict(tmp_path / "x.npz", {"__repro_meta__": np.zeros(1)})

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "m.npz"
        save_state_dict(path, {"a": np.zeros(1)})
        assert path.exists()

    def test_empty_metadata_default(self, tmp_path):
        path = tmp_path / "m.npz"
        save_state_dict(path, {"a": np.zeros(1)})
        _, meta = load_state_dict(path)
        assert meta == {}


class TestModelRoundtrip:
    def test_model_save_load_preserves_outputs(self, tmp_path):
        model = LeNet5(seed=0)
        model.eval()
        x = np.random.default_rng(0).random((2, 3, 32, 32)).astype(np.float32)
        expected = model(x)

        path = tmp_path / "lenet.npz"
        save_model(path, model, metadata={"kind": "lenet"})

        fresh = LeNet5(seed=99)  # different init
        fresh.eval()
        meta = load_model_state(path, fresh)
        assert meta == {"kind": "lenet"}
        np.testing.assert_array_equal(fresh(x), expected)

    def test_shape_mismatch_rejected(self, tmp_path):
        model = LeNet5(seed=0)
        path = tmp_path / "lenet.npz"
        save_model(path, model)
        other = nn.Linear(4, 2, seed=0)
        with pytest.raises(KeyError):
            load_model_state(path, other)
