"""The end-to-end FT-ClipAct methodology (paper Fig. 4).

Step 1  profile per-layer ``ACT_max`` on a validation subset;
Step 2  swap unbounded activations for clipped ones initialised at
        ``ACT_max``;
Step 3  fine-tune each layer's threshold with Algorithm 1.

The pipeline needs *no training data* and never touches weights or biases
— exactly the paper's deployment constraint for third-party DNN IP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import nn
from repro.core.campaign import CampaignConfig, FaultSampler, default_fault_rates
from repro.core.executor import resolve_workers
from repro.core.finetune import FineTuneConfig, FineTuneResult, ThresholdFineTuner
from repro.core.profiling import ProfileResult, profile_activations
from repro.core.swap import ActivationSwapResult, get_thresholds, swap_activations
from repro.data.dataset import ArrayDataset, Dataset, Subset
from repro.data.loader import DataLoader
from repro.hw.memory import WeightMemory
from repro.utils.validation import check_in_choices, check_positive

__all__ = ["FTClipActConfig", "HardenedModel", "FTClipAct", "harden_model"]


@dataclass(frozen=True)
class FTClipActConfig:
    """All knobs of the hardening pipeline."""

    # Step 1: how many validation images to profile on.
    profile_images: int = 200
    # Step 3 campaign parameters (kept small: Algorithm 1 runs one campaign
    # per boundary evaluation).
    fault_rates: Sequence[float] = field(
        default_factory=lambda: tuple(default_fault_rates())
    )
    trials: int = 5
    eval_images: int = 128
    batch_size: int = 128
    seed: int = 0
    # Fault scope for threshold tuning: "layer" injects only into the layer
    # being tuned (paper Fig. 5's setting); "network" injects everywhere.
    tune_scope: str = "layer"
    finetune: FineTuneConfig = field(default_factory=FineTuneConfig)
    # Clipping variant: "clip" (paper) or "clamp" (ablation).
    variant: str = "clip"
    # Skip Step 3 entirely (thresholds stay at ACT_max) when False.
    fine_tune: bool = True
    # Worker processes per Step-3 campaign (0 = cpu_count).  Any value
    # yields bit-identical thresholds: campaigns are deterministic under
    # parallelism (see repro.core.executor).
    workers: int = 1

    def __post_init__(self) -> None:
        check_positive("profile_images", self.profile_images)
        check_positive("trials", self.trials)
        check_positive("eval_images", self.eval_images)
        check_positive("batch_size", self.batch_size)
        check_in_choices("tune_scope", self.tune_scope, ("layer", "network"))
        check_in_choices("variant", self.variant, ("clip", "clamp"))
        resolve_workers(self.workers)  # shared validation; 0 resolves at run time


@dataclass
class HardenedModel:
    """The pipeline's product: a fault-tolerant DNN plus its provenance."""

    model: nn.Module
    thresholds: dict[str, float]
    act_max: dict[str, float]
    profile: ProfileResult
    swap: ActivationSwapResult
    finetune_results: dict[str, FineTuneResult] = field(default_factory=dict)

    @property
    def tuned(self) -> bool:
        """Whether Step 3 ran (False => thresholds are raw ACT_max)."""
        return bool(self.finetune_results)

    def threshold_table(self) -> list[tuple[str, float, float]]:
        """(layer, ACT_max, final threshold) rows for reports."""
        return [
            (name, self.act_max[name], self.thresholds[name])
            for name in self.thresholds
        ]


class FTClipAct:
    """Drives the three-step methodology on a pre-trained model."""

    def __init__(self, config: "FTClipActConfig | None" = None):
        self.config = config if config is not None else FTClipActConfig()

    def harden(
        self,
        model: nn.Module,
        validation_set: Dataset,
        sampler: "FaultSampler | None" = None,
    ) -> HardenedModel:
        """Run Steps 1-3 on ``model`` (modified in place) and report.

        ``validation_set`` plays the paper's role of "a small subset of
        the validation set": profiling uses its first ``profile_images``
        samples and threshold tuning uses a disjoint slice of
        ``eval_images`` samples (falling back to overlap only if the set
        is too small).
        """
        config = self.config
        model.eval()

        profile_set, tune_set = self._split_validation(validation_set)

        # Step 1: statistical profiling.
        profile = profile_activations(
            model,
            DataLoader(profile_set, batch_size=config.batch_size),
            seed=config.seed,
        )
        # A layer whose activations never exceed zero on the profile set
        # (a dead ReLU) would yield ACT_max = 0, which is not a valid
        # clipping threshold; floor it at a tiny positive value so the
        # layer simply stays fully clipped.
        act_max = {
            layer: max(value, 1e-6) for layer, value in profile.act_max.items()
        }

        # Step 2: swap in clipped activations at ACT_max.
        swap = swap_activations(model, act_max, variant=config.variant)

        # Step 3: per-layer threshold fine-tuning.
        finetune_results: dict[str, FineTuneResult] = {}
        if config.fine_tune:
            tune_images, tune_labels = tune_set.arrays()
            campaign_config = CampaignConfig(
                fault_rates=tuple(config.fault_rates),
                trials=config.trials,
                seed=config.seed,
                batch_size=config.batch_size,
            )
            tuner = ThresholdFineTuner(
                model,
                memory_factory=self._memory_factory(model),
                images=tune_images,
                labels=tune_labels,
                campaign_config=campaign_config,
                finetune_config=config.finetune,
                sampler=sampler,
                workers=config.workers,
            )
            finetune_results = tuner.tune_all(act_max)

        return HardenedModel(
            model=model,
            thresholds=get_thresholds(model),
            act_max=act_max,
            profile=profile,
            swap=swap,
            finetune_results=finetune_results,
        )

    def _split_validation(self, validation_set: Dataset) -> tuple[Dataset, Dataset]:
        """Disjoint (profile, tune) slices of the validation set."""
        config = self.config
        n = len(validation_set)
        n_profile = min(config.profile_images, n)
        profile_set = Subset(validation_set, range(n_profile))
        remaining = n - n_profile
        if remaining >= config.eval_images:
            tune_set: Dataset = Subset(
                validation_set, range(n_profile, n_profile + config.eval_images)
            )
        elif remaining > 0:
            tune_set = Subset(validation_set, range(n_profile, n))
        else:
            # Degenerate small set: reuse the profiling images.
            tune_set = Subset(validation_set, range(min(config.eval_images, n)))
        return profile_set, tune_set

    def _memory_factory(self, model: nn.Module):
        """Per-layer or whole-network fault scope for tuning campaigns."""
        if self.config.tune_scope == "layer":
            return lambda layer_name: WeightMemory.from_model(model, layers=[layer_name])
        whole = WeightMemory.from_model(model)
        return lambda layer_name: whole


def harden_model(
    model: nn.Module,
    validation_set: "Dataset | tuple[np.ndarray, np.ndarray]",
    config: "FTClipActConfig | None" = None,
    sampler: "FaultSampler | None" = None,
) -> HardenedModel:
    """Functional one-shot wrapper around :class:`FTClipAct`.

    ``validation_set`` may be a :class:`Dataset` or an (images, labels)
    array pair.
    """
    if isinstance(validation_set, tuple):
        validation_set = ArrayDataset(*validation_set)
    return FTClipAct(config).harden(model, validation_set, sampler=sampler)
