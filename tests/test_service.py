"""Campaign-as-a-service harness: concurrency, equivalence, chaos.

The acceptance tests for ``repro serve`` (docs/SERVICE.md):

* **single-flight** — N clients submitting the identical smoke suite
  simultaneously coalesce onto exactly one execution and share one run
  id and one set of store bytes; distinct specs run independently;
  queue-full and malformed submissions are clean JSON errors;
* **equivalence** — the daemon's ``summary.json``, per-scenario
  payloads, ``store/cells.rcs`` and rendered report are byte-identical
  to a direct ``run_scenarios`` run at one and two workers, and a
  second submission after a daemon restart is a disk cache hit serving
  the same bytes without re-executing;
* **chaos** — a daemon running under ``REPRO_CHAOS`` worker-kill/raise
  injection (docs/FAULT_TOLERANCE.md) recovers to the exact chaos-free
  bytes with nothing quarantined.
"""

from __future__ import annotations

import json
import threading

import pytest

SUITE = "stuck_at_memory"
# attempts=1 disturbs only first dispatch attempts, so every retry runs
# clean and recovery must reproduce the undisturbed bytes exactly.
CHAOS = "kill=0.25,raise=0.25,seed=7,attempts=1"


def _smoke_suite(name: str = SUITE):
    from repro.scenarios import ScenarioSuite, load_bundled

    base = load_bundled(SUITE)
    return ScenarioSuite(
        name=name, specs=tuple(spec.shrunk() for spec in base.specs)
    )


def _payload(suite) -> dict:
    """The wire shape ``repro submit`` posts (parse_suite round-trips it)."""
    return {
        "name": suite.name,
        "scenarios": [spec.to_dict() for spec in suite.specs],
    }


def _run_bytes(run_dir) -> dict:
    """Every byte-compared artifact of a run directory, keyed by name."""
    from repro.service import MARKER_FILENAME

    files = {
        path.name: path.read_bytes()
        for path in run_dir.glob("*.json")
        if path.name != MARKER_FILENAME
    }
    files["store/cells.rcs"] = (run_dir / "store" / "cells.rcs").read_bytes()
    files["report.html"] = (run_dir / "report.html").read_bytes()
    return files


@pytest.fixture(scope="module")
def ctx():
    """One shared context: the tiny bundles train once for the module."""
    from repro.scenarios import smoke_context

    return smoke_context()


@pytest.fixture(scope="module")
def reference(ctx, tmp_path_factory):
    """Byte-for-byte artifacts of the direct, chaos-free run."""
    from repro.results.report import write_report
    from repro.scenarios import run_scenarios

    out = tmp_path_factory.mktemp("direct")
    results = run_scenarios(_smoke_suite(), workers=1, out_dir=out, context=ctx)
    assert results and all(not result.failed for result in results)
    write_report(out)
    return _run_bytes(out)


def _service(root, ctx, **kwargs):
    from repro.service import CampaignService

    kwargs.setdefault("workers", 1)
    return CampaignService(root, context=ctx, **kwargs)


def _wait(service, run_id, timeout: float = 300.0):
    entry = service.entry(run_id)
    assert entry.done.wait(timeout), f"campaign {run_id} still {entry.state}"
    assert entry.state == "complete", entry.error
    return entry


class TestSingleFlight:
    def test_concurrent_identical_submissions_execute_once(self, ctx, tmp_path):
        clients = 6
        payload = _payload(_smoke_suite())
        barrier = threading.Barrier(clients)
        responses: list = [None] * clients

        with _service(tmp_path / "svc", ctx, slots=2) as service:

            def client(index: int) -> None:
                barrier.wait()
                responses[index] = service.submit(payload)

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            ids = {response["id"] for response in responses}
            assert len(ids) == 1, "all clients must share one run id"
            run_id = ids.pop()
            _wait(service, run_id)

            # Exactly one execution: one miss scheduled it, every other
            # submission attached to it as a hit.
            assert service.counters["executions"] == 1
            assert service.counters["misses"] == 1
            assert service.counters["hits"] == clients - 1
            assert service.counters["submissions"] == clients

            # Every client reads the same store bytes back.
            stores = {service.store_bytes(run_id) for _ in range(clients)}
            assert len(stores) == 1

    def test_distinct_specs_run_independently(self, ctx, tmp_path):
        first = _smoke_suite()
        second = _smoke_suite(name=f"{SUITE}-variant")
        with _service(tmp_path / "svc", ctx, slots=2) as service:
            id_first = service.submit(_payload(first))["id"]
            id_second = service.submit(_payload(second))["id"]
            assert id_first != id_second
            _wait(service, id_first)
            _wait(service, id_second)
            assert service.counters["executions"] == 2
            assert service.counters["hits"] == 0
            # Same specs, different suite names: equal scenario payloads,
            # distinct summaries (the summary records the suite name).
            first_files = service.results_payload(id_first)["files"]
            second_files = service.results_payload(id_second)["files"]
            assert set(first_files) == set(second_files)
            assert first_files["summary.json"] != second_files["summary.json"]


class TestErrors:
    def test_malformed_submissions_are_400(self, ctx, tmp_path):
        from repro.service import ServiceClient, ServiceClientError, serve

        service = _service(tmp_path / "svc", ctx, slots=1, queue_limit=1)
        server = serve(service, port=0, start=False)
        pump = threading.Thread(target=server.serve_forever, daemon=True)
        pump.start()
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        try:
            with pytest.raises(ServiceClientError) as not_json:
                client._request("/campaigns", body=b"{nope")
            assert not_json.value.status == 400

            with pytest.raises(ServiceClientError) as not_suite:
                client.submit({"scenarios": [{"model": "not-a-model"}]})
            assert not_suite.value.status == 400
            assert "invalid campaign suite" in str(not_suite.value)

            with pytest.raises(ServiceClientError) as wrong_shape:
                client.submit(["not", "an", "object"])
            assert wrong_shape.value.status == 400

            with pytest.raises(ServiceClientError) as missing:
                client.status("0" * 64)
            assert missing.value.status == 404

            # Queue bound (slots unstarted, so nothing drains): the first
            # distinct submission occupies the queue, the second gets 503.
            first = client.submit(_payload(_smoke_suite()))
            assert first["state"] == "queued"
            with pytest.raises(ServiceClientError) as full:
                client.submit(_payload(_smoke_suite(name=f"{SUITE}-overflow")))
            assert full.value.status == 503
            assert "queue is full" in str(full.value)

            # A queued (never executed) run has no results yet: 409.
            with pytest.raises(ServiceClientError) as pending:
                client.results(first["id"])
            assert pending.value.status == 409

            # Errors above must not have broken the counters' books.
            stats = client.stats()
            assert stats["submissions"] == 2
            assert stats["misses"] == 1
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_daemon_bytes_match_direct_run(self, ctx, reference, tmp_path, workers):
        payload = _payload(_smoke_suite())
        with _service(tmp_path / "svc", ctx, workers=workers) as service:
            run_id = service.submit(payload)["id"]
            _wait(service, run_id)
            produced = _run_bytes(service.run_dir(run_id))
        assert set(produced) == set(reference)
        for name, blob in reference.items():
            assert produced[name] == blob, f"{name} differs from the direct run"

    def test_restart_is_a_cache_hit_serving_identical_bytes(
        self, ctx, reference, tmp_path
    ):
        root = tmp_path / "svc"
        payload = _payload(_smoke_suite())
        with _service(root, ctx) as service:
            run_id = service.submit(payload)["id"]
            _wait(service, run_id)
            first_bytes = _run_bytes(service.run_dir(run_id))

        # A fresh service over the same root: the submission must hit the
        # on-disk cache without executing anything.
        with _service(root, ctx) as restarted:
            response = restarted.submit(payload)
            assert response == {"id": run_id, "state": "complete", "cached": True}
            assert restarted.counters["executions"] == 0
            assert restarted.counters["hits"] == 1
            assert restarted.counters["misses"] == 0
            entry = restarted.entry(run_id)
            assert entry.state == "complete"
            assert _run_bytes(restarted.run_dir(run_id)) == first_bytes
        assert first_bytes == reference

    def test_key_is_content_addressed(self, ctx, tmp_path):
        """Same suite → same id; any spec change → a different id."""
        import dataclasses

        from repro.service import campaign_key

        suite = _smoke_suite()
        assert campaign_key(suite, ctx) == campaign_key(_smoke_suite(), ctx)
        reseeded = dataclasses.replace(suite.specs[0], seed=suite.specs[0].seed + 1)
        changed = dataclasses.replace(suite, specs=(reseeded,) + suite.specs[1:])
        assert campaign_key(changed, ctx) != campaign_key(suite, ctx)


class TestChaos:
    def test_chaos_spec_disturbs_this_suite(self):
        """Non-vacuity guard: the seeded chaos spec must actually schedule
        kill and raise actions somewhere on this suite's grid."""
        from repro.core.chaos import ChaosPolicy

        policy = ChaosPolicy.parse(CHAOS)
        decisions = []
        for task_index, spec in enumerate(_smoke_suite().specs):
            for rate_index in range(len(spec.rates)):
                for trial in range(spec.trials):
                    decisions.append(policy.decide(task_index, rate_index, trial, 0))
        assert "kill" in decisions
        assert "raise" in decisions

    @pytest.mark.parametrize("workers", [2])
    def test_chaos_run_recovers_to_chaos_free_bytes(
        self, ctx, reference, tmp_path, monkeypatch, workers
    ):
        monkeypatch.setenv("REPRO_CHAOS", CHAOS)
        payload = _payload(_smoke_suite())
        with _service(
            tmp_path / "svc", ctx, workers=workers, on_cell_error="retry"
        ) as service:
            run_id = service.submit(payload)["id"]
            entry = _wait(service, run_id)
            produced = _run_bytes(service.run_dir(run_id))
        # Recovery quarantined nothing (the store rows — including the
        # absence of failed outcomes — are inside the byte comparison).
        summary = json.loads(produced["summary.json"])
        assert all(
            "failed_cells" not in scenario for scenario in summary["scenarios"]
        )
        assert entry.completed == entry.total
        assert produced == reference
