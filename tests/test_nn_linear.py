"""Tests for the Linear layer."""

import numpy as np
import pytest

from repro import nn
from tests.conftest import numerical_gradient


class TestLinearForward:
    def test_matches_matmul(self):
        layer = nn.Linear(4, 3, seed=0)
        x = np.random.default_rng(0).standard_normal((5, 4)).astype(np.float32)
        want = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(x), want, rtol=1e-6)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False, seed=0)
        assert layer.bias is None
        x = np.ones((2, 4), dtype=np.float32)
        np.testing.assert_allclose(layer(x), x @ layer.weight.data.T, rtol=1e-6)

    def test_wrong_features_rejected(self):
        layer = nn.Linear(4, 3, seed=0)
        with pytest.raises(ValueError, match="input features"):
            layer(np.zeros((2, 5), dtype=np.float32))

    def test_wrong_ndim_rejected(self):
        layer = nn.Linear(4, 3, seed=0)
        with pytest.raises(ValueError):
            layer(np.zeros(4, dtype=np.float32))

    def test_deterministic_init(self):
        a = nn.Linear(4, 3, seed=5)
        b = nn.Linear(4, 3, seed=5)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestLinearBackward:
    def test_gradients_numerical(self):
        layer = nn.Linear(3, 2, seed=1)
        layer.train()
        x = np.random.default_rng(2).standard_normal((4, 3)).astype(np.float32)
        out = layer(x)
        grad_in = layer.backward(out)

        weight0 = layer.weight.data.copy()
        bias0 = layer.bias.data.copy()

        def loss_x(x_in):
            return float(((x_in @ weight0.T + bias0) ** 2).sum() / 2.0)

        def loss_w(weight):
            return float(((x @ weight.T + bias0) ** 2).sum() / 2.0)

        def loss_b(bias):
            return float(((x @ weight0.T + bias) ** 2).sum() / 2.0)

        np.testing.assert_allclose(
            grad_in, numerical_gradient(loss_x, x), rtol=2e-2, atol=2e-2
        )
        np.testing.assert_allclose(
            layer.weight.grad, numerical_gradient(loss_w, weight0), rtol=2e-2, atol=2e-2
        )
        np.testing.assert_allclose(
            layer.bias.grad, numerical_gradient(loss_b, bias0), rtol=2e-2, atol=2e-2
        )

    def test_grad_accumulates_over_calls(self):
        layer = nn.Linear(3, 2, seed=1)
        layer.train()
        x = np.ones((1, 3), dtype=np.float32)
        out = layer(x)
        layer.backward(np.ones_like(out))
        first = layer.weight.grad.copy()
        layer(x)
        layer.backward(np.ones_like(out))
        np.testing.assert_allclose(layer.weight.grad, 2 * first, rtol=1e-6)

    def test_backward_before_forward_raises(self):
        layer = nn.Linear(3, 2, seed=0)
        layer.train()
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2), dtype=np.float32))

    def test_validation_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 2)
        with pytest.raises(ValueError):
            nn.Linear(2, 0)
