"""Tests for the batched Monte-Carlo kernel and adaptive early stopping.

The load-bearing guarantees:

* **Registry-wide exact bit-identity** — every cell-task kind (weight /
  quantized / activation / outcome / per-class) produces bit-identical
  results with variant batching on, across workers {1, 2} x suffix
  {on, off} x zero-copy {on, off} and under ``REPRO_NO_BATCHED=1``.
* **Adaptive determinism** — executed trials equal the exact sweep's
  prefix bit for bit, and the stopping decision is invariant to worker
  count, suffix caching, the batched-kernel env switch, and
  checkpoint-resume after a mid-run kill.
"""

import math

import numpy as np
import pytest

from repro.analysis.outcomes import OutcomeCellTask
from repro.analysis.perclass import PerClassCellTask
from repro.core.batched import (
    DEFAULT_BATCH_K,
    SKIP_SENTINEL,
    AdaptiveCampaignTask,
    AdaptiveResult,
    BatchedSuffixKernel,
    FaultVariant,
    ImportanceBitflipSampler,
    batched_globally_disabled,
    clopper_pearson_interval,
    family_interval,
    wilson_interval,
)
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.executor import CampaignExecutor, WeightFaultCellTask
from repro.core.quantized import QuantizedCellTask
from repro.hw.actfaults import ActivationFaultCellTask
from repro.hw.memory import WeightMemory

RATES = (1e-4, 1e-3)
TRIALS = 4
BATCH_K = 3  # splits a 4-trial family into a wide chunk + a singleton


@pytest.fixture
def parts(trained_mlp, mlp_eval_arrays):
    images, labels = mlp_eval_arrays
    images, labels = images[:48], labels[:48]
    memory = WeightMemory.from_model(trained_mlp)
    # batch_size 24 -> two evaluation batches per forward, so the replay
    # table and the wide tail both see multiple offsets.
    config = CampaignConfig(
        fault_rates=RATES, trials=TRIALS, seed=11, batch_size=24
    )
    return trained_mlp, memory, images, labels, config


KINDS = ("weight", "quantized", "activation", "outcome", "perclass")


def _make_task(kind, parts, batch_k, suffix=True):
    model, memory, images, labels, config = parts
    if kind == "weight":
        return WeightFaultCellTask(
            model, memory, images, labels, config=config,
            suffix=suffix, batch_k=batch_k,
        )
    if kind == "quantized":
        return QuantizedCellTask(
            model, memory, images, labels, config,
            suffix=suffix, batch_k=batch_k,
        )
    if kind == "activation":
        return ActivationFaultCellTask(
            model, images, labels, config=config,
            suffix=suffix, batch_k=batch_k,
        )
    if kind == "outcome":
        return OutcomeCellTask(
            model, memory, images, labels, config=config,
            suffix=suffix, batch_k=batch_k,
        )
    return PerClassCellTask(
        model, memory, images, labels, config=config,
        suffix=suffix, batch_k=batch_k,
    )


def _comparable(kind, result) -> np.ndarray:
    """One array capturing everything the result asserts scientifically."""
    if kind in ("weight", "quantized", "activation"):
        return result.accuracies
    if kind == "outcome":
        return np.asarray(
            [[c.masked, c.benign, c.sdc, c.due] for c in result.counts]
        )
    return np.concatenate([result.recall, result.prediction_share], axis=1)


class TestRegistryBitIdentity:
    """Batched exact mode == per-cell, for every task kind, everywhere."""

    def _run_all(self, parts, batch_k, workers=1, suffix=True):
        tasks = [_make_task(kind, parts, batch_k, suffix) for kind in KINDS]
        results = CampaignExecutor(workers=workers).run_tasks(tasks)
        return {
            kind: _comparable(kind, result)
            for kind, result in zip(KINDS, results)
        }

    @pytest.fixture
    def reference(self, parts):
        """The historical per-cell path (serial, suffix on, no batching)."""
        return self._run_all(parts, batch_k=0)

    def _assert_matches(self, reference, observed):
        for kind in KINDS:
            np.testing.assert_array_equal(
                reference[kind], observed[kind], err_msg=f"kind={kind}"
            )

    def test_serial_suffix_on(self, parts, reference):
        self._assert_matches(reference, self._run_all(parts, BATCH_K))

    def test_serial_suffix_off(self, parts, reference):
        self._assert_matches(
            reference, self._run_all(parts, BATCH_K, suffix=False)
        )

    def test_two_workers_zero_copy_on(self, parts, reference):
        self._assert_matches(
            reference, self._run_all(parts, BATCH_K, workers=2)
        )

    def test_two_workers_zero_copy_off(self, parts, reference, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM_VIEWS", "1")
        self._assert_matches(
            reference, self._run_all(parts, BATCH_K, workers=2)
        )

    def test_two_workers_suffix_off_everywhere(
        self, parts, reference, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NO_SUFFIX", "1")
        self._assert_matches(
            reference, self._run_all(parts, BATCH_K, workers=2)
        )

    def test_env_kill_switch(self, parts, reference, monkeypatch):
        monkeypatch.setenv("REPRO_NO_BATCHED", "1")
        assert batched_globally_disabled()
        self._assert_matches(reference, self._run_all(parts, BATCH_K))

    def test_wide_batch_k_exceeding_family(self, parts, reference):
        """A batch_k wider than the trial family is harmless."""
        observed = {
            "weight": _comparable(
                "weight",
                CampaignExecutor().run_tasks(
                    [_make_task("weight", parts, batch_k=64)]
                )[0],
            )
        }
        np.testing.assert_array_equal(reference["weight"], observed["weight"])


class TestBatchedKernelInternals:
    def test_env_switch_degrades_to_per_cell(self, trained_mlp, monkeypatch):
        monkeypatch.setenv("REPRO_NO_BATCHED", "1")
        kernel = BatchedSuffixKernel(
            trained_mlp, np.zeros((8, 3, 8, 8), np.float32), 8, batch_k=4
        )
        assert kernel.batch_k == 1 and not kernel.enabled

    def test_cut_span_unknown_layer_is_single(self, trained_mlp):
        kernel = BatchedSuffixKernel(
            trained_mlp, np.zeros((8, 3, 8, 8), np.float32), 8, batch_k=4
        )
        assert kernel._cut_span(()) is None
        assert kernel._cut_span(("no-such-layer",)) is None

    def test_replay_rejects_unknown_offsets(self, trained_mlp):
        kernel = BatchedSuffixKernel(
            trained_mlp, np.zeros((8, 3, 8, 8), np.float32), 8, batch_k=4
        )
        forward = kernel._replay([np.zeros((8, 10), np.float32)])
        with pytest.raises(RuntimeError, match="replay"):
            forward(np.zeros((8, 3, 8, 8), np.float32), 999)
        with pytest.raises(RuntimeError, match="replay"):
            forward(np.zeros((3, 3, 8, 8), np.float32), 0)  # row mismatch

    def test_grouped_dispatch_accounts_for_every_variant(self, parts):
        task = _make_task("weight", parts, batch_k=BATCH_K)
        runner = task.make_runner()
        try:
            runner.run_cells([(0, j) for j in range(TRIALS)])
        finally:
            runner.close()
        stats = runner.kernel.stats
        assert stats["families"] == 1
        assert stats["variants_batched"] + stats["variants_single"] == TRIALS

    def test_every_tail_signature_gets_a_verdict(
        self, trained_mlp, mlp_eval_arrays
    ):
        """The wide tail is never trusted unverified: the first batch of
        each signature computes both paths and checks them bit for bit,
        and no-op variants reproduce the clean logits exactly."""
        import contextlib

        images, _ = mlp_eval_arrays
        images = images[:48]
        kernel = BatchedSuffixKernel(trained_mlp, images, 24, batch_k=4)
        assert kernel.enabled
        # FC-1 is the first faultable layer, so the common tail is real.
        variants = [
            FaultVariant(apply=contextlib.nullcontext, affected=("FC-1",))
            for _ in range(3)
        ]
        collected = []

        def measure(forward):
            logits = [
                forward(images[o : o + 24], o) for o in range(0, 48, 24)
            ]
            collected.append(np.concatenate(logits, axis=0))
            return float(len(collected))

        values = kernel.run_family(variants, measure)
        assert values == [1.0, 2.0, 3.0]
        stats = kernel.stats
        assert stats["variants_batched"] == 3
        assert (
            stats["verified_signatures"] + stats["fallback_signatures"]
            == len(kernel._verified)
            >= 1
        )
        # The bit-identity reference is the per-cell path: one forward
        # per evaluation batch (full-set forwards differ at BLAS level).
        clean = np.concatenate(
            [trained_mlp(images[o : o + 24]) for o in range(0, 48, 24)]
        )
        for replayed in collected:
            np.testing.assert_array_equal(replayed, clean)


class TestForwardFromRange:
    """The ranged nn.Sequential.forward_from the kernel is built on."""

    def test_stop_composes_to_full_forward(self, trained_mlp, mlp_eval_arrays):
        images, _ = mlp_eval_arrays
        x = images[:8]
        full = trained_mlp(x)
        for stop in range(len(trained_mlp)):
            frontier = trained_mlp.forward_from(0, x, stop=stop)
            np.testing.assert_array_equal(
                trained_mlp.forward_from(stop, frontier), full
            )
        # stop == len(model): the frontier already is the final logits.
        np.testing.assert_array_equal(
            trained_mlp.forward_from(0, x, stop=len(trained_mlp)), full
        )

    def test_stop_none_is_full_suffix(self, trained_mlp, mlp_eval_arrays):
        images, _ = mlp_eval_arrays
        x = images[:4]
        np.testing.assert_array_equal(
            trained_mlp.forward_from(0, x, stop=None), trained_mlp(x)
        )

    def test_invalid_ranges_rejected(self, trained_mlp):
        x = np.zeros((2, 3, 8, 8), np.float32)
        with pytest.raises(IndexError):
            trained_mlp.forward_from(0, x, stop=len(trained_mlp) + 1)
        with pytest.raises(IndexError):
            trained_mlp.forward_from(2, x, stop=1)
        with pytest.raises(IndexError):
            trained_mlp.forward_from(len(trained_mlp), x)


class TestIntervalValidation:
    """Argument contracts; statistical behavior lives in the stats tier."""

    def test_wilson_basics(self):
        low, high = wilson_interval(50, 100)
        assert 0.0 <= low < 0.5 < high <= 1.0
        assert wilson_interval(0, 10)[0] == 0.0
        assert wilson_interval(10, 10)[1] == pytest.approx(1.0)

    def test_clopper_pearson_brackets_wilson(self):
        for successes, trials in [(3, 10), (50, 100), (97, 100)]:
            w_low, w_high = wilson_interval(successes, trials)
            c_low, c_high = clopper_pearson_interval(successes, trials)
            assert c_high - c_low >= w_high - w_low

    def test_invalid_counts_rejected(self):
        for interval in (wilson_interval, clopper_pearson_interval):
            with pytest.raises(ValueError):
                interval(5, 0)
            with pytest.raises(ValueError):
                interval(-1, 10)
            with pytest.raises(ValueError):
                interval(11, 10)
            with pytest.raises(ValueError):
                interval(5, 10, level=1.0)

    def test_family_interval_pools_counts(self):
        estimate, halfwidth = family_interval([0.5, 1.0], 10)
        assert estimate == pytest.approx(0.75)
        assert 0.0 < halfwidth < 0.5

    def test_family_interval_contracts(self):
        with pytest.raises(ValueError):
            family_interval([], 10)
        with pytest.raises(ValueError):
            family_interval([0.5], 10, method="wald")
        # A weighted family must never stop on a single trial.
        estimate, halfwidth = family_interval([0.5], 10, weights=[2.0])
        assert estimate == pytest.approx(1.0)
        assert math.isinf(halfwidth)


@pytest.fixture
def adaptive_parts(trained_mlp, mlp_eval_arrays):
    images, labels = mlp_eval_arrays
    memory = WeightMemory.from_model(trained_mlp)
    config = CampaignConfig(
        fault_rates=(1e-5, 1e-4, 1e-3), trials=6, seed=7, batch_size=96
    )
    return trained_mlp, memory, images, labels, config


def _adaptive_task(adaptive_parts, **kwargs):
    model, memory, images, labels, config = adaptive_parts
    base = WeightFaultCellTask(
        model, memory, images, labels, config=config,
        batch_k=kwargs.get("batch_k", 2),
    )
    kwargs.setdefault("ci_halfwidth", 0.08)
    kwargs.setdefault("batch_k", 2)
    return AdaptiveCampaignTask(base, **kwargs)


def _run_adaptive(task, workers=1, checkpoint=None, progress=None):
    executor = CampaignExecutor(
        workers=workers, checkpoint=checkpoint, progress=progress
    )
    return executor.run_tasks([task])[0]


def _assert_same_result(a: AdaptiveResult, b: AdaptiveResult) -> None:
    np.testing.assert_array_equal(a.executed, b.executed)
    np.testing.assert_array_equal(a.accuracies, b.accuracies)
    np.testing.assert_array_equal(a.estimates, b.estimates)
    np.testing.assert_array_equal(a.halfwidths, b.halfwidths)
    assert a.to_dict() == b.to_dict()


class TestAdaptiveStopping:
    def test_prefix_is_exact_sweep_bitwise(self, adaptive_parts):
        """Common random numbers survive the stopping layer: executed
        trials equal the exact sweep's first n trials bit for bit."""
        model, memory, images, labels, config = adaptive_parts
        exact = run_campaign(model, memory, images, labels, config)
        result = _run_adaptive(_adaptive_task(adaptive_parts))
        assert isinstance(result, AdaptiveResult)
        assert result.cells_executed < result.cells_total  # something saved
        for i in range(len(config.fault_rates)):
            n = int(result.executed[i])
            assert 2 <= n <= config.trials
            np.testing.assert_array_equal(
                result.accuracies[i, :n], exact.accuracies[i, :n]
            )
            # Unexecuted trials carry the sentinel, not stale data.
            assert np.all(result.accuracies[i, n:] == SKIP_SENTINEL)
            # Every family either met tolerance or exhausted its budget.
            assert (
                result.halfwidths[i] <= result.tolerance
                or n == config.trials
            )

    def test_stopping_invariant_to_execution_details(
        self, adaptive_parts, monkeypatch
    ):
        """Workers, suffix caching and REPRO_NO_BATCHED change how cells
        are evaluated, never which cells run or what they produce."""
        reference = _run_adaptive(_adaptive_task(adaptive_parts))
        _assert_same_result(
            reference, _run_adaptive(_adaptive_task(adaptive_parts), workers=2)
        )
        model, memory, images, labels, config = adaptive_parts
        base = WeightFaultCellTask(
            model, memory, images, labels, config=config,
            suffix=False, batch_k=2,
        )
        no_suffix = AdaptiveCampaignTask(base, ci_halfwidth=0.08, batch_k=2)
        _assert_same_result(reference, _run_adaptive(no_suffix))
        monkeypatch.setenv("REPRO_NO_BATCHED", "1")
        _assert_same_result(
            reference, _run_adaptive(_adaptive_task(adaptive_parts))
        )

    def test_huge_tolerance_stops_at_min_trials(self, adaptive_parts):
        result = _run_adaptive(
            _adaptive_task(adaptive_parts, ci_halfwidth=0.5, batch_k=1)
        )
        np.testing.assert_array_equal(
            result.executed, np.full(3, 2, dtype=np.int64)
        )

    def test_tiny_tolerance_runs_everything(self, adaptive_parts):
        model, memory, images, labels, config = adaptive_parts
        exact = run_campaign(model, memory, images, labels, config)
        result = _run_adaptive(
            _adaptive_task(adaptive_parts, ci_halfwidth=0.001)
        )
        assert result.cells_skipped == 0
        np.testing.assert_array_equal(result.accuracies, exact.accuracies)

    def test_curve_fills_skips_with_estimate(self, adaptive_parts):
        result = _run_adaptive(_adaptive_task(adaptive_parts))
        curve = result.curve
        assert curve.accuracies.shape == result.accuracies.shape
        for i in range(result.fault_rates.size):
            n = int(result.executed[i])
            np.testing.assert_array_equal(
                curve.accuracies[i, :n], result.accuracies[i, :n]
            )
            fill = min(1.0, max(0.0, float(result.estimates[i])))
            assert np.all(curve.accuracies[i, n:] == fill)
        assert curve.clean_accuracy == result.clean_accuracy

    def test_to_dict_reports_savings(self, adaptive_parts):
        result = _run_adaptive(_adaptive_task(adaptive_parts))
        payload = result.to_dict()
        assert payload["cells_executed"] == result.cells_executed
        assert payload["cells_skipped"] == result.cells_skipped
        assert payload["max_trials"] == 6
        assert payload["method"] == "wilson"
        assert len(payload["ci_halfwidths"]) == 3
        assert "importance_weights" not in payload

    def test_clopper_pearson_method_is_wider_or_equal(self, adaptive_parts):
        wilson = _run_adaptive(_adaptive_task(adaptive_parts))
        exact_method = _run_adaptive(
            _adaptive_task(adaptive_parts, method="clopper-pearson")
        )
        assert exact_method.method == "clopper-pearson"
        # Conservative intervals can only delay stopping, never hasten it.
        assert np.all(exact_method.executed >= wilson.executed)

    def test_batch_k_zero_resolves_to_default(self, adaptive_parts):
        task = _adaptive_task(adaptive_parts, batch_k=0)
        assert task.batch_k == DEFAULT_BATCH_K

    def test_validation_errors(self, adaptive_parts):
        model, memory, images, labels, config = adaptive_parts
        base = WeightFaultCellTask(model, memory, images, labels, config=config)
        with pytest.raises(ValueError, match="cell_width"):
            AdaptiveCampaignTask(
                OutcomeCellTask(model, memory, images, labels, config=config)
            )
        with pytest.raises(ValueError, match="ci_halfwidth"):
            AdaptiveCampaignTask(base, ci_halfwidth=0.0)
        with pytest.raises(ValueError, match="method"):
            AdaptiveCampaignTask(base, method="wald")
        with pytest.raises(ValueError, match="level"):
            AdaptiveCampaignTask(base, level=1.0)
        with pytest.raises(ValueError, match="max_trials"):
            AdaptiveCampaignTask(base, max_trials=0)
        with pytest.raises(ValueError, match="memory"):
            AdaptiveCampaignTask(
                ActivationFaultCellTask(model, images, labels, config=config),
                importance=4.0,
            )


class TestAdaptiveCheckpointResume:
    """Kill an adaptive sweep mid-run; resume must reproduce the
    uninterrupted run exactly — stopping decisions included."""

    class _Kill(RuntimeError):
        pass

    def _killer(self, at):
        def progress(cell):
            if cell.completed == at and not cell.from_checkpoint:
                raise self._Kill("simulated crash")

        return progress

    def test_kill_then_serial_resume(self, adaptive_parts, tmp_path):
        import json

        full = _run_adaptive(_adaptive_task(adaptive_parts))
        path = tmp_path / "adaptive.json"
        with pytest.raises(self._Kill):
            _run_adaptive(
                _adaptive_task(adaptive_parts),
                checkpoint=str(path),
                progress=self._killer(2),
            )
        # Families are recorded before the progress callback fires, so
        # the one the killer was notified about is already saved.
        saved = len(json.loads(path.read_text())["cells"])
        assert saved == 2  # killed mid-run, one family still pending
        recomputed = []
        resumed = _run_adaptive(
            _adaptive_task(adaptive_parts),
            checkpoint=str(path),
            progress=lambda cell: recomputed.append(cell)
            if not cell.from_checkpoint
            else None,
        )
        assert len(recomputed) == 3 - saved
        _assert_same_result(full, resumed)

    def test_kill_then_parallel_resume(self, adaptive_parts, tmp_path):
        full = _run_adaptive(_adaptive_task(adaptive_parts))
        path = tmp_path / "adaptive.json"
        with pytest.raises(self._Kill):
            _run_adaptive(
                _adaptive_task(adaptive_parts),
                checkpoint=str(path),
                progress=self._killer(2),
            )
        resumed = _run_adaptive(
            _adaptive_task(adaptive_parts), workers=2, checkpoint=str(path)
        )
        _assert_same_result(full, resumed)


class TestImportanceSampling:
    def test_sampler_validation(self):
        with pytest.raises(ValueError):
            ImportanceBitflipSampler(boost=0.0)
        with pytest.raises(ValueError):
            ImportanceBitflipSampler(hot_positions=(31, 31))
        with pytest.raises(ValueError):
            ImportanceBitflipSampler(hot_positions=(-1,))

    def test_place_maps_cells_to_bits(self):
        bits = ImportanceBitflipSampler._place(
            np.asarray([0, 1, 2, 3], dtype=np.int64), [31, 23], 32
        )
        np.testing.assert_array_equal(bits, [31, 23, 63, 55])

    def test_zero_rate_draw_is_empty_with_unit_weight(self, adaptive_parts):
        _, memory, _, _, _ = adaptive_parts
        sampler = ImportanceBitflipSampler()
        faults, weight = sampler.sample_with_weight(
            memory, 0.0, np.random.default_rng(0)
        )
        assert weight == 1.0 and len(faults) == 0

    def test_draw_is_deterministic_and_valid(self, adaptive_parts):
        _, memory, _, _, _ = adaptive_parts
        sampler = ImportanceBitflipSampler(boost=6.0)
        a_faults, a_weight = sampler.sample_with_weight(
            memory, 1e-4, np.random.default_rng(42)
        )
        b_faults, b_weight = sampler.sample_with_weight(
            memory, 1e-4, np.random.default_rng(42)
        )
        assert a_weight == b_weight > 0.0
        np.testing.assert_array_equal(a_faults.bit_indices, b_faults.bit_indices)
        bits = np.asarray(a_faults.bit_indices)
        assert bits.size == np.unique(bits).size
        assert np.all(bits >= 0) and np.all(bits < memory.total_bits)

    def test_from_bitpos_uses_measured_evidence(self):
        class _Evidence:
            def most_damaging_positions(self, k):
                return [31, 30, 23][:k]

        sampler = ImportanceBitflipSampler.from_bitpos(
            _Evidence(), k=2, boost=4.0
        )
        assert sampler.hot_positions == (31, 30)
        assert sampler.boost == 4.0

    def test_adaptive_with_importance_records_weights(self, adaptive_parts):
        result = _run_adaptive(
            _adaptive_task(adaptive_parts, importance=4.0, ci_halfwidth=0.3)
        )
        assert result.weights is not None
        for i in range(result.fault_rates.size):
            n = int(result.executed[i])
            weights = result.weights[i, :n]
            assert np.all(weights > 0.0)
            assert np.all(result.weights[i, n:] == SKIP_SENTINEL)
            # The family estimate is the weighted mean of executed trials.
            expected = float(
                np.mean(weights * result.accuracies[i, :n])
            )
            assert result.estimates[i] == pytest.approx(expected)
        payload = result.to_dict()
        assert "importance_weights" in payload

    def test_importance_runs_are_deterministic(self, adaptive_parts):
        first = _run_adaptive(
            _adaptive_task(adaptive_parts, importance=4.0, ci_halfwidth=0.3)
        )
        second = _run_adaptive(
            _adaptive_task(adaptive_parts, importance=4.0, ci_halfwidth=0.3),
            workers=2,
        )
        np.testing.assert_array_equal(first.weights, second.weights)
        _assert_same_result(first, second)


class TestAdaptiveThroughScenarios:
    """The spec/compile integration (mode/ci_halfwidth/batch_k fields)."""

    def test_compile_wraps_adaptive(self):
        from repro.scenarios import CampaignSpec

        spec = CampaignSpec(
            name="a", mode="adaptive", ci_halfwidth=0.1, batch_k=2
        )
        assert spec.to_dict()["mode"] == "adaptive"
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        shrunk = spec.shrunk()
        assert shrunk.mode == "adaptive"
        assert shrunk.ci_halfwidth == 0.1
        assert shrunk.batch_k == 2

    def test_spec_cross_field_rules(self):
        from repro.scenarios import CampaignSpec

        with pytest.raises(ValueError, match="mode"):
            CampaignSpec(name="x", mode="turbo")
        with pytest.raises(ValueError, match="adaptive"):
            CampaignSpec(name="x", mode="adaptive", campaign="activation")
        with pytest.raises(ValueError, match="importance"):
            CampaignSpec(name="x", importance=2.0)  # exact mode
        with pytest.raises(ValueError, match="importance"):
            CampaignSpec(
                name="x", mode="adaptive", campaign="quantized", importance=2.0
            )
        with pytest.raises(ValueError, match="ci_halfwidth"):
            CampaignSpec(name="x", ci_halfwidth=0.9)
        with pytest.raises(ValueError, match="batch_k"):
            CampaignSpec(name="x", batch_k=-2)
