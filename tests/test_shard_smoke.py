"""`make shard-smoke`: real multi-process sharding of a bundled suite.

The closest thing to the fleet deployment that fits in the fast tier: a
bundled scenario suite (shrunk to smoke size) is split three ways, each
shard executed by a **separate Python process** (`repro scenarios
--shard i/N` would do the same; the driver below calls
:func:`run_scenario_shard` directly so failures surface as tracebacks),
the segmented run directory is merged in-process, and every merged JSON
file must be byte-identical to the unsharded single-process run.

The shard processes share the parent's ``REPRO_CACHE_DIR``, so the tiny
smoke bundle trains once and every process loads the same artifact —
exactly how independent hosts would share a training artifact store.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SUITE = "stuck_at_memory"
SHARDS = 3

_DRIVER = """
import sys

from repro.scenarios import (
    ScenarioSuite, load_bundled, run_scenario_shard, smoke_context,
)

name, shard, run_dir = sys.argv[1:4]
base = load_bundled(name)
suite = ScenarioSuite(
    name=f"{name}-smoke", specs=tuple(s.shrunk() for s in base.specs)
)
run_scenario_shard(suite, shard, run_dir, context=smoke_context())
"""


def _smoke_suite():
    from repro.scenarios import ScenarioSuite, load_bundled

    base = load_bundled(SUITE)
    return ScenarioSuite(
        name=f"{SUITE}-smoke", specs=tuple(s.shrunk() for s in base.specs)
    )


def test_three_process_shard_run_merges_byte_identical(tmp_path):
    from repro.scenarios import merge_run, run_scenarios, smoke_context

    # The unsharded single-process reference (training lands in the
    # shared cache, so the shard processes below just load it).
    unsharded = tmp_path / "unsharded"
    results = run_scenarios(
        _smoke_suite(), workers=1, out_dir=unsharded, context=smoke_context()
    )
    assert results

    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(src)
    )

    run_dir = tmp_path / "run"
    for index in reversed(range(1, SHARDS + 1)):  # any completion order
        proc = subprocess.run(
            [
                sys.executable, "-c", _DRIVER,
                SUITE, f"{index}/{SHARDS}", str(run_dir),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, (
            f"shard {index}/{SHARDS} failed:\n{proc.stdout}\n{proc.stderr}"
        )
        assert (run_dir / "shards" / f"{index}-of-{SHARDS}").is_dir()

    merged = merge_run(run_dir)
    assert [r.name for r in merged] == [r.name for r in results]

    reference = {p.name: p.read_bytes() for p in unsharded.glob("*.json")}
    assert "summary.json" in reference
    produced = {p.name: p.read_bytes() for p in run_dir.glob("*.json")}
    assert produced == reference
