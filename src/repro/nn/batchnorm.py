"""Batch normalization (1-D and 2-D).

Batch norm makes training the deeper VGG-16 topology tractable on a single
CPU core.  Running statistics are registered as buffers so they persist in
``state_dict`` and are *not* exposed to the weight-memory fault injector by
default (the paper injects into weights; buffers can be opted in).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.utils.validation import check_positive

__all__ = ["BatchNorm1d", "BatchNorm2d"]


class _BatchNorm(Module):
    """Shared implementation; subclasses define the reduction axes."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        check_positive("num_features", num_features)
        check_positive("eps", eps)
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must lie in (0, 1], got {momentum}")
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(np.ones(self.num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(self.num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(self.num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(self.num_features, dtype=np.float32))
        self._cache: "tuple | None" = None

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _axes(self, x: np.ndarray) -> tuple[int, ...]:
        raise NotImplementedError

    def _shape(self, x: np.ndarray) -> tuple[int, ...]:
        """Broadcast shape of per-channel statistics for this input rank."""
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(np.asarray(x, dtype=np.float32))
        axes = self._axes(x)
        stat_shape = self._shape(x)

        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            count = x.size // self.num_features
            # Update running stats with the unbiased variance estimate.
            unbiased = var * (count / max(count - 1, 1))
            new_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            new_var = (1 - self.momentum) * self.running_var + self.momentum * unbiased
            self.set_buffer("running_mean", new_mean)
            self.set_buffer("running_var", new_var)
        else:
            mean = self.running_mean
            var = self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean.reshape(stat_shape)) * inv_std.reshape(stat_shape)
        out = normalized * self.weight.data.reshape(stat_shape) + self.bias.data.reshape(
            stat_shape
        )
        if self.training:
            self._cache = (normalized, inv_std, axes, stat_shape)
        return out.astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward in training mode")
        normalized, inv_std, axes, stat_shape = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float32)
        count = grad_output.size // self.num_features

        self.weight.accumulate_grad((grad_output * normalized).sum(axis=axes))
        self.bias.accumulate_grad(grad_output.sum(axis=axes))

        gamma = self.weight.data.reshape(stat_shape)
        grad_norm = grad_output * gamma
        # Standard batch-norm backward through the batch statistics.
        grad_input = (
            grad_norm
            - grad_norm.mean(axis=axes, keepdims=True)
            - normalized * (grad_norm * normalized).mean(axis=axes, keepdims=True)
        ) * inv_std.reshape(stat_shape)
        del count  # count is folded into the means above
        return grad_input.astype(np.float32)

    def extra_repr(self) -> str:
        return f"num_features={self.num_features}, eps={self.eps}, momentum={self.momentum}"


class BatchNorm1d(_BatchNorm):
    """Batch norm over (N, C) feature matrices."""

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, C) input, got shape {x.shape}")
        if x.shape[1] != self.num_features:
            raise ValueError(f"expected {self.num_features} features, got {x.shape[1]}")
        return x

    def _axes(self, x: np.ndarray) -> tuple[int, ...]:
        return (0,)

    def _shape(self, x: np.ndarray) -> tuple[int, ...]:
        return (1, self.num_features)


class BatchNorm2d(_BatchNorm):
    """Batch norm over (N, C, H, W) feature maps, per channel."""

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if x.shape[1] != self.num_features:
            raise ValueError(f"expected {self.num_features} channels, got {x.shape[1]}")
        return x

    def _axes(self, x: np.ndarray) -> tuple[int, ...]:
        return (0, 2, 3)

    def _shape(self, x: np.ndarray) -> tuple[int, ...]:
        return (1, self.num_features, 1, 1)
