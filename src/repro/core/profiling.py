"""Activation profiling (methodology Step 1).

Runs a pre-trained model over a small subset of the validation set and
records, per computational layer, the statistical properties of its
(post-activation) outputs — most importantly ``ACT_max``, the maximum
activation observed, which initialises the clipping thresholds in Step 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro import nn
from repro.core.swap import find_activation_sites
from repro.data.loader import DataLoader
from repro.utils.rng import as_generator

__all__ = ["LayerActivationStats", "ProfileResult", "ActivationProfiler", "profile_activations"]


@dataclass
class LayerActivationStats:
    """Streaming summary of one layer's activation distribution."""

    layer_name: str
    count: int = 0
    act_max: float = float("-inf")
    act_min: float = float("inf")
    _sum: float = 0.0
    _sum_sq: float = 0.0
    _samples: list[np.ndarray] = field(default_factory=list, repr=False)
    _sample_budget: int = 100_000

    def update(self, values: np.ndarray, rng: np.random.Generator) -> None:
        """Fold one batch of activation values into the summary."""
        flat = np.asarray(values, dtype=np.float64).reshape(-1)
        if flat.size == 0:
            return
        self.count += flat.size
        self.act_max = max(self.act_max, float(flat.max()))
        self.act_min = min(self.act_min, float(flat.min()))
        self._sum += float(flat.sum())
        self._sum_sq += float(np.square(flat).sum())
        # Keep a bounded uniform subsample for percentile estimates.
        retained = sum(chunk.size for chunk in self._samples)
        remaining = self._sample_budget - retained
        if remaining > 0:
            if flat.size <= remaining:
                self._samples.append(flat.astype(np.float32))
            else:
                picks = rng.choice(flat.size, size=remaining, replace=False)
                self._samples.append(flat[picks].astype(np.float32))

    @property
    def mean(self) -> float:
        """Mean activation value."""
        return self._sum / self.count if self.count else float("nan")

    @property
    def std(self) -> float:
        """Standard deviation of activation values."""
        if not self.count:
            return float("nan")
        variance = max(self._sum_sq / self.count - self.mean**2, 0.0)
        return float(np.sqrt(variance))

    def percentile(self, q: "float | Iterable[float]") -> "float | np.ndarray":
        """Percentile estimate from the retained subsample."""
        if not self._samples:
            raise ValueError(f"no samples recorded for layer {self.layer_name!r}")
        pooled = np.concatenate(self._samples)
        result = np.percentile(pooled, q)
        return float(result) if np.isscalar(q) or isinstance(q, (int, float)) else result

    def histogram(self, bins: int = 50) -> tuple[np.ndarray, np.ndarray]:
        """(counts, edges) histogram of the retained subsample."""
        if not self._samples:
            raise ValueError(f"no samples recorded for layer {self.layer_name!r}")
        pooled = np.concatenate(self._samples)
        return np.histogram(pooled, bins=bins)


@dataclass
class ProfileResult:
    """Per-layer activation statistics from one profiling pass."""

    stats: dict[str, LayerActivationStats]
    num_images: int

    @property
    def act_max(self) -> dict[str, float]:
        """The paper's ACT_max per layer — Step 2's initial thresholds."""
        return {name: stat.act_max for name, stat in self.stats.items()}

    def thresholds_at_percentile(self, q: float) -> dict[str, float]:
        """Alternative initial thresholds at the q-th percentile (ablation)."""
        return {name: float(stat.percentile(q)) for name, stat in self.stats.items()}


class ActivationProfiler:
    """Hook-based recorder of per-layer activation statistics.

    Hooks are installed on the activation module that follows each
    computational layer (the same association Step 2's swap uses), so the
    recorded values are exactly the ones a clipped activation would bound.
    """

    def __init__(self, model: nn.Module, seed: int = 0):
        self.model = model
        self._rng = as_generator(seed)
        self._stats: dict[str, LayerActivationStats] = {}
        self._handles: list[nn.HookHandle] = []
        sites = find_activation_sites(model)
        if not sites:
            raise ValueError("model has no activations to profile")
        for site in sites:
            stats = LayerActivationStats(layer_name=site.layer_name)
            self._stats[site.layer_name] = stats
            self._handles.append(
                site.activation.register_forward_hook(self._make_hook(stats))
            )

    def _make_hook(self, stats: LayerActivationStats):
        def hook(module: nn.Module, inputs: np.ndarray, output: np.ndarray) -> None:
            stats.update(output, self._rng)

        return hook

    def remove(self) -> None:
        """Detach all profiling hooks."""
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    def run(self, loader: DataLoader) -> ProfileResult:
        """Forward every batch of ``loader`` through the model (eval mode)."""
        was_training = self.model.training
        self.model.eval()
        num_images = 0
        try:
            for images, _ in loader:
                self.model(images)
                num_images += images.shape[0]
        finally:
            self.model.train(was_training)
        return ProfileResult(stats=dict(self._stats), num_images=num_images)

    def __enter__(self) -> "ActivationProfiler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.remove()


def profile_activations(
    model: nn.Module, loader: DataLoader, seed: int = 0
) -> ProfileResult:
    """One-shot Step 1: profile ``model`` over ``loader`` and detach hooks."""
    with ActivationProfiler(model, seed=seed) as profiler:
        return profiler.run(loader)
