"""`make chaos-smoke`: a bundled suite survives aggressive chaos injection.

The acceptance test for the fault-tolerant execution layer
(docs/FAULT_TOLERANCE.md): a bundled scenario suite — shrunk to smoke
size and extended with an adaptive variant — runs under the
deterministic chaos harness (`REPRO_CHAOS`: seeded worker kills and
injected exceptions on every cell's *first* dispatch attempt) with the
``retry`` cell-error policy, completes without aborting, quarantines
nothing, and writes per-scenario JSON plus summary.json **byte-identical**
to the chaos-free run — at one and at two workers, exact and adaptive.
"""

from __future__ import annotations

import dataclasses

import pytest

SUITE = "stuck_at_memory"
# attempts=1 disturbs only first dispatch attempts, so every retry runs
# clean and recovery must reproduce the undisturbed bytes exactly.
CHAOS = "kill=0.25,raise=0.25,seed=7,attempts=1"


def _smoke_suite():
    from repro.scenarios import ScenarioSuite, load_bundled

    base = load_bundled(SUITE)
    specs = tuple(spec.shrunk() for spec in base.specs)
    adaptive = dataclasses.replace(
        specs[0],
        name=f"{specs[0].name}-adaptive",
        mode="adaptive",
        ci_halfwidth=0.2,
    )
    return ScenarioSuite(name=f"{SUITE}-chaos-smoke", specs=specs + (adaptive,))


@pytest.fixture(scope="module")
def ctx():
    """One shared context: the tiny bundle trains once, chaos-free, so
    the chaos runs below disturb only the campaign cells themselves."""
    from repro.scenarios import smoke_context

    return smoke_context()


@pytest.fixture(scope="module")
def reference(ctx, tmp_path_factory):
    """Byte-for-byte outputs of the undisturbed single-process run."""
    from repro.scenarios import run_scenarios

    out = tmp_path_factory.mktemp("chaos-free")
    results = run_scenarios(_smoke_suite(), workers=1, out_dir=out, context=ctx)
    assert results
    files = {path.name: path.read_bytes() for path in out.glob("*.json")}
    assert "summary.json" in files
    return files


def test_chaos_spec_disturbs_this_suite():
    """Guard against a vacuous smoke: the seeded spec must actually
    schedule both kill and raise actions somewhere on this suite's grid."""
    from repro.core.chaos import ChaosPolicy

    policy = ChaosPolicy.parse(CHAOS)
    decisions = []
    for task_index, spec in enumerate(_smoke_suite().specs):
        trials = (0,) if spec.mode == "adaptive" else range(spec.trials)
        for rate_index in range(len(spec.rates)):
            for trial in trials:
                decisions.append(policy.decide(task_index, rate_index, trial, 0))
    assert "kill" in decisions
    assert "raise" in decisions


@pytest.mark.parametrize("workers", [1, 2])
def test_chaos_run_is_byte_identical(ctx, reference, tmp_path, monkeypatch, workers):
    from repro.scenarios import run_scenarios

    monkeypatch.setenv("REPRO_CHAOS", CHAOS)
    out = tmp_path / "out"
    results = run_scenarios(
        _smoke_suite(), workers=workers, out_dir=out, context=ctx,
        on_cell_error="retry",
    )
    # Completed without aborting, and recovery left nothing quarantined.
    assert [result.name for result in results] == [
        spec.name for spec in _smoke_suite().specs
    ]
    assert all(not result.failed for result in results)
    produced = {path.name: path.read_bytes() for path in out.glob("*.json")}
    assert produced == reference
