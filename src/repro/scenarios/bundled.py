"""Registry of bundled scenario specs shipped with the package.

The YAML files under ``src/repro/scenarios/specs/`` reproduce each paper
figure's campaign as a declarative spec and add the new scenario
families (stuck-at memories, multi-bit bursts, targeted bit attacks,
activation faults, int8 storage variants).  ``docs/SCENARIOS.md``
documents every bundled spec in its cookbook section —
``tests/test_docs_consistency.py`` enforces the gallery against this
directory in both directions — and ``make scenarios-smoke`` runs each
one end-to-end on tiny synthetic data.

The CLI resolves a bare name through this registry::

    python -m repro scenarios fig7_alexnet --workers 2
"""

from __future__ import annotations

from pathlib import Path

from repro.scenarios.spec import ScenarioSuite, load_scenarios

__all__ = ["SPEC_DIR", "bundled_spec_names", "bundled_spec_path", "load_bundled"]

SPEC_DIR = Path(__file__).resolve().parent / "specs"


def bundled_spec_names() -> list[str]:
    """Sorted names of every bundled spec file (without extension)."""
    return sorted(path.stem for path in SPEC_DIR.glob("*.yaml"))


def bundled_spec_path(name: str) -> Path:
    """The file path of one bundled spec, by name."""
    path = SPEC_DIR / f"{name}.yaml"
    if not path.exists():
        raise KeyError(
            f"no bundled scenario spec named {name!r}; available: "
            f"{bundled_spec_names()}"
        )
    return path


def load_bundled(name: str) -> ScenarioSuite:
    """Load (and fully expand) one bundled spec by name."""
    return load_scenarios(bundled_spec_path(name))
