"""Ablation: fault-outcome taxonomy — what clipping does to SDC rates.

Mean accuracy understates the paper's contribution for safety-critical
deployment: what matters there is the *silent data corruption* (SDC)
rate — inferences that silently flip from correct to wrong.  This
benchmark classifies every faulty inference of the unprotected and the
clipped AlexNet as masked / benign / SDC / DUE.

Expected shape: the unprotected network's SDC rate peaks in the mid-rate
region (at extreme rates its outputs go non-finite, i.e. *detectable*
DUEs, so SDC falls again); clipping converts the bulk of those SDCs into
masked outcomes — the faulty activation is zeroed before it can steer
the output — and eliminates DUEs entirely (clipped outputs are finite by
construction).
"""

from benchmarks.conftest import run_once
from repro.analysis.outcomes import run_outcome_analysis
from repro.analysis.reporting import format_rate, format_table
from repro.core.campaign import CampaignConfig
from repro.experiments import clone_model, paper_fault_rates
from repro.hw.memory import WeightMemory


def test_ablation_sdc_taxonomy(
    benchmark, alexnet_bundle, alexnet_hardened, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    images, labels = images[:128], labels[:128]
    hardened_model, _, _ = alexnet_hardened
    config = CampaignConfig(fault_rates=paper_fault_rates(), trials=6, seed=37)

    def experiment():
        plain = clone_model(alexnet_bundle)
        plain_breakdown = run_outcome_analysis(
            plain, WeightMemory.from_model(plain), images, labels, config,
            label="unprotected",
        )
        clipped_breakdown = run_outcome_analysis(
            hardened_model,
            WeightMemory.from_model(hardened_model),
            images,
            labels,
            config,
            label="ft-clipact",
        )
        return plain_breakdown, clipped_breakdown

    plain_breakdown, clipped_breakdown = run_once(benchmark, experiment)

    rows = []
    for rate, plain_row, clip_row in zip(
        plain_breakdown.fault_rates,
        plain_breakdown.summary_rows(),
        clipped_breakdown.summary_rows(),
    ):
        rows.append(
            [
                format_rate(float(rate)),
                f"{plain_row[3]:.4f}",
                f"{clip_row[3]:.4f}",
                f"{plain_row[4]:.4f}",
                f"{clip_row[4]:.4f}",
                f"{plain_row[1]:.4f}",
                f"{clip_row[1]:.4f}",
            ]
        )
    record_result(
        "ablation_sdc",
        format_table(
            [
                "fault_rate",
                "SDC unprot",
                "SDC clipped",
                "DUE unprot",
                "DUE clipped",
                "masked unprot",
                "masked clipped",
            ],
            rows,
            title="Ablation — fault-outcome taxonomy (AlexNet)",
        ),
    )

    plain_sdc = plain_breakdown.sdc_rates()
    clip_sdc = clipped_breakdown.sdc_rates()
    # The unprotected network has a substantial SDC peak...
    peak = int(plain_sdc.argmax())
    assert plain_sdc[peak] > 0.15
    # ...which clipping slashes at the same rate, by masking.
    assert clip_sdc[peak] < plain_sdc[peak] * 0.5
    assert (
        clipped_breakdown.masked_rates()[peak]
        > plain_breakdown.masked_rates()[peak] + 0.2
    )
    # Clipped outputs are finite by construction: zero DUEs everywhere.
    assert clipped_breakdown.due_rates().max() == 0.0
