"""Tests for per-layer resilience analysis (paper Fig. 3a/e/i)."""

import numpy as np
import pytest

from repro.analysis.layerwise import (
    cliff_fault_rate,
    run_layerwise_analysis,
)
from repro.core.campaign import CampaignConfig
from repro.core.metrics import ResilienceCurve


@pytest.fixture
def fast_config():
    return CampaignConfig(fault_rates=(1e-4, 1e-3), trials=2, seed=0, batch_size=96)


class TestLayerwise:
    def test_all_layers_by_default(self, trained_mlp, mlp_eval_arrays, fast_config):
        images, labels = mlp_eval_arrays
        result = run_layerwise_analysis(trained_mlp, images, labels, fast_config)
        assert result.ordered_layers() == ["FC-1", "FC-2", "FC-3"]
        assert set(result.bits_per_layer) == {"FC-1", "FC-2", "FC-3"}

    def test_layer_selection(self, trained_mlp, mlp_eval_arrays, fast_config):
        images, labels = mlp_eval_arrays
        result = run_layerwise_analysis(
            trained_mlp, images, labels, fast_config, layers=["FC-2"]
        )
        assert result.ordered_layers() == ["FC-2"]

    def test_unknown_layer_rejected(self, trained_mlp, mlp_eval_arrays, fast_config):
        images, labels = mlp_eval_arrays
        with pytest.raises(ValueError, match="unknown layers"):
            run_layerwise_analysis(
                trained_mlp, images, labels, fast_config, layers=["CONV-1"]
            )

    def test_faults_scoped_to_layer(self, trained_mlp, mlp_eval_arrays, fast_config):
        """Layer bit counts must match each layer's own parameters."""
        images, labels = mlp_eval_arrays
        result = run_layerwise_analysis(trained_mlp, images, labels, fast_config)
        sizes = [p.size for p in trained_mlp.parameters()]
        # FC-1 holds weight+bias of the first linear layer.
        assert result.bits_per_layer["FC-1"] == (sizes[0] + sizes[1]) * 32

    def test_weights_unchanged_after_analysis(self, trained_mlp, mlp_eval_arrays, fast_config):
        images, labels = mlp_eval_arrays
        before = trained_mlp.state_dict()
        run_layerwise_analysis(trained_mlp, images, labels, fast_config)
        after = trained_mlp.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_curves_are_resilience_curves(self, trained_mlp, mlp_eval_arrays, fast_config):
        images, labels = mlp_eval_arrays
        result = run_layerwise_analysis(
            trained_mlp, images, labels, fast_config, layers=["FC-1"]
        )
        curve = result.curves["FC-1"]
        assert curve.accuracies.shape == (2, 2)
        assert curve.label == "FC-1"


class TestLayerwiseCrossCampaign:
    """Layerwise analysis schedules all layers' cells into one sweep."""

    def test_matches_sequential_per_layer_baseline(
        self, trained_mlp, mlp_eval_arrays, fast_config
    ):
        """The historical behavior, spelled out: one standalone campaign
        per layer, back-to-back.  The unified scheduler must reproduce
        it bit for bit."""
        from repro.core.campaign import run_campaign
        from repro.hw.memory import WeightMemory

        images, labels = mlp_eval_arrays
        result = run_layerwise_analysis(trained_mlp, images, labels, fast_config)
        for layer in result.ordered_layers():
            memory = WeightMemory.from_model(trained_mlp, layers=[layer])
            baseline = run_campaign(
                trained_mlp, memory, images, labels, fast_config, label=layer
            )
            np.testing.assert_array_equal(
                result.curves[layer].accuracies, baseline.accuracies
            )
            assert result.curves[layer].clean_accuracy == baseline.clean_accuracy

    def test_two_workers_bit_identical_to_serial(
        self, trained_mlp, mlp_eval_arrays, fast_config
    ):
        images, labels = mlp_eval_arrays
        serial = run_layerwise_analysis(trained_mlp, images, labels, fast_config)
        parallel = run_layerwise_analysis(
            trained_mlp, images, labels, fast_config, workers=2
        )
        assert serial.ordered_layers() == parallel.ordered_layers()
        for layer in serial.ordered_layers():
            np.testing.assert_array_equal(
                serial.curves[layer].accuracies, parallel.curves[layer].accuracies
            )

    def test_all_layers_share_one_pool(
        self, trained_mlp, mlp_eval_arrays, fast_config, monkeypatch
    ):
        """Before the unified scheduler, each layer spun up its own pool;
        now every layer's cells go through a single one."""
        import repro.core.executor as executor_module

        created = []
        real_pool = executor_module.ProcessPoolExecutor

        def counting_pool(*args, **kwargs):
            created.append(1)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", counting_pool)
        images, labels = mlp_eval_arrays
        run_layerwise_analysis(
            trained_mlp, images, labels, fast_config, workers=2
        )
        assert len(created) == 1

    def test_progress_interleaves_layer_labels(
        self, trained_mlp, mlp_eval_arrays, fast_config
    ):
        images, labels = mlp_eval_arrays
        seen = []
        run_layerwise_analysis(
            trained_mlp, images, labels, fast_config, progress=seen.append
        )
        assert {c.campaign_label for c in seen} == {"FC-1", "FC-2", "FC-3"}
        per_layer = 2 * fast_config.trials
        assert len(seen) == 3 * per_layer

    def test_checkpoint_resumes_multi_layer_sweep(
        self, trained_mlp, mlp_eval_arrays, fast_config, tmp_path
    ):
        images, labels = mlp_eval_arrays
        full = run_layerwise_analysis(trained_mlp, images, labels, fast_config)
        path = tmp_path / "layerwise.json"

        class _Kill(RuntimeError):
            pass

        def killer(cell):
            if cell.completed == 6:  # partway into the second layer
                raise _Kill

        with pytest.raises(_Kill):
            run_layerwise_analysis(
                trained_mlp, images, labels, fast_config,
                progress=killer, checkpoint=str(path),
            )
        recomputed = []
        resumed = run_layerwise_analysis(
            trained_mlp, images, labels, fast_config, checkpoint=str(path),
            progress=lambda cell: recomputed.append(cell)
            if not cell.from_checkpoint else None,
        )
        assert 0 < len(recomputed) < 3 * 2 * fast_config.trials
        for layer in full.ordered_layers():
            np.testing.assert_array_equal(
                full.curves[layer].accuracies, resumed.curves[layer].accuracies
            )


class TestCliffRate:
    def _curve(self, means):
        rates = np.logspace(-7, -4, len(means))
        accs = np.asarray(means)[:, None]
        return ResilienceCurve(rates, accs, clean_accuracy=0.9)

    def test_first_crossing_found(self):
        curve = self._curve([0.89, 0.85, 0.5, 0.2])
        assert cliff_fault_rate(curve, drop=0.1) == pytest.approx(1e-5)

    def test_no_crossing_is_inf(self):
        curve = self._curve([0.89, 0.88, 0.87, 0.86])
        assert cliff_fault_rate(curve, drop=0.1) == float("inf")

    def test_cliff_rates_helper(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        config = CampaignConfig(fault_rates=(1e-5, 1e-3), trials=2, seed=0)
        result = run_layerwise_analysis(
            trained_mlp, images, labels, config, layers=["FC-1"]
        )
        rates = result.cliff_rates(drop=0.2)
        assert "FC-1" in rates
