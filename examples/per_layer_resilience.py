#!/usr/bin/env python
"""Per-layer resilience analysis (paper Section III, Fig. 3).

Injects faults into one layer at a time and reports, per layer:

* the accuracy-vs-fault-rate curve (Fig. 3a/e/i);
* where the accuracy cliff sits;
* how the layer's activation distribution explodes with the fault rate —
  the paper's ACT_max observation (Fig. 3b-d).

Run:  python examples/per_layer_resilience.py [--model alexnet]
"""

import argparse

from repro.analysis.activations import capture_activation_distribution
from repro.analysis.layerwise import run_layerwise_analysis
from repro.analysis.reporting import format_rate, format_table
from repro.core.campaign import CampaignConfig
from repro.experiments import clone_model, experiment_bundle, paper_fault_rates


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default="alexnet", choices=["lenet5", "alexnet", "vgg16"]
    )
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--eval-images", type=int, default=128)
    parser.add_argument(
        "--layers",
        nargs="*",
        default=None,
        help="layers to analyse (default: the paper's CONV-1, CONV-5, FC-1 "
        "when present, else all)",
    )
    args = parser.parse_args()

    bundle = experiment_bundle(args.model)
    model = clone_model(bundle)
    images, labels = bundle.test_set.arrays()
    images, labels = images[: args.eval_images], labels[: args.eval_images]

    from repro.models import layer_names

    available = layer_names(model)
    if args.layers:
        layers = args.layers
    else:
        # The paper's Fig. 3 selection, intersected with this model.
        wanted = ["CONV-1", "CONV-5", "FC-1"]
        layers = [name for name in wanted if name in available] or available

    print(f"model: {args.model}  clean accuracy: {bundle.clean_accuracy:.3f}")
    print(f"analysing layers: {layers}\n")

    config = CampaignConfig(
        fault_rates=paper_fault_rates(), trials=args.trials, seed=7
    )
    result = run_layerwise_analysis(model, images, labels, config, layers=layers)

    rows = []
    for layer in layers:
        curve = result.curves[layer]
        means = curve.mean_accuracies()
        rows.append(
            [
                layer,
                result.bits_per_layer[layer],
                f"{means[0]:.3f}",
                f"{means[len(means) // 2]:.3f}",
                f"{means[-1]:.3f}",
                format_rate(result.cliff_rates(drop=0.1)[layer]),
            ]
        )
    print(
        format_table(
            ["layer", "weight_bits", "acc@low", "acc@mid", "acc@high", "cliff_rate"],
            rows,
            title="Fig. 3a/e/i: per-layer accuracy vs (layer-scoped) fault rate",
        )
    )

    print("\nFig. 3b-d: activation distribution of the first analysed layer")
    # Adapt the rates to the layer's size so the expected flip counts match
    # the paper's panels (a handful to hundreds of faulty bits).
    layer_bits = result.bits_per_layer[layers[0]]
    dist_rates = [0.0] + [flips / layer_bits for flips in (4, 32, 256)]
    stats = capture_activation_distribution(
        model, layers[0], images[:64], fault_rates=dist_rates, seed=7
    )
    rows = [
        [
            format_rate(record.fault_rate),
            f"{record.fault_rate * layer_bits:.0f}",
            f"{record.act_max:.4g}",
            f"{record.mean:.4g}",
            f"{100 * record.fraction_extreme:.4f}%",
        ]
        for record in stats
    ]
    print(
        format_table(
            [
                "fault_rate",
                "E[flips]",
                "ACT_max",
                "mean",
                f"> {stats[0].extreme_cutoff:g}",
            ],
            rows,
        )
    )
    print(
        "\nNote how ACT_max jumps by tens of orders of magnitude once "
        "exponent bits start flipping — the paper's key observation."
    )


if __name__ == "__main__":
    main()
