#!/usr/bin/env python
"""Weight-storage formats under fault: float32 vs float32+clip vs int8.

The paper's damage mechanism is floating-point-specific: one exponent-MSB
flip scales a weight by 2^128.  Int8 storage bounds any single-bit
corruption near the max weight magnitude, making quantization itself a
fault-tolerance mechanism.  This example sweeps all three variants on the
same fault-rate grid with shared randomness.

Run:  python examples/quantized_vs_float.py [--model lenet5]
"""

import argparse

from repro.analysis.reporting import format_comparison_table
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.quantized import run_quantized_campaign
from repro.experiments import (
    clone_model,
    default_harden_config,
    experiment_bundle,
    hardened_clone,
    paper_fault_rates,
)
from repro.hw.memory import WeightMemory
from repro.hw.quant import QuantizedWeightMemory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default="lenet5", choices=["lenet5", "alexnet", "vgg16"]
    )
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--eval-images", type=int, default=160)
    args = parser.parse_args()

    bundle = experiment_bundle(args.model)
    images, labels = bundle.test_set.arrays()
    images, labels = images[: args.eval_images], labels[: args.eval_images]
    config = CampaignConfig(
        fault_rates=paper_fault_rates(), trials=args.trials, seed=31
    )

    print(f"model: {args.model}  float32 clean accuracy: {bundle.clean_accuracy:.3f}")

    float_model = clone_model(bundle)
    float_curve = run_campaign(
        float_model,
        WeightMemory.from_model(float_model),
        images,
        labels,
        config,
        label="float32",
    )

    hardened, _, _ = hardened_clone(bundle, default_harden_config())
    clip_curve = run_campaign(
        hardened,
        WeightMemory.from_model(hardened),
        images,
        labels,
        config,
        label="float32+clip",
    )

    int8_model = clone_model(bundle)
    int8_memory = WeightMemory.from_model(int8_model)
    int8_curve = run_quantized_campaign(
        int8_model, int8_memory, images, labels, config, label="int8"
    )

    scales = QuantizedWeightMemory(int8_memory).scales()
    print(f"int8 per-tensor scales: { {k: round(v, 5) for k, v in scales.items()} }")
    print()
    print(
        format_comparison_table(
            [float_curve, clip_curve, int8_curve],
            labels=["float32", "float32+clip", "int8"],
            title=f"{args.model}: storage format vs per-bit weight fault rate",
        )
    )
    print(
        "\nTakeaway: the catastrophic cliff is a float32 phenomenon. Clipping "
        "fixes it in software; int8 avoids it at the storage level (with its "
        "own quantization-error cost on harder tasks)."
    )


if __name__ == "__main__":
    main()
