"""Tests for the end-to-end FT-ClipAct pipeline (paper Fig. 4)."""

import numpy as np
import pytest

from repro.core.clipped import ClampedReLU, ClippedReLU
from repro.core.metrics import evaluate_accuracy_arrays
from repro.core.pipeline import FTClipAct, FTClipActConfig, harden_model
from repro.data import ArrayDataset, SyntheticCIFAR10
from repro.models import MLP
from repro.optim import Adam, Trainer
from repro.data.loader import DataLoader

FAST = dict(
    profile_images=64,
    eval_images=48,
    trials=2,
    fault_rates=(1e-4, 1e-3),
    seed=0,
)


def _fresh_model(trained_mlp):
    clone = MLP(3 * 8 * 8, 10, hidden=(64, 32), seed=0)
    clone.load_state_dict(trained_mlp.state_dict())
    clone.eval()
    return clone


@pytest.fixture
def val_set():
    generator = SyntheticCIFAR10(image_size=8, seed=3)
    return generator.dataset(160, "val")


class TestConfig:
    def test_defaults_valid(self):
        FTClipActConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            FTClipActConfig(profile_images=0)
        with pytest.raises(ValueError):
            FTClipActConfig(tune_scope="galaxy")
        with pytest.raises(ValueError):
            FTClipActConfig(variant="fold")
        with pytest.raises(ValueError):
            FTClipActConfig(workers=-1)

    def test_workers_zero_means_cpu_count(self):
        FTClipActConfig(workers=0)  # valid: resolved at campaign time


class TestHardenModel:
    def test_produces_clipped_model_with_reports(self, trained_mlp, val_set):
        model = _fresh_model(trained_mlp)
        hardened = harden_model(model, val_set, FTClipActConfig(**FAST))
        assert hardened.model is model
        assert hardened.tuned
        assert set(hardened.thresholds) == {"FC-1", "FC-2"}
        assert set(hardened.act_max) == {"FC-1", "FC-2"}
        # Step 3 never raises thresholds above ACT_max (Algorithm 1's
        # search interval is [0, ACT_max]).
        for layer, threshold in hardened.thresholds.items():
            assert threshold <= hardened.act_max[layer] + 1e-6
        # Live modules are clipped.
        assert any(isinstance(m, ClippedReLU) for m in model.modules())

    def test_threshold_table(self, trained_mlp, val_set):
        model = _fresh_model(trained_mlp)
        hardened = harden_model(model, val_set, FTClipActConfig(**FAST))
        table = hardened.threshold_table()
        assert len(table) == 2
        for layer, act_max, threshold in table:
            assert hardened.act_max[layer] == act_max
            assert hardened.thresholds[layer] == threshold

    def test_skip_fine_tune_keeps_act_max(self, trained_mlp, val_set):
        model = _fresh_model(trained_mlp)
        config = FTClipActConfig(fine_tune=False, **FAST)
        hardened = harden_model(model, val_set, config)
        assert not hardened.tuned
        assert hardened.thresholds == pytest.approx(hardened.act_max)

    def test_clamp_variant(self, trained_mlp, val_set):
        model = _fresh_model(trained_mlp)
        config = FTClipActConfig(variant="clamp", fine_tune=False, **FAST)
        harden_model(model, val_set, config)
        assert any(isinstance(m, ClampedReLU) for m in model.modules())

    def test_clean_accuracy_preserved(self, trained_mlp, val_set, mlp_eval_arrays):
        """Clipping at profiled ACT_max must not hurt fault-free accuracy
        much (thresholds sit above the observed activations)."""
        images, labels = mlp_eval_arrays
        baseline = evaluate_accuracy_arrays(trained_mlp, images, labels)
        model = _fresh_model(trained_mlp)
        config = FTClipActConfig(fine_tune=False, **FAST)
        harden_model(model, val_set, config)
        hardened_accuracy = evaluate_accuracy_arrays(model, images, labels)
        assert hardened_accuracy >= baseline - 0.05

    def test_accepts_array_tuple(self, trained_mlp, val_set):
        model = _fresh_model(trained_mlp)
        images, labels = val_set.arrays()
        hardened = harden_model(model, (images, labels), FTClipActConfig(**FAST))
        assert hardened.thresholds

    def test_network_scope(self, trained_mlp, val_set):
        model = _fresh_model(trained_mlp)
        config = FTClipActConfig(tune_scope="network", **FAST)
        hardened = harden_model(model, val_set, config)
        assert hardened.tuned

    def test_deterministic(self, trained_mlp, val_set):
        a = harden_model(_fresh_model(trained_mlp), val_set, FTClipActConfig(**FAST))
        b = harden_model(_fresh_model(trained_mlp), val_set, FTClipActConfig(**FAST))
        assert a.thresholds == pytest.approx(b.thresholds)

    def test_small_validation_set_still_works(self, trained_mlp):
        generator = SyntheticCIFAR10(image_size=8, seed=3)
        tiny = generator.dataset(20, "val")  # smaller than profile_images
        model = _fresh_model(trained_mlp)
        hardened = harden_model(model, tiny, FTClipActConfig(**FAST))
        assert hardened.profile.num_images == 20


class TestEndToEndImprovement:
    def test_hardening_improves_auc_under_faults(self, trained_mlp, val_set, mlp_eval_arrays):
        """The paper's headline claim, verified end to end on a small model:
        FT-ClipAct raises the AUC over the unprotected network."""
        from repro.core.campaign import CampaignConfig, run_campaign
        from repro.hw.memory import WeightMemory

        images, labels = mlp_eval_arrays
        config = CampaignConfig(fault_rates=(1e-5, 1e-4, 1e-3), trials=6, seed=42)

        unprotected = _fresh_model(trained_mlp)
        memory_u = WeightMemory.from_model(unprotected)
        base_curve = run_campaign(unprotected, memory_u, images, labels, config)

        hardened_model = _fresh_model(trained_mlp)
        harden_model(hardened_model, val_set, FTClipActConfig(**FAST))
        memory_h = WeightMemory.from_model(hardened_model)
        hard_curve = run_campaign(hardened_model, memory_h, images, labels, config)

        assert hard_curve.auc() > base_curve.auc()
        # Mean accuracy should dominate at every damaging rate.
        assert (
            hard_curve.mean_accuracies()[1:] >= base_curve.mean_accuracies()[1:] - 0.02
        ).all()
