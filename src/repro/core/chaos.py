"""Deterministic chaos injection for the campaign execution substrate.

The supervised executor (:mod:`repro.core.executor`) promises that a
campaign recovers from worker deaths, cell exceptions and stalls with
**bit-identical** results — a promise that can only be *proven* by
actually disturbing runs.  This module is that disturbance source: a
:class:`ChaosPolicy` maps every ``(task, rate, trial, attempt)``
dispatch to one of the actions

* ``kill``  — SIGKILL the evaluating worker process (ignored when the
  dispatch runs in-process, where killing would take the campaign down
  with it),
* ``raise`` — raise a :class:`ChaosError` before the cell evaluates
  (so retried dispatches start from untouched runner state),
* ``delay`` — sleep ``delay_seconds`` before evaluating (long enough
  delays trip the executor's per-cell timeout),

or to no disturbance at all.  Decisions are pure functions of the
policy's seed and the dispatch coordinates (a SHA-256 hash, no global
RNG state), so a chaos run is reproducible: the same policy disturbs
the same dispatch attempts no matter which worker draws them.  Because
the *attempt* number is part of the key, ``attempts=1`` (the default)
disturbs only first attempts — every retry then succeeds, which is
exactly the shape the bit-identical-recovery tests need.

The policy travels through the ``REPRO_CHAOS`` environment variable
(inherited by worker processes) as a comma-separated spec, e.g.::

    REPRO_CHAOS="kill=0.2,raise=0.1,seed=7"
    REPRO_CHAOS="delay=1,delay_seconds=2,attempts=99,cell=0:1"

The spec keys are the :data:`CHAOS_SPEC_FIELDS` table, which
``docs/FAULT_TOLERANCE.md`` mirrors (enforced both directions by
``make docs-check``).  This is a test/validation harness: it disturbs
executor cell dispatches only, never training or result assembly.
"""

from __future__ import annotations

import functools
import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "CHAOS_ENV_VAR",
    "CHAOS_SPEC_FIELDS",
    "ChaosError",
    "ChaosPolicy",
]

CHAOS_ENV_VAR = "REPRO_CHAOS"

# Spec key -> meaning; docs/FAULT_TOLERANCE.md mirrors this table and
# tests/test_docs_consistency.py enforces the match both directions.
CHAOS_SPEC_FIELDS = {
    "kill": "probability that a dispatch SIGKILLs its worker process",
    "raise": "probability that a dispatch raises a ChaosError pre-evaluation",
    "delay": "probability that a dispatch sleeps before evaluating",
    "delay_seconds": "sleep length of a delay disturbance, in seconds",
    "seed": "hash seed; same seed = same disturbance pattern",
    "attempts": "only dispatch attempts below this are disturbed (1 = first only)",
    "cell": "restrict disturbances to one rate:trial cell (e.g. cell=0:1)",
}


class ChaosError(RuntimeError):
    """The injected failure of a ``raise`` disturbance."""


@dataclass(frozen=True)
class ChaosPolicy:
    """A seeded, per-dispatch disturbance policy.

    ``kill``/``error``/``delay`` are per-dispatch probabilities laid
    out on one uniform draw (kill first, then raise, then delay), so
    their sum should stay at or below 1.  ``attempts`` gates the
    disturbance on the dispatch attempt number, and ``cell`` optionally
    restricts the policy to one ``(rate_index, trial)`` coordinate.
    """

    kill: float = 0.0
    error: float = 0.0  # spec key "raise" (a Python keyword)
    delay: float = 0.0
    delay_seconds: float = 0.05
    seed: int = 0
    attempts: int = 1
    cell: "tuple[int, int] | None" = None

    def __post_init__(self) -> None:
        for name in ("kill", "error", "delay"):
            value = float(getattr(self, name))
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"chaos {name!r} must be a probability in [0, 1], "
                    f"got {value}"
                )
            object.__setattr__(self, name, value)
        if self.kill + self.error + self.delay > 1.0 + 1e-12:
            raise ValueError(
                "chaos kill + raise + delay probabilities must not exceed 1"
            )
        if float(self.delay_seconds) < 0:
            raise ValueError("chaos delay_seconds must be >= 0")
        object.__setattr__(self, "delay_seconds", float(self.delay_seconds))
        if int(self.attempts) < 0:
            raise ValueError("chaos attempts must be >= 0")
        object.__setattr__(self, "attempts", int(self.attempts))
        object.__setattr__(self, "seed", int(self.seed))
        if self.cell is not None:
            rate_index, trial = self.cell
            object.__setattr__(self, "cell", (int(rate_index), int(trial)))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Parse the ``REPRO_CHAOS`` spec form, e.g. ``"kill=0.2,seed=7"``.

        Keys are :data:`CHAOS_SPEC_FIELDS`; unknown keys are rejected so
        a typo disturbs nothing silently.
        """
        fields: dict = {}
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in CHAOS_SPEC_FIELDS:
                raise ValueError(
                    f"bad chaos spec entry {part!r}; known keys: "
                    f"{', '.join(CHAOS_SPEC_FIELDS)}"
                )
            raw = raw.strip()
            if key == "cell":
                rate_raw, sep, trial_raw = raw.partition(":")
                if not sep:
                    raise ValueError(
                        f"chaos cell must look like 'rate:trial', got {raw!r}"
                    )
                fields["cell"] = (int(rate_raw), int(trial_raw))
            elif key in ("seed", "attempts"):
                fields[key] = int(raw)
            elif key == "raise":
                fields["error"] = float(raw)
            else:
                fields[key] = float(raw)
        if not fields:
            raise ValueError(f"empty chaos spec {spec!r}")
        return cls(**fields)

    @classmethod
    def from_env(cls) -> "ChaosPolicy | None":
        """The process's chaos policy, or ``None`` when chaos is off.

        Read from :data:`CHAOS_ENV_VAR` — the variable is inherited by
        worker processes, so one setting disturbs the whole pool.
        """
        spec = os.environ.get(CHAOS_ENV_VAR, "").strip()
        if not spec:
            return None
        return _parse_cached(spec)

    # ------------------------------------------------------------------ #
    # decisions and disturbances
    # ------------------------------------------------------------------ #

    def decide(
        self, task_index: int, rate_index: int, trial: int, attempt: int
    ) -> "str | None":
        """The action for one dispatch: ``"kill"``/``"raise"``/``"delay"``/None.

        A pure function of the policy and the dispatch coordinates: the
        uniform draw is the leading 64 bits of
        ``sha256(f"{seed}/{task}/{rate}/{trial}/{attempt}")``.
        """
        if attempt >= self.attempts:
            return None
        if self.cell is not None and (int(rate_index), int(trial)) != self.cell:
            return None
        total = self.kill + self.error + self.delay
        if total <= 0.0:
            return None
        key = f"{self.seed}/{task_index}/{rate_index}/{trial}/{attempt}"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0**64
        if draw < self.kill:
            return "kill"
        if draw < self.kill + self.error:
            return "raise"
        if draw < total:
            return "delay"
        return None

    def disturb(
        self,
        task_index: int,
        cells: "Sequence[tuple[int, int]]",
        attempts: Sequence[int],
        in_process: bool = False,
    ) -> None:
        """Apply this policy to one dispatch chunk, before it evaluates.

        Scans the chunk's cells in order and executes the first non-None
        decision: ``kill`` SIGKILLs the current process (skipped
        ``in_process``, where the "worker" is the campaign itself),
        ``raise`` raises :class:`ChaosError`, ``delay`` sleeps and keeps
        scanning.  Called before any cell state is touched, so a
        disturbed-and-retried dispatch re-evaluates from clean state.
        """
        for (rate_index, trial), attempt in zip(cells, attempts):
            action = self.decide(task_index, rate_index, trial, attempt)
            if action is None:
                continue
            if action == "delay":
                time.sleep(self.delay_seconds)
                continue
            if action == "kill":
                if in_process:
                    continue
                os.kill(os.getpid(), signal.SIGKILL)
            raise ChaosError(
                f"chaos: injected failure at task {task_index} cell "
                f"{rate_index}/{trial} attempt {attempt}"
            )


@functools.lru_cache(maxsize=8)
def _parse_cached(spec: str) -> ChaosPolicy:
    return ChaosPolicy.parse(spec)
