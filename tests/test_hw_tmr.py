"""Tests for the TMR/DMR protection filters."""

import numpy as np
import pytest

from repro import nn
from repro.hw.faultmodels import OP_FLIP, OP_STUCK0
from repro.hw.memory import WeightMemory
from repro.hw.tmr import DMRFilter, TMRFilter


def _memory(words=64):
    return WeightMemory.from_parameters([("p", nn.Parameter(np.zeros(words)))])


class TestTMRFilter:
    def test_replica_space_is_triple(self):
        memory = _memory(10)
        assert TMRFilter().protected_bits(memory) == memory.total_bits * 3

    def test_single_replica_fault_voted_out(self):
        memory = _memory(10)
        # One replica of data bit 7 faults: majority of clean copies wins.
        assert len(TMRFilter().filter(memory, np.asarray([7 * 3]))) == 0

    def test_two_replica_faults_corrupt_bit(self):
        memory = _memory(10)
        faults = np.asarray([7 * 3, 7 * 3 + 1])
        effective = TMRFilter().filter(memory, faults)
        assert len(effective) == 1
        assert effective.bit_indices[0] == 7
        assert effective.operations[0] == OP_FLIP

    def test_three_replica_faults_also_corrupt(self):
        memory = _memory(10)
        faults = np.asarray([21, 22, 23])  # all replicas of bit 7
        effective = TMRFilter().filter(memory, faults)
        np.testing.assert_array_equal(effective.bit_indices, [7])

    def test_distinct_bits_independent(self):
        memory = _memory(10)
        # Replica faults of bit 0 (x2) and bit 5 (x1).
        faults = np.asarray([0, 1, 15])
        effective = TMRFilter().filter(memory, faults)
        np.testing.assert_array_equal(effective.bit_indices, [0])

    def test_sample_effective_huge_reduction(self):
        memory = _memory(2000)
        rng = np.random.default_rng(0)
        rate = 1e-4
        effective = TMRFilter().sample_effective(memory, rate, rng)
        raw_expected = memory.total_bits * 3 * rate
        assert len(effective) < max(raw_expected / 10, 2)

    def test_out_of_range(self):
        memory = _memory(2)
        with pytest.raises(IndexError):
            TMRFilter().filter(memory, np.asarray([memory.total_bits * 3]))

    def test_empty(self):
        assert len(TMRFilter().filter(_memory(), np.asarray([], dtype=np.int64))) == 0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            TMRFilter().sample_effective(_memory(), 1.5, np.random.default_rng(0))


class TestDMRFilter:
    def test_replica_space_is_double(self):
        memory = _memory(10)
        assert DMRFilter().protected_bits(memory) == memory.total_bits * 2

    def test_detected_word_zeroed(self):
        memory = _memory(10)
        # A fault in replica 0 of data bit 40 (word 1).
        effective = DMRFilter().filter(memory, np.asarray([40 * 2]))
        assert len(effective) == 32
        assert (effective.operations == OP_STUCK0).all()
        assert (effective.bit_indices // 32 == 1).all()

    def test_multiple_words(self):
        memory = _memory(10)
        faults = np.asarray([0, 32 * 2 * 3])  # word 0 and word 3
        effective = DMRFilter().filter(memory, faults)
        words = np.unique(effective.bit_indices // 32)
        np.testing.assert_array_equal(words, [0, 3])

    def test_empty(self):
        assert len(DMRFilter().filter(_memory(), np.asarray([], dtype=np.int64))) == 0

    def test_out_of_range(self):
        memory = _memory(2)
        with pytest.raises(IndexError):
            DMRFilter().filter(memory, np.asarray([memory.total_bits * 2]))
