"""Tests for the fault-outcome taxonomy (masked / benign / SDC / DUE)."""

import numpy as np
import pytest

from repro.analysis.outcomes import (
    OutcomeBreakdown,
    OutcomeCounts,
    run_outcome_analysis,
)
from repro.core.campaign import CampaignConfig
from repro.core.swap import swap_activations
from repro.hw.memory import WeightMemory
from repro.models import MLP


class TestOutcomeCounts:
    def test_total_and_rates(self):
        counts = OutcomeCounts(masked=70, benign=10, sdc=15, due=5)
        assert counts.total == 100
        assert counts.rate("masked") == pytest.approx(0.70)
        assert counts.rate("sdc") == pytest.approx(0.15)
        assert counts.rate("due") == pytest.approx(0.05)

    def test_empty_rates_zero(self):
        counts = OutcomeCounts(0, 0, 0, 0)
        assert counts.rate("sdc") == 0.0


@pytest.fixture
def analysis_parts(trained_mlp, mlp_eval_arrays):
    images, labels = mlp_eval_arrays
    memory = WeightMemory.from_model(trained_mlp)
    config = CampaignConfig(fault_rates=(1e-5, 1e-3), trials=3, seed=4, batch_size=96)
    return trained_mlp, memory, images, labels, config


class TestRunOutcomeAnalysis:
    def test_partition_is_complete(self, analysis_parts):
        model, memory, images, labels, config = analysis_parts
        breakdown = run_outcome_analysis(model, memory, images, labels, config)
        expected = images.shape[0] * config.trials
        for counts in breakdown.counts:
            assert counts.total == expected

    def test_low_rate_mostly_masked(self, analysis_parts):
        model, memory, images, labels, config = analysis_parts
        breakdown = run_outcome_analysis(model, memory, images, labels, config)
        assert breakdown.masked_rates()[0] > 0.9

    def test_sdc_grows_with_rate(self, analysis_parts):
        model, memory, images, labels, config = analysis_parts
        breakdown = run_outcome_analysis(model, memory, images, labels, config)
        sdc = breakdown.sdc_rates()
        assert sdc[-1] > sdc[0]
        assert sdc[-1] > 0.05  # the high rate produces real SDCs

    def test_deterministic(self, analysis_parts):
        model, memory, images, labels, config = analysis_parts
        a = run_outcome_analysis(model, memory, images, labels, config)
        b = run_outcome_analysis(model, memory, images, labels, config)
        np.testing.assert_array_equal(a.sdc_rates(), b.sdc_rates())
        np.testing.assert_array_equal(a.due_rates(), b.due_rates())

    def test_weights_restored(self, analysis_parts):
        model, memory, images, labels, config = analysis_parts
        before = model.state_dict()
        run_outcome_analysis(model, memory, images, labels, config)
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_clipping_reduces_sdc(self, trained_mlp, mlp_eval_arrays):
        """The taxonomy-level version of the paper's claim: clipping turns
        silent corruptions into masked outcomes."""
        images, labels = mlp_eval_arrays
        config = CampaignConfig(fault_rates=(3e-4, 1e-3), trials=4, seed=6)

        plain = MLP(3 * 8 * 8, 10, hidden=(64, 32), seed=0)
        plain.load_state_dict(trained_mlp.state_dict())
        plain.eval()
        plain_breakdown = run_outcome_analysis(
            plain, WeightMemory.from_model(plain), images, labels, config
        )

        clipped = MLP(3 * 8 * 8, 10, hidden=(64, 32), seed=0)
        clipped.load_state_dict(trained_mlp.state_dict())
        clipped.eval()
        swap_activations(clipped, 30.0)
        clipped_breakdown = run_outcome_analysis(
            clipped, WeightMemory.from_model(clipped), images, labels, config
        )

        assert (
            clipped_breakdown.sdc_rates()[-1] < plain_breakdown.sdc_rates()[-1]
        )
        assert (
            clipped_breakdown.masked_rates()[-1]
            > plain_breakdown.masked_rates()[-1]
        )

    def test_summary_rows(self, analysis_parts):
        model, memory, images, labels, config = analysis_parts
        breakdown = run_outcome_analysis(model, memory, images, labels, config)
        rows = breakdown.summary_rows()
        assert len(rows) == 2
        for row in rows:
            # masked + benign + sdc + due == 1
            assert sum(row[1:]) == pytest.approx(1.0)
