"""Declarative campaign scenarios: spec in, executor sweep out.

``repro.scenarios`` turns the execution substrate built by the
executor/suffix/tensor-plane layers into a *scenario engine*: a
:class:`CampaignSpec` (loadable from YAML/JSON, matrix-expandable via
``grid:`` blocks) names a model, a dataset slice, a fault model with
parameters, a mitigation variant and a sweep grid; the compiler lowers
every expanded spec onto the existing campaign cell tasks and runs the
whole matrix through **one** shared
:class:`~repro.core.executor.CampaignExecutor` pool with one resumable
checkpoint file — bit-identical to the equivalent direct API calls at
any worker count.

For fleet-scale runs, :mod:`repro.scenarios.shard` partitions the
expanded cell matrix into N self-contained shards (``repro scenarios
<suite> --shard i/N --out run_dir/``) executed on independent hosts into
one segmented run directory, and ``repro merge run_dir/`` reassembles
them — byte-identical to the unsharded run for any N and any completion
order.

Authoritative schema reference: ``docs/SCENARIOS.md``.  CLI entry
point: ``python -m repro scenarios <spec.yaml or bundled name>``.
"""

from repro.scenarios.bundled import (
    SPEC_DIR,
    bundled_spec_names,
    bundled_spec_path,
    load_bundled,
)
from repro.scenarios.compile import (
    ScenarioContext,
    ScenarioResult,
    assemble_scenario_result,
    compile_spec,
    run_scenarios,
    scenario_file_stems,
    smoke_context,
    write_json_atomic,
    write_results,
)
from repro.scenarios.shard import (
    SHARD_FORMAT_VERSION,
    ShardPlan,
    ShardSpec,
    merge_run,
    run_scenario_shard,
    suite_fingerprint,
)
from repro.scenarios.faults import (
    FAULT_MODELS,
    NAMED_BIT_POSITIONS,
    FaultModelInfo,
    SpecFaultSampler,
    build_fault_model,
    resolve_bit_position,
    validate_fault_params,
)
from repro.scenarios.spec import (
    CAMPAIGN_KINDS,
    EXECUTION_MODES,
    MITIGATION_VARIANTS,
    REDUNDANCY_VARIANTS,
    CampaignSpec,
    FaultModelSpec,
    ScenarioSuite,
    expand_entry,
    load_scenarios,
    parse_suite,
)

__all__ = [
    "CAMPAIGN_KINDS",
    "EXECUTION_MODES",
    "MITIGATION_VARIANTS",
    "REDUNDANCY_VARIANTS",
    "FAULT_MODELS",
    "NAMED_BIT_POSITIONS",
    "SHARD_FORMAT_VERSION",
    "SPEC_DIR",
    "CampaignSpec",
    "FaultModelInfo",
    "FaultModelSpec",
    "ScenarioContext",
    "ScenarioResult",
    "ScenarioSuite",
    "ShardPlan",
    "ShardSpec",
    "SpecFaultSampler",
    "assemble_scenario_result",
    "build_fault_model",
    "bundled_spec_names",
    "bundled_spec_path",
    "compile_spec",
    "expand_entry",
    "load_bundled",
    "load_scenarios",
    "merge_run",
    "parse_suite",
    "resolve_bit_position",
    "run_scenario_shard",
    "run_scenarios",
    "scenario_file_stems",
    "smoke_context",
    "suite_fingerprint",
    "validate_fault_params",
    "write_json_atomic",
    "write_results",
]
