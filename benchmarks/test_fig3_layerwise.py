"""Paper Fig. 3 (a, e, i): per-layer resilience of AlexNet.

The paper injects faults into one layer at a time — CONV-1 (first), CONV-5
(fifth) and FC-1 (sixth computational layer) — and shows each layer's
accuracy-vs-fault-rate curve.  Expected shape: every layer holds near the
clean accuracy at low rates and collapses at a layer-specific cliff; the
cliff's location (in per-bit rate) shifts with the number of parameters
each layer exposes to faults.
"""

import numpy as np

from benchmarks.conftest import TRIALS, run_once
from repro.analysis.layerwise import run_layerwise_analysis
from repro.analysis.reporting import format_rate, format_table
from repro.core.campaign import CampaignConfig
from repro.experiments import clone_model

LAYERS = ["CONV-1", "CONV-5", "FC-1"]


def test_fig3_per_layer_resilience(
    benchmark, alexnet_bundle, alexnet_eval, record_result
):
    images, labels = alexnet_eval
    model = clone_model(alexnet_bundle)
    # Per-layer sweeps need higher rates: a single layer holds far fewer
    # bits than the whole network, so the same expected-flip counts sit at
    # proportionally higher per-bit rates.
    rates = tuple(np.logspace(-7, -3, 9))
    config = CampaignConfig(fault_rates=rates, trials=max(TRIALS // 2, 5), seed=3)

    result = run_once(
        benchmark,
        lambda: run_layerwise_analysis(model, images, labels, config, layers=LAYERS),
    )

    lines = []
    header = ["fault_rate"] + LAYERS
    rows = [["0"] + [f"{result.curves[l].clean_accuracy:.4f}" for l in LAYERS]]
    for index, rate in enumerate(rates):
        rows.append(
            [format_rate(float(rate))]
            + [f"{result.curves[l].mean_accuracies()[index]:.4f}" for l in LAYERS]
        )
    lines.append(
        format_table(
            header,
            rows,
            title="Fig. 3a/e/i — AlexNet per-layer accuracy vs (layer-scoped) fault rate",
        )
    )
    size_rows = [
        [layer, result.bits_per_layer[layer], format_rate(result.cliff_rates(0.1)[layer])]
        for layer in LAYERS
    ]
    lines.append("")
    lines.append(
        format_table(["layer", "weight_bits", "cliff_rate(drop 0.1)"], size_rows)
    )
    record_result("fig3_layerwise", "\n".join(lines))

    # Shape checks.
    for layer in LAYERS:
        means = result.curves[layer].mean_accuracies()
        clean = result.curves[layer].clean_accuracy
        assert means[0] >= clean - 0.12  # near-plateau at the lowest rate
        # Collapse somewhere in the sweep (small layers like CONV-1 can
        # partially recover between adjacent rates, as in the paper).
        assert means.min() <= clean - 0.15
    # FC-1 exposes the most bits of the three layers in this topology...
    assert result.bits_per_layer["FC-1"] > result.bits_per_layer["CONV-1"]
    # ...and therefore cliffs at a lower per-bit rate than CONV-1 (the
    # paper's observation that each layer's plateau ends at a different
    # rate, driven by its parameter count).
    cliffs = result.cliff_rates(drop=0.15)
    assert cliffs["FC-1"] <= cliffs["CONV-1"]
