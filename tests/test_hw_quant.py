"""Tests for the int8 quantized weight memory."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.hw.memory import WeightMemory
from repro.hw.quant import (
    INT8_BITS,
    QuantizedWeightMemory,
    dequantize_symmetric,
    quantize_symmetric,
)


class TestSymmetricQuantization:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(1000).astype(np.float32)
        codes, scale = quantize_symmetric(values)
        restored = dequantize_symmetric(codes, scale)
        assert np.abs(restored - values).max() <= scale / 2 + 1e-7

    def test_codes_in_range(self):
        values = np.asarray([-10.0, 0.0, 10.0], dtype=np.float32)
        codes, scale = quantize_symmetric(values)
        assert codes.dtype == np.int8
        assert codes.min() >= -127 and codes.max() <= 127
        assert codes[2] == 127 and codes[0] == -127

    def test_zero_tensor(self):
        codes, scale = quantize_symmetric(np.zeros(5, dtype=np.float32))
        assert scale == 1.0
        assert (codes == 0).all()

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.floats(-1e3, 1e3, width=32, allow_nan=False), min_size=1, max_size=50
        )
    )
    def test_property_error_within_half_step(self, values):
        array = np.asarray(values, dtype=np.float32)
        codes, scale = quantize_symmetric(array)
        restored = dequantize_symmetric(codes, scale)
        assert np.abs(restored - array).max() <= scale / 2 + 1e-6 * scale


def _setup(words=200, seed=0):
    rng = np.random.default_rng(seed)
    param = nn.Parameter(rng.standard_normal(words).astype(np.float32))
    memory = WeightMemory.from_parameters([("p", param)])
    return param, memory, QuantizedWeightMemory(memory)


class TestQuantizedWeightMemory:
    def test_total_bits(self):
        _, memory, quantized = _setup(100)
        assert quantized.total_bits == 100 * INT8_BITS

    def test_deployed_replaces_and_restores(self):
        param, _, quantized = _setup()
        original = param.data.copy()
        with quantized.deployed():
            # Weights now carry quantization error but stay close.
            assert not np.array_equal(param.data, original)
            assert np.abs(param.data - original).max() < 0.1
        np.testing.assert_array_equal(param.data, original)

    def test_nested_deploy_rejected(self):
        _, _, quantized = _setup()
        with quantized.deployed():
            with pytest.raises(RuntimeError):
                quantized.deployed().__enter__()

    def test_session_requires_deploy(self):
        _, _, quantized = _setup()
        with pytest.raises(RuntimeError):
            with quantized.session(0.01, 0):
                pass

    def test_session_flips_and_restores(self):
        param, _, quantized = _setup()
        with quantized.deployed():
            deployed_values = param.data.copy()
            with quantized.session(0.05, 3) as flips:
                assert flips > 0
                assert not np.array_equal(param.data, deployed_values)
            np.testing.assert_array_equal(param.data, deployed_values)

    def test_fault_magnitude_bounded(self):
        """The int8 punchline: no fault can exceed ~2x the max weight."""
        param, _, quantized = _setup()
        max_abs = float(np.abs(param.data).max())
        with quantized.deployed():
            with quantized.session(0.05, 7):
                # -128 * scale is the worst representable corrupted value.
                assert float(np.abs(param.data).max()) <= max_abs * (128 / 127) + 1e-5

    def test_rate_zero_no_flips(self):
        param, _, quantized = _setup()
        with quantized.deployed():
            before = param.data.copy()
            with quantized.session(0.0, 0) as flips:
                assert flips == 0
                np.testing.assert_array_equal(param.data, before)

    def test_deterministic_given_seed(self):
        param, _, quantized = _setup()
        results = []
        for _ in range(2):
            with quantized.deployed():
                with quantized.session(0.02, 11):
                    results.append(param.data.copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_scales_reported(self):
        _, _, quantized = _setup()
        scales = quantized.scales()
        assert set(scales) == {"p"}
        assert scales["p"] > 0


class TestQuantizedCampaign:
    def test_int8_more_resilient_than_float32(self, trained_mlp, mlp_eval_arrays):
        """The ablation claim: bounded int8 corruption degrades accuracy far
        more gracefully than float32 exponent flips at the same rate."""
        from repro.core.campaign import CampaignConfig, run_campaign
        from repro.core.quantized import run_quantized_campaign
        from repro.experiments import clone_model  # noqa: F401 (API parity)

        images, labels = mlp_eval_arrays
        memory = WeightMemory.from_model(trained_mlp)
        config = CampaignConfig(fault_rates=(1e-4, 1e-3), trials=4, seed=5)

        float_curve = run_campaign(trained_mlp, memory, images, labels, config)
        int8_curve = run_quantized_campaign(
            trained_mlp, memory, images, labels, config
        )
        # Quantization costs little clean accuracy...
        assert int8_curve.clean_accuracy >= float_curve.clean_accuracy - 0.05
        # ...and is dramatically more robust at damaging rates.
        assert int8_curve.mean_accuracies()[-1] > float_curve.mean_accuracies()[-1]
        assert int8_curve.auc() > float_curve.auc()

    def test_weights_restored_after_campaign(self, trained_mlp, mlp_eval_arrays):
        from repro.core.campaign import CampaignConfig
        from repro.core.quantized import run_quantized_campaign

        images, labels = mlp_eval_arrays
        memory = WeightMemory.from_model(trained_mlp)
        before = trained_mlp.state_dict()
        run_quantized_campaign(
            trained_mlp,
            memory,
            images,
            labels,
            CampaignConfig(fault_rates=(1e-3,), trials=2, seed=0),
        )
        after = trained_mlp.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestFaultSetApply:
    """FaultSet-aware injection in the int8 code space (scenario support)."""

    def test_word_space_attributes(self):
        _, _, quantized = _setup(100)
        assert quantized.total_words == 100
        assert quantized.bits_per_word == INT8_BITS

    def test_flip_faultset_equals_bit_indices(self):
        from repro.hw.faultmodels import FaultSet

        param, _, quantized = _setup(64, seed=1)
        bits = np.asarray([3, 17, 200, 511], dtype=np.int64)
        with quantized.deployed():
            with quantized.apply(bits):
                via_indices = param.data.copy()
            with quantized.apply(FaultSet.flips(bits)):
                via_fault_set = param.data.copy()
        assert np.array_equal(via_indices, via_fault_set)

    def test_stuck_at_ops_force_bits(self):
        from repro.hw.faultmodels import OP_STUCK0, OP_STUCK1, FaultSet

        _, _, quantized = _setup(32, seed=2)
        region = quantized._regions[0]
        code_index, bit = 5, 6
        global_bit = code_index * INT8_BITS + bit
        with quantized.deployed():
            for op, expected in ((OP_STUCK1, 1), (OP_STUCK0, 0)):
                faults = FaultSet(
                    np.asarray([global_bit], dtype=np.int64),
                    np.asarray([op], dtype=np.uint8),
                )
                with quantized.apply(faults):
                    stored = int(region.codes.view(np.uint8)[code_index])
                    assert (stored >> bit) & 1 == expected

    def test_stuck_at_agreeing_bit_is_benign(self):
        from repro.hw.faultmodels import OP_STUCK0, OP_STUCK1, FaultSet

        param, _, quantized = _setup(64, seed=3)
        region = quantized._regions[0]
        with quantized.deployed():
            baseline = param.data.copy()
            view = region.codes.view(np.uint8)
            code_index = 11
            for bit in range(INT8_BITS):
                held = (int(view[code_index]) >> bit) & 1
                op = OP_STUCK1 if held else OP_STUCK0
                faults = FaultSet(
                    np.asarray([code_index * INT8_BITS + bit], dtype=np.int64),
                    np.asarray([op], dtype=np.uint8),
                )
                with quantized.apply(faults):
                    assert np.array_equal(param.data, baseline)

    def test_mixed_ops_restore_exactly(self):
        from repro.hw.faultmodels import (
            OP_FLIP,
            OP_STUCK0,
            OP_STUCK1,
            FaultSet,
        )

        param, _, quantized = _setup(128, seed=4)
        rng = np.random.default_rng(9)
        bits = np.sort(
            rng.choice(quantized.total_bits, size=24, replace=False)
        ).astype(np.int64)
        ops = rng.choice([OP_FLIP, OP_STUCK0, OP_STUCK1], size=24).astype(np.uint8)
        with quantized.deployed():
            deployed = param.data.copy()
            codes_before = quantized._regions[0].codes.copy()
            with quantized.apply(FaultSet(bits, ops)):
                pass
            assert np.array_equal(param.data, deployed)
            assert np.array_equal(quantized._regions[0].codes, codes_before)

    def test_affected_layers_accepts_fault_set(self):
        from repro.hw.faultmodels import FaultSet

        _, _, quantized = _setup(16, seed=5)
        assert quantized.affected_layers(FaultSet.flips(np.asarray([0]))) == ["p"]
        assert quantized.affected_layers(FaultSet.empty()) == []
