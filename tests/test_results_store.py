"""The per-cell result store: schema, container, segments, identity.

Three layers of proof for ``repro.results.store``:

* **Property tests** (hypothesis): every record round-trips through the
  JSONL segment encoding and the columnar container across all dtypes
  and outcome classes; canonicalization is invariant to append order;
  and the store derived from assembled scenario results reproduces the
  scenario grids bit for bit (aggregates recomputed from cells match
  the scenario JSON exactly).
* **Unit tests**: the dedupe rules (executed beats failed, conflicting
  executed duplicates raise, newest failure wins), container
  corruption/validation errors, and the live :class:`SegmentRecorder`
  fed synthetic executor cells.
* **Live identity**: an unsharded :func:`run_scenarios` run and N-way
  sharded ``run_scenario_shard`` + ``merge_run`` runs (N ∈ {1, 2, 3},
  exact and adaptive modes) produce byte-identical ``store/cells.rcs``
  files, and the incrementally appended segments reassemble to the
  same canonical store.
"""

from __future__ import annotations

import json
import math
import struct
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.results import (
    CELL_COLUMNS,
    OUTCOME_CLASSES,
    CellRecord,
    CellStore,
    SegmentRecorder,
    read_segment,
    read_segments,
    read_store,
    records_from_failure,
    records_from_value,
    segment_path,
    store_from_results,
    store_path,
    write_store,
)
from repro.results.store import SHARD_SEGMENT_FILENAME, _MAGIC
from repro.scenarios import (
    CampaignSpec,
    ScenarioContext,
    ScenarioSuite,
    ShardSpec,
    assemble_scenario_result,
    merge_run,
    run_scenario_shard,
    run_scenarios,
)
from repro.scenarios.shard import PARTIAL_DIRNAME


# ------------------------------------------------------------------ #
# strategies
# ------------------------------------------------------------------ #

_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20
)
_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)


@st.composite
def cell_records(draw) -> CellRecord:
    return CellRecord(
        scenario=draw(_text),
        campaign=draw(st.sampled_from(["weight", "quantized", "activation"])),
        variant=draw(_text),
        fault_model=draw(_text),
        mode=draw(st.sampled_from(["exact", "adaptive"])),
        rate_index=draw(st.integers(min_value=0, max_value=50)),
        fault_rate=draw(_floats),
        trial=draw(st.integers(min_value=0, max_value=50)),
        seed=draw(st.integers(min_value=-(2**62), max_value=2**62)),
        batch_k=draw(st.integers(min_value=-8, max_value=64)),
        outcome=draw(st.sampled_from(OUTCOME_CLASSES)),
        accuracy=draw(_floats),
        weight=draw(_floats),
        reason=draw(_text),
        attempts=draw(st.integers(min_value=0, max_value=9)),
        error=draw(_text),
    )


@st.composite
def record_batches(draw) -> "list[CellRecord]":
    """Records with unique (scenario, rate_index, trial) coordinates."""
    records = draw(st.lists(cell_records(), max_size=12))
    unique: "dict[tuple, CellRecord]" = {}
    for record in records:
        unique.setdefault(record.sort_key(), record)
    return list(unique.values())


# ------------------------------------------------------------------ #
# property tests: round trips and order invariance
# ------------------------------------------------------------------ #


class TestRecordRoundTrip:
    @given(record=cell_records())
    @settings(max_examples=150, deadline=None)
    def test_segment_json_round_trip(self, record):
        line = json.dumps(record.to_dict(), sort_keys=True)
        assert CellRecord.from_dict(json.loads(line)) == record

    @given(records=st.lists(cell_records(), max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_container_round_trip(self, records):
        store = CellStore(records)
        assert CellStore.from_bytes(store.to_bytes()) == store

    @given(records=st.lists(cell_records(), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_container_bytes_are_deterministic(self, records):
        assert CellStore(records).to_bytes() == CellStore(records).to_bytes()

    def test_nan_is_canonicalized_for_equality(self):
        negative_nan = struct.unpack("<d", struct.pack("<Q", 0xFFF8000000000001))[0]
        assert math.isnan(negative_nan)
        one = _record(accuracy=float("nan"))
        two = _record(accuracy=negative_nan)
        assert one == two
        assert hash(one) == hash(two)

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        payload = _record().to_dict()
        with pytest.raises(ValueError, match="unknown cell-record field"):
            CellRecord.from_dict({**payload, "extra": 1})
        del payload["accuracy"]
        with pytest.raises(ValueError, match="missing field"):
            CellRecord.from_dict(payload)

    def test_record_validates_outcome_and_coordinates(self):
        with pytest.raises(ValueError, match="outcome must be one of"):
            _record(outcome="exploded")
        with pytest.raises(ValueError, match="non-negative"):
            _record(rate_index=-1)


class TestCanonicalization:
    @given(records=record_batches(), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_append_order_invariance(self, records, data):
        shuffled = data.draw(st.permutations(records))
        # Duplicate an arbitrary prefix (identical content), as a resumed
        # run re-recording checkpointed cells would.
        replay = shuffled + shuffled[: len(shuffled) // 2]
        assert CellStore(replay).canonical() == CellStore(records).canonical()

    @given(records=record_batches())
    @settings(max_examples=50, deadline=None)
    def test_canonical_is_sorted_and_idempotent(self, records):
        canonical = CellStore(records).canonical()
        keys = [record.sort_key() for record in canonical]
        assert keys == sorted(keys)
        assert canonical.canonical() == canonical

    def test_executed_beats_failed_either_order(self):
        ok = _record(outcome="ok", accuracy=0.5)
        failed = _record(outcome="failed", accuracy=float("nan"), reason="timeout")
        for order in ([ok, failed], [failed, ok]):
            assert CellStore(order).canonical().records == [ok]

    def test_newest_failure_wins(self):
        first = _record(outcome="failed", reason="timeout", attempts=1)
        second = _record(outcome="failed", reason="exception", attempts=3)
        assert CellStore([first, second]).canonical().records == [second]

    def test_conflicting_executed_duplicates_raise(self):
        with pytest.raises(ValueError, match="determinism contract"):
            CellStore(
                [_record(accuracy=0.5), _record(accuracy=0.25)]
            ).canonical()


# ------------------------------------------------------------------ #
# property tests: store vs assembled scenario results
# ------------------------------------------------------------------ #


def _spec(name="s", mode="exact", rates=(1e-6, 1e-5), trials=3, **kw):
    return CampaignSpec(
        name=name, model="lenet5", rates=rates, trials=trials,
        eval_images=16, batch_size=16, seed=7, mode=mode, **kw,
    )


def _record(**overrides):
    base = dict(
        scenario="s", campaign="weight", variant="unprotected",
        fault_model="random_bitflip", mode="exact", rate_index=0,
        fault_rate=1e-6, trial=0, seed=7, batch_k=0, outcome="ok",
        accuracy=0.75, weight=1.0,
    )
    base.update(overrides)
    return CellRecord(**base)


@st.composite
def exact_results(draw):
    n_rates = draw(st.integers(min_value=1, max_value=4))
    trials = draw(st.integers(min_value=1, max_value=4))
    rates = [10.0 ** -(6 - i) for i in range(n_rates)]
    grid = np.asarray(
        draw(
            st.lists(
                st.lists(
                    st.floats(min_value=0.0, max_value=1.0, width=64),
                    min_size=trials, max_size=trials,
                ),
                min_size=n_rates, max_size=n_rates,
            )
        ),
        dtype=np.float64,
    )
    spec = _spec(rates=tuple(rates), trials=trials)
    return assemble_scenario_result(spec, rates, grid, clean_accuracy=0.9)


@st.composite
def adaptive_results(draw):
    n_rates = draw(st.integers(min_value=1, max_value=3))
    trials = draw(st.integers(min_value=1, max_value=4))
    weighted = draw(st.booleans())
    rates = [10.0 ** -(6 - i) for i in range(n_rates)]
    width = 2 + trials * (2 if weighted else 1)
    grid = np.full((n_rates, width), np.nan)
    for index in range(n_rates):
        executed = draw(st.integers(min_value=1, max_value=trials))
        accs = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, width=64),
                min_size=executed, max_size=executed,
            )
        )
        grid[index, 0] = float(np.mean(accs))
        grid[index, 1] = float(executed)
        grid[index, 2 : 2 + executed] = accs
        if weighted:
            weights = draw(
                st.lists(
                    st.floats(min_value=0.1, max_value=4.0, width=64),
                    min_size=executed, max_size=executed,
                )
            )
            grid[index, 2 + trials : 2 + trials + executed] = weights
    spec = _spec(
        mode="adaptive", rates=tuple(rates), trials=trials,
        ci_halfwidth=0.2, importance=4.0 if weighted else None,
    )
    return assemble_scenario_result(spec, rates, grid, clean_accuracy=0.9)


class TestStoreVsResults:
    @given(result=exact_results())
    @settings(max_examples=60, deadline=None)
    def test_exact_grid_reassembles_bitwise_from_cells(self, result):
        store = store_from_results([result])
        spec = result.spec
        assert len(store) == len(spec.rates) * spec.trials
        grid = np.full((len(spec.rates), spec.trials), np.nan)
        for record in store:
            assert record.outcome == "ok"
            assert record.weight == 1.0
            assert record.seed == spec.seed
            assert record.fault_rate == float(spec.rates[record.rate_index])
            grid[record.rate_index, record.trial] = record.accuracy
        assert np.array_equal(grid, result.curve.accuracies)
        # Aggregates recomputed from the cells match the scenario JSON
        # payload exactly (same bits in, same reductions).
        rebuilt = assemble_scenario_result(
            spec, spec.rates, grid, float(result.curve.clean_accuracy)
        )
        assert rebuilt.to_dict() == result.to_dict()

    @given(result=adaptive_results())
    @settings(max_examples=60, deadline=None)
    def test_adaptive_cells_match_result_fields(self, result):
        store = store_from_results([result])
        spec = result.spec
        adaptive = result.adaptive
        assert len(store) == len(spec.rates) * spec.trials
        counts = store.outcome_counts()
        assert counts["ok"] == adaptive.cells_executed
        assert counts["skipped"] == adaptive.cells_skipped
        assert counts["failed"] == 0
        for record in store:
            executed = int(adaptive.executed[record.rate_index])
            if record.trial < executed:
                assert record.outcome == "ok"
                assert record.accuracy == float(
                    adaptive.accuracies[record.rate_index, record.trial]
                )
                if adaptive.weights is not None:
                    assert record.weight == float(
                        adaptive.weights[record.rate_index, record.trial]
                    )
                else:
                    assert record.weight == 1.0
            else:
                assert record.outcome == "skipped"
                assert math.isnan(record.accuracy)
                assert math.isnan(record.weight)

    def test_failed_cells_carry_reason_no_side_channel(self):
        spec = _spec(rates=(1e-6, 1e-5), trials=2)
        grid = np.array([[0.5, np.nan], [0.25, 0.75]])
        failure = {
            "rate_index": 0, "trial": 1, "reason": "timeout",
            "attempts": 3, "error": "TimeoutError: cell overran 1.0s",
        }
        result = assemble_scenario_result(
            spec, spec.rates, grid, 0.9, failed=[failure]
        )
        store = store_from_results([result])
        failed = store.select(outcome="failed")
        assert len(failed) == 1
        record = failed.records[0]
        assert record.reason == "timeout"
        assert record.attempts == 3
        assert record.error == failure["error"]
        assert math.isnan(record.accuracy)

    def test_adaptive_failed_family_expands_every_trial(self):
        spec = _spec(mode="adaptive", trials=3, ci_halfwidth=0.2)
        records = records_from_failure(
            spec, {"rate_index": 1, "trial": 0, "reason": "worker-death",
                   "attempts": 2, "error": ""},
        )
        assert [r.trial for r in records] == [0, 1, 2]
        assert {r.outcome for r in records} == {"failed"}
        assert {r.reason for r in records} == {"worker-death"}


# ------------------------------------------------------------------ #
# unit tests: container validation, selection, recorder
# ------------------------------------------------------------------ #


class TestContainerValidation:
    def test_rejects_bad_magic(self):
        with pytest.raises(ValueError, match="bad magic"):
            CellStore.from_bytes(b"NOTASTORE" + b"\x00" * 16)

    def test_rejects_future_format(self):
        blob = CellStore([_record()]).to_bytes()
        header_len = struct.unpack_from("<q", blob, len(_MAGIC))[0]
        start = len(_MAGIC) + 8
        header = json.loads(blob[start : start + header_len])
        header["format"] = 999
        raw = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        doctored = (
            _MAGIC + struct.pack("<q", len(raw)) + raw
            + blob[start + header_len :]
        )
        with pytest.raises(ValueError, match="format 999"):
            CellStore.from_bytes(doctored)

    def test_rejects_trailing_bytes(self):
        blob = CellStore([_record()]).to_bytes()
        with pytest.raises(ValueError, match="trailing"):
            CellStore.from_bytes(blob + b"\x00")

    def test_write_read_round_trip(self, tmp_path):
        store = CellStore([_record(), _record(trial=1, accuracy=0.25)])
        write_store(store, tmp_path)
        assert read_store(tmp_path) == store.canonical()
        assert store_path(tmp_path).is_file()


class TestSelection:
    def test_select_column_and_counts(self):
        store = CellStore(
            [
                _record(scenario="a", outcome="ok"),
                _record(scenario="b", outcome="failed",
                        accuracy=float("nan"), reason="exception"),
                _record(scenario="b", trial=1, outcome="skipped",
                        accuracy=float("nan"), weight=float("nan")),
            ]
        )
        assert store.scenarios() == ["a", "b"]
        assert len(store.select(scenario="b")) == 2
        assert store.column("trial") == [0, 0, 1]
        assert store.outcome_counts() == {"ok": 1, "failed": 1, "skipped": 1}
        with pytest.raises(ValueError, match="unknown column"):
            store.select(nope=1)
        with pytest.raises(ValueError, match="unknown column"):
            store.column("nope")


class TestSegmentRecorder:
    def _cell(self, **kw):
        base = dict(
            rate_index=0, trial=0, fault_rate=1e-6, accuracy=0.5,
            completed=1, total=4, from_checkpoint=False,
            campaign_index=0, campaign_label="s", values=None, failed=False,
        )
        base.update(kw)
        return SimpleNamespace(**base)

    def test_streams_cells_and_failures(self, tmp_path):
        spec = _spec(trials=2)
        path = tmp_path / "segment.jsonl"
        with SegmentRecorder(path, [spec]) as recorder:
            recorder.cell(self._cell(accuracy=0.5))
            recorder.cell(self._cell(trial=1, accuracy=0.75))
            # A failed cell's CellResult is skipped; failure() carries it.
            recorder.cell(
                self._cell(rate_index=1, accuracy=float("nan"), failed=True)
            )
            recorder.failure(
                {
                    "task": "s", "task_index": 0, "rate_index": 1,
                    "trial": 0, "reason": "exception", "attempts": 2,
                    "error": "boom",
                }
            )
        store = read_segment(path)
        assert store.outcome_counts() == {"ok": 2, "failed": 1, "skipped": 0}
        assert store.select(outcome="failed").records[0].reason == "exception"

    def test_adaptive_family_vector_expands(self, tmp_path):
        spec = _spec(mode="adaptive", trials=3, ci_halfwidth=0.2)
        path = tmp_path / "segment.jsonl"
        vector = (0.6, 2.0, 0.5, 0.7, -1.0)  # SKIP_SENTINEL padding
        with SegmentRecorder(path, [spec]) as recorder:
            recorder.cell(self._cell(accuracy=0.6, values=vector))
        store = read_segment(path)
        assert [r.outcome for r in store] == ["ok", "ok", "skipped"]
        assert [r.accuracy for r in store][:2] == [0.5, 0.7]

    def test_appends_across_reopen(self, tmp_path):
        spec = _spec(trials=2)
        path = tmp_path / "segment.jsonl"
        with SegmentRecorder(path, [spec]) as recorder:
            recorder.cell(self._cell())
        with SegmentRecorder(path, [spec]) as recorder:
            recorder.cell(self._cell(trial=1, accuracy=0.75))
        assert len(read_segment(path)) == 2

    def test_bad_segment_line_reports_location(self, tmp_path):
        path = tmp_path / "segment.jsonl"
        path.write_text('{"not": "a record"}\n')
        with pytest.raises(ValueError, match="segment.jsonl:1"):
            read_segment(path)


# ------------------------------------------------------------------ #
# live identity: unsharded vs N-way sharded runs, exact + adaptive
# ------------------------------------------------------------------ #


@pytest.fixture(scope="module")
def ctx():
    """One shared context so the tiny lenet5 trains once per module."""
    return ScenarioContext(
        bundle_overrides={
            "n_train": 96, "n_val": 48, "n_test": 64, "epochs": 1
        }
    )


@pytest.fixture(scope="module")
def suite():
    return ScenarioSuite(
        name="store-mini",
        specs=(
            CampaignSpec(
                name="exact", model="lenet5", rates=(1e-6, 1e-5, 1e-4),
                trials=2, eval_images=16, batch_size=16, seed=11,
            ),
            CampaignSpec(
                name="adaptive", model="lenet5", rates=(1e-6, 1e-4),
                trials=3, eval_images=16, batch_size=16, seed=12,
                mode="adaptive", ci_halfwidth=0.2,
            ),
        ),
    )


@pytest.fixture(scope="module")
def unsharded(suite, ctx, tmp_path_factory):
    out = tmp_path_factory.mktemp("unsharded")
    results = run_scenarios(suite, workers=1, out_dir=out, context=ctx)
    return out, results


class TestLiveStoreIdentity:
    def test_unsharded_segment_matches_canonical_store(self, unsharded):
        out, results = unsharded
        assert segment_path(out).is_file()
        segment = read_segment(segment_path(out)).canonical()
        canonical = read_store(out)
        assert segment == canonical
        assert canonical == store_from_results(results)

    @pytest.mark.parametrize("count", [1, 2, 3])
    def test_sharded_store_bytes_match_unsharded(
        self, suite, ctx, unsharded, tmp_path, count
    ):
        out, _ = unsharded
        run_dir = tmp_path / "run"
        for index in reversed(range(1, count + 1)):
            run_scenario_shard(
                suite, ShardSpec.parse(f"{index}/{count}"), run_dir,
                context=ctx,
            )
            shard_segment = (
                run_dir / "shards" / f"{index}-of-{count}"
                / PARTIAL_DIRNAME / SHARD_SEGMENT_FILENAME
            )
            assert shard_segment.is_file()
        merge_run(run_dir)
        assert (
            store_path(run_dir).read_bytes() == store_path(out).read_bytes()
        )

    def test_sharded_segments_reassemble_to_canonical(
        self, suite, ctx, unsharded, tmp_path
    ):
        out, _ = unsharded
        run_dir = tmp_path / "run"
        for index in (1, 2):
            run_scenario_shard(
                suite, ShardSpec.parse(f"{index}/2"), run_dir, context=ctx
            )
        merge_run(run_dir)
        segments = [
            run_dir / "shards" / f"{index}-of-2"
            / PARTIAL_DIRNAME / SHARD_SEGMENT_FILENAME
            for index in (1, 2)
        ]
        assert read_segments(segments).canonical() == read_store(out)

    def test_merge_detects_corrupt_segment(self, suite, ctx, tmp_path):
        run_dir = tmp_path / "run"
        for index in (1, 2):
            run_scenario_shard(
                suite, ShardSpec.parse(f"{index}/2"), run_dir, context=ctx
            )
        segment = (
            run_dir / "shards" / "1-of-2"
            / PARTIAL_DIRNAME / SHARD_SEGMENT_FILENAME
        )
        lines = segment.read_text().splitlines()
        doctored = json.loads(lines[0])
        doctored["accuracy"] = 0.123456789
        lines[0] = json.dumps(doctored, sort_keys=True)
        segment.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="segment"):
            merge_run(run_dir)

    def test_no_store_flag_skips_store_files(self, suite, ctx, tmp_path):
        out = tmp_path / "run"
        run_scenarios(suite, workers=1, out_dir=out, context=ctx, store=False)
        assert not store_path(out).exists()
        assert not segment_path(out).exists()
        assert (out / "summary.json").is_file()


class TestColumnSchema:
    def test_cell_columns_cover_record_fields(self):
        from dataclasses import fields

        assert [f.name for f in fields(CellRecord)] == list(CELL_COLUMNS)

    def test_kinds_are_known(self):
        assert set(kind for kind, _ in CELL_COLUMNS.values()) <= {
            "str", "int", "float"
        }
