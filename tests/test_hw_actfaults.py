"""Tests for activation-memory fault injection."""

import numpy as np
import pytest

from repro import nn
from repro.core.metrics import evaluate_accuracy_arrays
from repro.core.swap import swap_activations
from repro.hw.actfaults import ActivationFaultInjector, flip_activation_bits
from repro.models import MLP


class TestFlipActivationBits:
    def test_flips_expected_count(self):
        rng = np.random.default_rng(0)
        values = np.zeros(1000, dtype=np.float32)
        flips = flip_activation_bits(values, 0.01, rng)
        assert flips > 0
        # Each flip changes exactly one bit of a zero word -> non-zero words.
        assert np.count_nonzero(values) <= flips

    def test_rate_zero_noop(self):
        values = np.ones(100, dtype=np.float32)
        assert flip_activation_bits(values, 0.0, np.random.default_rng(0)) == 0
        np.testing.assert_array_equal(values, np.ones(100))

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            flip_activation_bits(
                np.zeros(10, dtype=np.float64), 0.1, np.random.default_rng(0)
            )

    def test_rejects_non_contiguous(self):
        values = np.zeros((10, 10), dtype=np.float32)[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            flip_activation_bits(values, 0.1, np.random.default_rng(0))

    def test_mutates_in_place(self):
        values = np.zeros((4, 4), dtype=np.float32)
        flip_activation_bits(values, 0.5, np.random.default_rng(1))
        assert np.count_nonzero(values) > 0


class TestActivationFaultInjector:
    def test_dormant_by_default(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        clean = evaluate_accuracy_arrays(trained_mlp, images, labels)
        with ActivationFaultInjector(trained_mlp) as injector:
            assert not injector.armed
            unchanged = evaluate_accuracy_arrays(trained_mlp, images, labels)
        assert unchanged == clean

    def test_session_degrades_accuracy(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        clean = evaluate_accuracy_arrays(trained_mlp, images, labels)
        with ActivationFaultInjector(trained_mlp) as injector:
            with injector.session(1e-3, rng=0):
                with np.errstate(over="ignore", invalid="ignore"):
                    faulty = evaluate_accuracy_arrays(trained_mlp, images, labels)
            assert injector.flips_this_session > 0
        assert faulty < clean

    def test_transient_no_lasting_damage(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        clean = evaluate_accuracy_arrays(trained_mlp, images, labels)
        with ActivationFaultInjector(trained_mlp) as injector:
            with injector.session(1e-2, rng=1):
                with np.errstate(over="ignore", invalid="ignore"):
                    evaluate_accuracy_arrays(trained_mlp, images, labels)
            after = evaluate_accuracy_arrays(trained_mlp, images, labels)
        assert after == clean
        for param in trained_mlp.parameters():
            assert np.isfinite(param.data).all()

    def test_layer_scoping(self, trained_mlp):
        with ActivationFaultInjector(trained_mlp, layers=["FC-1"]) as injector:
            assert injector.layer_names == ["FC-1"]
        with pytest.raises(ValueError, match="unknown layer"):
            ActivationFaultInjector(trained_mlp, layers=["CONV-1"])

    def test_nested_session_rejected(self, trained_mlp):
        with ActivationFaultInjector(trained_mlp) as injector:
            with injector.session(1e-3, rng=0):
                with pytest.raises(RuntimeError):
                    injector.session(1e-3, rng=0).__enter__()

    def test_remove_makes_inert(self, trained_mlp, mlp_eval_arrays):
        images, labels = mlp_eval_arrays
        injector = ActivationFaultInjector(trained_mlp)
        injector.remove()
        clean = evaluate_accuracy_arrays(trained_mlp, images, labels)
        with injector.session(1e-2, rng=0):
            same = evaluate_accuracy_arrays(trained_mlp, images, labels)
        assert same == clean

    def test_clipping_mitigates_activation_faults(self, trained_mlp, mlp_eval_arrays):
        """Clipped activations bound activation-memory corruption too:
        the faults land on layer outputs *before* the activation function."""
        images, labels = mlp_eval_arrays

        plain = MLP(3 * 8 * 8, 10, hidden=(64, 32), seed=0)
        plain.load_state_dict(trained_mlp.state_dict())
        plain.eval()
        clipped = MLP(3 * 8 * 8, 10, hidden=(64, 32), seed=0)
        clipped.load_state_dict(trained_mlp.state_dict())
        clipped.eval()
        swap_activations(clipped, 30.0)

        rate = 3e-4

        def mean_accuracy(model):
            values = []
            with ActivationFaultInjector(model) as injector:
                for trial in range(5):
                    with injector.session(rate, rng=trial):
                        with np.errstate(over="ignore", invalid="ignore"):
                            values.append(
                                evaluate_accuracy_arrays(model, images, labels)
                            )
            return float(np.mean(values))

        assert mean_accuracy(clipped) > mean_accuracy(plain)
