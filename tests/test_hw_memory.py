"""Tests for the bit-addressable weight memory."""

import numpy as np
import pytest

from repro import nn
from repro.hw.memory import MemoryRegion, WeightMemory
from repro.models import CifarVGG16, LeNet5


class TestConstruction:
    def test_from_model_covers_all_comp_layers(self):
        model = LeNet5(seed=0)
        memory = WeightMemory.from_model(model)
        assert memory.layer_names() == ["CONV-1", "CONV-2", "FC-1", "FC-2", "FC-3"]
        expected_words = sum(p.size for p in model.parameters())
        assert memory.total_words == expected_words
        assert memory.total_bits == expected_words * 32

    def test_layer_scoping(self):
        model = LeNet5(seed=0)
        memory = WeightMemory.from_model(model, layers=["CONV-2"])
        assert memory.layer_names() == ["CONV-2"]
        conv2 = dict(model.named_modules())["3"]
        assert memory.total_words == conv2.weight.size + conv2.bias.size

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown layer"):
            WeightMemory.from_model(LeNet5(seed=0), layers=["CONV-9"])

    def test_exclude_bias(self):
        model = LeNet5(seed=0)
        with_bias = WeightMemory.from_model(model)
        without_bias = WeightMemory.from_model(model, include_bias=False)
        assert without_bias.total_words < with_bias.total_words

    def test_batchnorm_params_excluded(self):
        model = CifarVGG16(width_mult=0.0625, seed=0)
        memory = WeightMemory.from_model(model)
        conv_linear_words = sum(
            p.size
            for m in model.modules()
            if isinstance(m, (nn.Conv2d, nn.Linear))
            for p in [m.weight] + ([m.bias] if m.bias is not None else [])
        )
        assert memory.total_words == conv_linear_words

    def test_from_parameters(self):
        params = [("a", nn.Parameter(np.zeros(10))), ("b", nn.Parameter(np.zeros(5)))]
        memory = WeightMemory.from_parameters(params)
        assert memory.total_words == 15
        assert memory.regions[1].bit_offset == 10 * 32

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WeightMemory([])

    def test_non_contiguous_rejected(self):
        param = nn.Parameter(np.zeros(4))
        regions = [
            MemoryRegion("a", "a", param, 0),
            MemoryRegion("b", "b", param, 4 * 32 + 32),  # gap
        ]
        with pytest.raises(ValueError, match="contiguous"):
            WeightMemory(regions)


class TestLocate:
    def _memory(self):
        params = [("a", nn.Parameter(np.zeros(2))), ("b", nn.Parameter(np.zeros(3)))]
        return WeightMemory.from_parameters(params)

    def test_locates_first_region(self):
        memory = self._memory()
        results = memory.locate(np.asarray([0, 33]))
        assert len(results) == 1
        region, words, bits = results[0]
        assert region.name == "a"
        np.testing.assert_array_equal(words, [0, 1])
        np.testing.assert_array_equal(bits, [0, 1])

    def test_locates_across_regions(self):
        memory = self._memory()
        results = memory.locate(np.asarray([10, 64, 100]))
        names = [region.name for region, _, _ in results]
        assert names == ["a", "b"]
        region_b = results[1]
        np.testing.assert_array_equal(region_b[1], [0, 1])  # words 0,1 of b
        np.testing.assert_array_equal(region_b[2], [0, 36 - 32])

    def test_out_of_range(self):
        memory = self._memory()
        with pytest.raises(IndexError):
            memory.locate(np.asarray([5 * 32]))
        with pytest.raises(IndexError):
            memory.locate(np.asarray([-1]))

    def test_empty_input(self):
        assert self._memory().locate(np.asarray([], dtype=np.int64)) == []


class TestHelpers:
    def test_bits_per_layer(self):
        model = LeNet5(seed=0)
        memory = WeightMemory.from_model(model)
        per_layer = memory.bits_per_layer()
        assert sum(per_layer.values()) == memory.total_bits
        assert set(per_layer) == set(memory.layer_names())

    def test_region_for_layer(self):
        model = LeNet5(seed=0)
        memory = WeightMemory.from_model(model)
        regions = memory.region_for_layer("FC-1")
        assert {r.name for r in regions} == {"FC-1.weight", "FC-1.bias"}
        with pytest.raises(KeyError):
            memory.region_for_layer("FC-9")

    def test_snapshot_restore(self):
        model = LeNet5(seed=0)
        memory = WeightMemory.from_model(model)
        snapshot = memory.snapshot()
        first_param = memory.regions[0].parameter
        first_param.data[:] = 99.0
        memory.restore(snapshot)
        assert first_param.data.max() < 99.0

    def test_restore_validates(self):
        model = LeNet5(seed=0)
        memory = WeightMemory.from_model(model)
        with pytest.raises(ValueError):
            memory.restore([np.zeros(1)])

    def test_repr(self):
        memory = WeightMemory.from_model(LeNet5(seed=0))
        assert "WeightMemory" in repr(memory)


class TestCopyOnWrite:
    """Read-only (shm-view) regions are privatized on first write only."""

    def _read_only_memory(self):
        model = LeNet5(seed=0)
        memory = WeightMemory.from_model(model)
        original = memory.snapshot()
        for region in memory.regions:
            region.parameter.data.flags.writeable = False
        return model, memory, original

    def test_materialize_region_copies_read_only(self):
        from repro.hw.memory import materialize_region

        _, memory, original = self._read_only_memory()
        region = memory.regions[0]
        assert materialize_region(region) is True
        assert region.parameter.data.flags.writeable
        np.testing.assert_array_equal(region.parameter.data, original[0])
        # Second call is a no-op on an already-private region.
        assert materialize_region(region) is False

    def test_materialize_region_noop_on_writable(self):
        from repro.hw.memory import materialize_region

        model = LeNet5(seed=0)
        memory = WeightMemory.from_model(model)
        before = memory.regions[0].parameter.data
        assert materialize_region(memory.regions[0]) is False
        assert memory.regions[0].parameter.data is before

    def test_materialize_scopes_to_named_layers(self):
        _, memory, _ = self._read_only_memory()
        copied = memory.materialize(["CONV-2"])
        by_layer = {
            region.layer_name: region.parameter.data.flags.writeable
            for region in memory.regions
        }
        assert by_layer["CONV-2"] is True
        assert copied == sum(
            1 for r in memory.regions if r.layer_name == "CONV-2"
        )
        for layer, writable in by_layer.items():
            if layer != "CONV-2":
                assert writable is False, f"{layer} was copied needlessly"

    def test_materialize_all(self):
        _, memory, original = self._read_only_memory()
        copied = memory.materialize()
        assert copied == len(memory.regions)
        for region, saved in zip(memory.regions, original):
            assert region.parameter.data.flags.writeable
            np.testing.assert_array_equal(region.parameter.data, saved)

    def test_restore_works_on_read_only_memory(self):
        _, memory, original = self._read_only_memory()
        memory.restore(original)
        for region, saved in zip(memory.regions, original):
            np.testing.assert_array_equal(region.parameter.data, saved)

    def test_injection_privatizes_only_affected_regions(self):
        """The CoW footprint equals the fault set's affected regions."""
        from repro.hw.faultmodels import FaultSet
        from repro.hw.injector import FaultInjector

        _, memory, original = self._read_only_memory()
        # All faults inside the FC-2 weight region.
        target = next(r for r in memory.regions if r.name == "FC-2.weight")
        bits = np.asarray(
            [target.bit_offset, target.bit_offset + 33], dtype=np.int64
        )
        injector = FaultInjector(memory)
        with injector.apply(FaultSet.flips(bits)):
            touched = [
                r.layer_name
                for r in memory.regions
                if r.parameter.data.flags.writeable
            ]
            assert set(touched) == {"FC-2"}
        # Restore is exact on the private copy; untouched regions are
        # still the original read-only arrays.
        for region, saved in zip(memory.regions, original):
            np.testing.assert_array_equal(region.parameter.data, saved)
            if region.layer_name != "FC-2":
                assert not region.parameter.data.flags.writeable

    def test_quantized_deploy_privatizes_on_write_back(self):
        from repro.hw.quant import QuantizedWeightMemory

        _, memory, original = self._read_only_memory()
        quantized = QuantizedWeightMemory(memory)
        with quantized.deployed():
            for region in memory.regions:
                assert region.parameter.data.flags.writeable
        for region, saved in zip(memory.regions, original):
            np.testing.assert_array_equal(region.parameter.data, saved)
